#!/usr/bin/env python3
"""Heterogeneous resources and the §6 κ-smallest extension.

A 24-node group has one badly under-provisioned straggler (10 events of
buffer vs 60 for everyone else). Three strategies are compared:

* plain minimum (the paper's default): the whole group slows to protect
  the straggler;
* κ-smallest with κ=2: the group adapts to the *second*-smallest buffer,
  sacrificing the straggler's completeness for group throughput;
* thresholded κ-smallest: like the plain minimum, but never slower than
  a floor.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import (
    AdaptiveConfig,
    KSmallestAggregate,
    SimCluster,
    SystemConfig,
    ThresholdedKSmallestAggregate,
    analyze_delivery,
)

N = 24
SENDERS = [0, 6, 12, 18]
STRAGGLER = 23
WINDOW = (80.0, 150.0)


def run(label, aggregate):
    cluster = SimCluster(
        n_nodes=N,
        system=SystemConfig(buffer_capacity=60, dedup_capacity=3000),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=4.46, initial_rate=10.0),
        aggregate=aggregate,
        seed=9,
    )
    cluster.add_senders(SENDERS, rate_each=15.0)  # 60 msg/s offered
    cluster.set_capacity(STRAGGLER, 10)
    cluster.run(until=160.0)

    m = cluster.metrics
    stats = analyze_delivery(m.messages_in_window(*WINDOW), N)
    # how often does the straggler itself see each message?
    straggler_hits = sum(
        1 for rec in m.messages_in_window(*WINDOW) if STRAGGLER in rec.receivers
    )
    straggler_pct = 100.0 * straggler_hits / max(1, stats.messages)
    print(f"{label:<22}{m.admitted.rate(*WINDOW):>15.1f}"
          f"{cluster.protocol_of(0).min_buff_estimate:>9}"
          f"{stats.atomicity_pct:>13.1f}{straggler_pct:>17.1f}")


if __name__ == "__main__":
    print(f"{N} nodes at buffer 60, node {STRAGGLER} at buffer 10, "
          f"offered 60 msg/s\n")
    print(f"{'aggregate':<22}{'admitted msg/s':>15}{'minBuff':>9}"
          f"{'atomicity %':>13}{'straggler recv %':>17}")
    run("minimum (paper)", None)
    run("2nd-smallest (§6)", KSmallestAggregate(2))
    run("κ=2 over floor 20", ThresholdedKSmallestAggregate(2, floor=20))
    print("\nThe plain minimum throttles everyone to protect one node; the")
    print("κ-smallest variants trade that node's completeness for group rate.")
