#!/usr/bin/env python3
"""Heterogeneous resources and the §6 κ-smallest extension.

A 24-node group has one badly under-provisioned straggler (10 events of
buffer vs 60 for everyone else). This example authors a *custom*
:class:`~repro.scenarios.spec.ScenarioSpec` (rather than pulling one
from the registry) and replays it under three aggregation strategies:

* plain minimum (the paper's default): the whole group slows to protect
  the straggler;
* κ-smallest with κ=2: the group adapts to the *second*-smallest buffer,
  sacrificing the straggler's completeness for group throughput;
* thresholded κ-smallest: like the plain minimum, but never slower than
  a floor.

Run:  python examples/heterogeneous_cluster.py
"""

from repro import (
    AdaptiveConfig,
    KSmallestAggregate,
    ScenarioSpec,
    SenderSpec,
    SimCluster,
    SystemConfig,
    ThresholdedKSmallestAggregate,
    analyze_delivery,
)
from repro.scenarios import SlowReceivers

N = 24
STRAGGLER = N - 1

BASE = ScenarioSpec(
    name="straggler",
    summary="one node at 1/6th of everyone else's buffer",
    n_nodes=N,
    protocol="adaptive",
    system=SystemConfig(buffer_capacity=60, dedup_capacity=3000),
    adaptive=AdaptiveConfig(age_critical=4.46, initial_rate=10.0),
    senders=tuple(SenderSpec(node, 15.0) for node in (0, 6, 12, 18)),
    duration=160.0,
    warmup=80.0,
    drain=10.0,
    seed=9,
).stressed(SlowReceivers(capacity=10, nodes=(STRAGGLER,)))


def run(label: str, aggregate, horizon: float | None = None) -> None:
    spec = BASE.replace(aggregate=aggregate)
    if horizon is not None:
        spec = spec.with_horizon(horizon)
    window = spec.window
    cluster = SimCluster.from_scenario(spec)
    cluster.run(until=spec.duration)

    m = cluster.metrics
    stats = analyze_delivery(m.messages_in_window(*window), N)
    # how often does the straggler itself see each message?
    straggler_hits = sum(
        1 for rec in m.messages_in_window(*window) if STRAGGLER in rec.receivers
    )
    straggler_pct = 100.0 * straggler_hits / max(1, stats.messages)
    print(f"{label:<22}{m.admitted.rate(*window):>15.1f}"
          f"{cluster.protocol_of(0).min_buff_estimate:>9}"
          f"{stats.atomicity_pct:>13.1f}{straggler_pct:>17.1f}")


def main(horizon: float | None = None) -> None:
    print(f"{N} nodes at buffer 60, node {STRAGGLER} at buffer 10, "
          f"offered {BASE.offered_load:.0f} msg/s\n")
    print(f"{'aggregate':<22}{'admitted msg/s':>15}{'minBuff':>9}"
          f"{'atomicity %':>13}{'straggler recv %':>17}")
    run("minimum (paper)", None, horizon)
    run("2nd-smallest (§6)", KSmallestAggregate(2), horizon)
    run("κ=2 over floor 20", ThresholdedKSmallestAggregate(2, floor=20), horizon)
    print("\nThe plain minimum throttles everyone to protect one node; the")
    print("κ-smallest variants trade that node's completeness for group rate.")


if __name__ == "__main__":
    main()
