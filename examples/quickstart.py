#!/usr/bin/env python3
"""Quickstart: adaptive gossip broadcast in ~30 lines.

Pulls the ``overload-baseline`` scenario from the registry — six senders
together offering more load than the group's buffers can carry — and
runs it once with the classic (static) lpbcast and once with the paper's
adaptive protocol. The printout is the comparison that motivates the
whole paper: without adaptation the group silently loses messages; with
it, senders throttle themselves to the sustainable rate and reliability
is preserved.

Run:  python examples/quickstart.py
"""

from repro import get_scenario
from repro.scenarios.runner import run_scenario


def main(horizon: float | None = None) -> None:
    base = get_scenario("overload-baseline")
    print(
        f"{base.n_nodes} nodes, buffers of {base.system.buffer_capacity} events, "
        f"{len(base.senders)} senders offering {base.offered_load:.0f} msg/s total\n"
    )
    for protocol in ("lpbcast", "adaptive"):
        result = run_scenario(base.with_protocol(protocol), horizon=horizon)
        stats = result.delivery
        print(
            f"{protocol:>8s} | offered {result.offered_rate:5.1f} msg/s"
            f" | admitted {result.input_rate:5.1f} msg/s"
            f" | delivered to {stats.avg_receiver_pct:5.1f}% of nodes"
            f" | atomicity {stats.atomicity_pct:5.1f}%"
            f" | drop age {result.drop_age_mean:4.2f} hops"
        )
    print(
        "\nThe adaptive senders admit only what the group can sustain, so"
        "\nmessages keep reaching (almost) everyone instead of dying young."
    )


if __name__ == "__main__":
    main()
