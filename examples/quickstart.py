#!/usr/bin/env python3
"""Quickstart: adaptive gossip broadcast in ~40 lines.

Builds a 30-node group where six senders together offer more load than
the group's buffers can carry, runs it once with the classic (static)
lpbcast and once with the paper's adaptive protocol, and prints the
comparison that motivates the whole paper: without adaptation the group
silently loses messages; with it, senders throttle themselves to the
sustainable rate and reliability is preserved.

Run:  python examples/quickstart.py
"""

from repro import AdaptiveConfig, SimCluster, SystemConfig, analyze_delivery

N_NODES = 30
SENDERS = [0, 5, 10, 15, 20, 25]
OFFERED_TOTAL = 60.0  # msg/s across all senders — too much for these buffers
SYSTEM = SystemConfig(buffer_capacity=30, dedup_capacity=3000)
# τ (the critical drop age) is a property of the deployment; 4.46 was
# measured for this simulator with the Figure 4 procedure (EXPERIMENTS.md).
ADAPTIVE = AdaptiveConfig(age_critical=4.46)


def run(protocol: str) -> None:
    cluster = SimCluster(
        n_nodes=N_NODES,
        system=SYSTEM,
        protocol=protocol,
        adaptive=ADAPTIVE,
        seed=42,
    )
    cluster.add_senders(SENDERS, rate_each=OFFERED_TOTAL / len(SENDERS))
    cluster.run(until=120.0)

    window = (60.0, 110.0)  # steady state: skip warm-up, leave drain room
    stats = analyze_delivery(
        cluster.metrics.messages_in_window(*window), cluster.group_size
    )
    admitted = cluster.metrics.admitted.rate(*window)
    drop_age = cluster.metrics.mean_drop_age(*window)
    print(f"{protocol:>8s} | offered {OFFERED_TOTAL:5.1f} msg/s"
          f" | admitted {admitted:5.1f} msg/s"
          f" | delivered to {stats.avg_receiver_pct:5.1f}% of nodes"
          f" | atomicity {stats.atomicity_pct:5.1f}%"
          f" | drop age {drop_age:4.2f} hops")


if __name__ == "__main__":
    print(f"{N_NODES} nodes, buffers of {SYSTEM.buffer_capacity} events, "
          f"{len(SENDERS)} senders offering {OFFERED_TOTAL:.0f} msg/s total\n")
    run("lpbcast")
    run("adaptive")
    print("\nThe adaptive senders admit only what the group can sustain, so"
          "\nmessages keep reaching (almost) everyone instead of dying young.")
