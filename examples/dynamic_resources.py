#!/usr/bin/env python3
"""The paper's Figure 9 scenario: runtime buffer changes.

The registry's ``buffer-flap`` scenario is exactly this experiment: a
group runs below capacity until, a third of the way in, 20% of the nodes
shrink their buffers from 90 to 45 events; at two thirds they grow back
— but only to 60. The adaptive senders track the moving capacity; the
printout shows the allowed-rate staircase and the atomicity staying up.

Run:  python examples/dynamic_resources.py
"""

from repro import SimCluster, analyze_delivery, get_scenario


def main(horizon: float | None = None) -> None:
    spec = get_scenario("buffer-flap")
    if horizon is not None:
        spec = spec.with_horizon(horizon)
    squeeze = spec.resources.changes[0]
    senders = list(spec.sender_ids)
    cluster = SimCluster.from_scenario(spec)
    cluster.run(until=spec.duration)

    m = cluster.metrics
    print(
        f"offered load: {spec.offered_load:.0f} msg/s  |  buffer schedule for "
        f"nodes {sorted(squeeze.nodes)}: "
        f"{spec.system.buffer_capacity} -> {squeeze.capacity} @"
        f"{squeeze.time:.0f}s -> {spec.resources.changes[1].capacity} @"
        f"{spec.resources.changes[1].time:.0f}s\n"
    )
    print(
        f"{'t (s)':>6} {'allowed msg/s':>14} {'admitted msg/s':>15} "
        f"{'minBuff':>8} {'atomicity %':>12}"
    )
    step = max(1, int(spec.duration / 12))
    for t0 in range(0, int(spec.duration), step):
        t1 = t0 + step
        allowed = m.gauge_mean_over("allowed_rate", senders, t0, t1) * len(senders)
        stats = analyze_delivery(
            m.messages_in_window(t0, max(t0 + 1, t1 - step // 3)), spec.n_nodes
        )
        print(
            f"{t0:>6} {allowed:>14.1f} {m.admitted.rate(t0, t1):>15.1f} "
            f"{m.gauge_mean('min_buff', t0, t1):>8.0f} "
            f"{stats.atomicity_pct:>12.1f}"
        )

    print("\nThe allowed rate steps down when the small buffers appear, and")
    print("steps partway back up when they recover — while atomicity")
    print("stays high throughout (compare Figure 9 of the paper).")


if __name__ == "__main__":
    main()
