#!/usr/bin/env python3
"""The paper's Figure 9 scenario as a script: runtime buffer changes.

A 30-node group runs below capacity. At t=120 s, 20% of the nodes shrink
their buffers from 90 to 45 events; at t=240 s they grow back — but only
to 60. The adaptive senders track the moving capacity; the printout
shows the allowed rate staircase and the atomicity staying up.

Run:  python examples/dynamic_resources.py
"""

from repro import (
    AdaptiveConfig,
    ResourceScript,
    SimCluster,
    SystemConfig,
    analyze_delivery,
)

N = 30
SENDERS = [0, 5, 10, 15, 20]
SMALL = [27, 28, 29, 26, 25, 24]  # the 20% whose buffers flap
OFFERED = 100.0  # above what buffers of 45 or 60 can sustain

cluster = SimCluster(
    n_nodes=N,
    system=SystemConfig(buffer_capacity=90, dedup_capacity=4000),
    protocol="adaptive",
    adaptive=AdaptiveConfig(age_critical=4.46, initial_rate=12.0),
    seed=11,
)
cluster.add_senders(SENDERS, rate_each=OFFERED / len(SENDERS))
(
    ResourceScript()
    .set_capacity(120.0, SMALL, 45)
    .set_capacity(240.0, SMALL, 60)
    .apply(cluster)
)
cluster.run(until=360.0)

m = cluster.metrics
print(f"offered load: {OFFERED:.0f} msg/s  |  buffer schedule for nodes "
      f"{SMALL}: 90 -> 45 @120s -> 60 @240s\n")
print(f"{'t (s)':>6} {'allowed msg/s':>14} {'admitted msg/s':>15} "
      f"{'minBuff':>8} {'atomicity %':>12}")
for t0 in range(0, 360, 30):
    t1 = t0 + 30
    allowed = m.gauge_mean_over("allowed_rate", SENDERS, t0, t1) * len(SENDERS)
    stats = analyze_delivery(m.messages_in_window(t0, max(t0 + 1, t1 - 10)), N)
    print(f"{t0:>6} {allowed:>14.1f} {m.admitted.rate(t0, t1):>15.1f} "
          f"{m.gauge_mean('min_buff', t0, t1):>8.0f} "
          f"{stats.atomicity_pct:>12.1f}")

print("\nThe allowed rate steps down when the small buffers appear, and")
print("steps partway back up when they recover to 60 — while atomicity")
print("stays high throughout (compare Figure 9 of the paper).")
