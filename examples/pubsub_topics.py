#!/usr/bin/env python3
"""The paper's §1 motivating application: topic-based publish-subscribe.

Ten hosts participate in a "market-data" topic. Mid-run, four of them
subscribe to five extra topics each, silently splitting their fixed
buffer budgets six ways — from the market-data group's point of view,
40% of its members just lost five sixths of their buffers without
telling anyone.

The adaptive mechanism notices through the minBuff gossip and throttles
the market-data publisher; reliability survives the reconfiguration.
(The sim-cluster equivalent of this shape is the registry's
``pubsub-hotspot`` scenario; this example keeps the real
:class:`~repro.workload.pubsub.PubSubSystem` topic machinery.)

Run:  python examples/pubsub_topics.py
"""

from repro import AdaptiveConfig, PubSubSystem, SystemConfig, analyze_delivery

HOSTS = [f"host-{i}" for i in range(10)]
BUDGET = 120  # events of buffer per host, shared across its topics
SIDE_TOPICS = ("alerts", "audit", "chat", "billing", "search")


def main(horizon: float | None = None) -> None:
    scale = 1.0 if horizon is None else horizon / 240.0
    t_split, t_end = 80.0 * scale, 240.0 * scale
    system = PubSubSystem(
        system=SystemConfig(buffer_capacity=BUDGET, dedup_capacity=4000),
        adaptive=AdaptiveConfig(age_critical=4.46, initial_rate=40.0),
        protocol="adaptive",
        seed=7,
    )

    hosts = {h: system.add_host(h, buffer_budget=BUDGET) for h in HOSTS}
    for host in hosts.values():
        host.subscribe("market-data")
    hosts["host-0"].publish_at("market-data", rate=40.0)

    # Phase 1: everyone dedicates their whole budget to market-data.
    system.run(until=t_split)

    # Phase 2: four hosts subscribe to five more topics each.
    for h in HOSTS[6:]:
        for topic in SIDE_TOPICS:
            hosts[h].subscribe(topic)
    print("host-9 now holds", hosts["host-9"].per_topic_capacity(),
          "events per topic (budget", BUDGET, "split across",
          len(hosts["host-9"].topics), "topics)\n")
    system.run(until=t_end)

    collector = system.collector_for("market-data")
    observer = hosts["host-0"].nodes["market-data"].protocol
    group = system.group_size("market-data")

    print(f"{'phase':<26}{'admitted msg/s':>16}{'atomicity %':>13}{'minBuff':>9}")
    for label, (t0, t1) in [
        ("dedicated buffers", (0.5 * t_split, 0.94 * t_split)),
        ("after re-subscription", (0.75 * t_end, 0.98 * t_end)),
    ]:
        stats = analyze_delivery(collector.messages_in_window(t0, t1), group)
        print(f"{label:<26}{collector.admitted.rate(t0, t1):>16.1f}"
              f"{stats.atomicity_pct:>13.1f}"
              f"{collector.gauge_mean('min_buff', t0, t1):>9.0f}")

    print(f"\nhost-0's live minBuff estimate: {observer.min_buff_estimate} "
          f"(= {BUDGET} // {1 + len(SIDE_TOPICS)})")
    print("The publisher slowed itself down without any explicit notification —")
    print("the information travelled inside the data gossip it already sends.")


if __name__ == "__main__":
    main()
