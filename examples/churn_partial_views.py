#!/usr/bin/env python3
"""Partial membership views, churn, and recovery bufferers.

The paper notes (§5) that its mechanism works over *partial* membership
knowledge. This example runs a 30-node group where every node knows only
8 random peers (lpbcast-style subscription gossip keeps the views
alive), while nodes leave, crash and join mid-run — and one node's
buffers silently shrink. The adaptive senders still discover the
minimum and throttle.

Run:  python examples/churn_partial_views.py
"""

from repro import AdaptiveConfig, SimCluster, SystemConfig, analyze_delivery
from repro.membership import ChurnScript, ViewConfig

N = 30
SENDERS = [0, 6, 12]

cluster = SimCluster(
    n_nodes=N,
    system=SystemConfig(buffer_capacity=60, dedup_capacity=3000),
    protocol="adaptive",
    adaptive=AdaptiveConfig(age_critical=4.46, initial_rate=10.0),
    membership="partial",
    view_config=ViewConfig(view_size=8),
    seed=13,
)
cluster.add_senders(SENDERS, rate_each=15.0)  # 45 msg/s offered

# churn: three graceful leaves, one crash, two joins
script = (
    ChurnScript()
    .leave(30.0, 20)
    .leave(45.0, 21)
    .crash(60.0, 22)
    .join(70.0, 100)
    .join(85.0, 101)
)
cluster.apply_churn(script)
# and one surviving node quietly loses most of its buffer
cluster.at(100.0, lambda: cluster.set_capacity(15, 20))

cluster.run(until=220.0)

m = cluster.metrics
print(f"{N} nodes, partial views of 8, churn at t=30..85, node 15 shrinks "
      f"to 20 events at t=100\n")
print(f"{'window':>12} {'admitted msg/s':>15} {'avg recv %':>11} {'minBuff@0':>10}")
for t0, t1 in [(10, 30), (40, 90), (120, 200)]:
    # compare each window's messages against the group size of its time
    stats = analyze_delivery(
        m.messages_in_window(t0, t1), cluster.group_size_at(t0)
    )
    min_buff = m.gauge_mean("min_buff", t0, t1)
    print(f"{f'{t0}-{t1}s':>12} {m.admitted.rate(t0, t1):>15.1f} "
          f"{stats.avg_receiver_pct:>11.1f} {min_buff:>10.0f}")

proto0 = cluster.protocol_of(0)
print(f"\nnode 0's view size: {proto0.membership.size()} (bounded at 8)")
print(f"node 0's minBuff estimate: {proto0.min_buff_estimate} "
      f"(node 15's hidden capacity: 20)")
print("Partial views, churn and the minimum-discovery all compose —")
print("the gossip overlay only needs to stay connected, not complete.")
