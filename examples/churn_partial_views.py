#!/usr/bin/env python3
"""Partial membership views, churn, and a composed extra stress.

The registry's ``rolling-churn`` scenario runs a group where every node
knows only a few random peers (lpbcast-style subscription gossip keeps
the views alive) while nodes crash and rejoin on a cadence. This example
*composes* one more condition onto it — a surviving node's buffers
silently shrink late in the run — to show that scenarios are values you
can stress further, not fixed scripts.

Run:  python examples/churn_partial_views.py
"""

from repro import SimCluster, analyze_delivery, get_scenario
from repro.scenarios import BufferSqueeze


def main(horizon: float | None = None) -> None:
    base = get_scenario("rolling-churn")
    victim = next(
        n for n in range(base.n_nodes) if n not in base.sender_ids
    )
    spec = base.stressed(
        BufferSqueeze(time=0.7 * base.duration, capacity=20, nodes=(victim,))
    )
    if horizon is not None:
        spec = spec.with_horizon(horizon)
    cluster = SimCluster.from_scenario(spec)
    cluster.run(until=spec.duration)

    m = cluster.metrics
    d = spec.duration
    print(
        f"{spec.n_nodes} nodes, partial views of {spec.view_size}, rolling "
        f"crash/rejoin from t={0.25 * d:.0f}s, node {victim} shrinks to 20 "
        f"events at t={0.7 * d:.0f}s\n"
    )
    print(f"{'window':>12} {'admitted msg/s':>15} {'avg recv %':>11} {'minBuff@0':>10}")
    for t0, t1 in [(0.05 * d, 0.2 * d), (0.25 * d, 0.6 * d), (0.75 * d, 0.95 * d)]:
        # compare each window's messages against the group size of its time
        stats = analyze_delivery(
            m.messages_in_window(t0, t1), cluster.group_size_at(t0)
        )
        min_buff = m.gauge_mean("min_buff", t0, t1)
        print(
            f"{f'{t0:.0f}-{t1:.0f}s':>12} {m.admitted.rate(t0, t1):>15.1f} "
            f"{stats.avg_receiver_pct:>11.1f} {min_buff:>10.0f}"
        )

    sender = spec.sender_ids[0]
    proto = cluster.protocol_of(sender)
    print(f"\nnode {sender}'s view size: {proto.membership.size()} "
          f"(bounded at {spec.view_size})")
    print(f"node {sender}'s minBuff estimate: {proto.min_buff_estimate} "
          f"(node {victim}'s hidden capacity: 20)")
    print("Partial views, churn and the minimum-discovery all compose —")
    print("the gossip overlay only needs to stay connected, not complete.")


if __name__ == "__main__":
    main()
