#!/usr/bin/env python3
"""The implementation half of the paper's methodology: real threads.

The paper validated its simulations with a Java prototype on 60 LAN
workstations. This example runs the *same protocol objects* under the
threaded real-time runtime — 12 nodes over real UDP sockets on
localhost, gossiping every 100 ms of wall-clock time — and shows the
adaptive headers doing their job outside the simulator. (Declarative
scenarios run here too: ``python -m repro.experiments run-scenario
slow-receivers --driver threaded``.)

Run:  python examples/real_runtime.py        (takes ~6 seconds)
"""

import time

from repro import AdaptiveConfig, SystemConfig
from repro.runtime import ThreadedCluster

N = 12
CONSTRAINED = N - 1


def main(seconds: int = 5) -> None:
    cluster = ThreadedCluster(
        n_nodes=N,
        system=SystemConfig(
            gossip_period=0.1, buffer_capacity=64, dedup_capacity=2000
        ),
        protocol="adaptive",
        adaptive=AdaptiveConfig(
            age_critical=4.46, initial_rate=40.0, sample_period=0.5
        ),
        transport="udp",
        seed=1,
    )
    # one node is under-provisioned; nobody is told explicitly
    cluster.protocol_of(CONSTRAINED).set_buffer_capacity(16, 0.0)

    cluster.start()
    print(f"{N} nodes gossiping over UDP localhost, period 100 ms;")
    print(f"node {CONSTRAINED} secretly runs with a 16-event buffer\n")

    try:
        # offer a burst of application messages through node 0
        for i in range(200):
            cluster.broadcast(0, f"event-{i}")
        for second in range(1, seconds + 1):
            time.sleep(1.0)
            p0 = cluster.protocol_of(0)
            print(f"t={second}s  node0: minBuff={p0.min_buff_estimate:>3}"
                  f"  allowed={p0.allowed_rate:6.1f} msg/s"
                  f"  avgAge={p0.avg_age if p0.avg_age is None else round(p0.avg_age, 2)}"
                  f"  delivered={p0.stats.events_delivered}")
    finally:
        cluster.stop()

    received = [cluster.protocol_of(n).stats.events_delivered for n in range(N)]
    print(f"\nevents delivered per node: min={min(received)} max={max(received)}")
    print(f"node 0 discovered the constrained buffer: "
          f"minBuff = {cluster.protocol_of(0).min_buff_estimate} (true value 16)")
    print("Same protocol code as the simulator — only the driver changed.")


if __name__ == "__main__":
    main()
