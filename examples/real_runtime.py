#!/usr/bin/env python3
"""The implementation half of the paper's methodology: real threads,
real sockets, and a deliberately hostile network.

The paper validated its simulations with a Java prototype on 60 LAN
workstations — machines that dropped, delayed and occasionally
partitioned traffic. This example runs the *same protocol objects*
under the threaded real-time runtime over real UDP sockets, with the
chaos transport layer injecting what the simulator scripts: 5%
Bernoulli datagram loss, jittered link latency, and (when run long
enough) a clean two-way partition that later heals. Declarative
scenarios lower the same way: ``python -m repro.experiments
run-scenario partition-heal --driver threaded``.

Run:  python examples/real_runtime.py        (takes ~6 seconds)
"""

import time

from repro import AdaptiveConfig, SystemConfig
from repro.runtime import ChaosRules, ThreadedCluster
from repro.sim.network import BernoulliLoss, UniformLatency

N = 12


def main(seconds: int = 6) -> None:
    # the rule set is shared by every endpoint and mutable mid-run —
    # exactly how scenario fault windows drive a threaded cluster
    rules = ChaosRules(
        loss=BernoulliLoss(0.05),
        latency=UniformLatency(0.002, 0.02),
    )
    cluster = ThreadedCluster(
        n_nodes=N,
        system=SystemConfig(
            gossip_period=0.1, buffer_capacity=64, dedup_capacity=2000, max_age=15
        ),
        protocol="adaptive",
        adaptive=AdaptiveConfig(
            age_critical=4.46, initial_rate=40.0, sample_period=0.5
        ),
        transport="udp",
        chaos=rules,
        seed=1,
    )
    left, right = list(range(N // 2)), list(range(N // 2, N))

    cluster.start()
    print(f"{N} nodes gossiping over UDP localhost, period 100 ms;")
    print("chaos transport: 5% datagram loss, 2-20 ms link latency\n")

    def pump(label: str, duration: float) -> None:
        """Offer ~30 msg/s through node 0 while printing its view."""
        end = time.monotonic() + duration
        while time.monotonic() < end:
            for _ in range(3):
                cluster.broadcast(0)
            time.sleep(0.1)
        p0 = cluster.protocol_of(0)
        print(f"[{label:<11}] node0: minBuff={p0.min_buff_estimate:>3}"
              f"  allowed={p0.allowed_rate:6.1f} msg/s"
              f"  delivered={p0.stats.events_delivered}")

    try:
        third = max(1.0, seconds / 3)
        pump("lossy LAN", third)
        if seconds >= 3:
            rules.partition([left, right])
            print(f"-- partition: {left} | {right}")
            pump("partitioned", third)
            rules.heal()
            print("-- healed")
            pump("healed", third)
    finally:
        cluster.stop()

    received = [cluster.protocol_of(n).stats.events_delivered for n in range(N)]
    stats = rules.stats
    print(f"\nevents delivered per node: min={min(received)} max={max(received)}")
    print(f"chaos layer: {stats.sent} datagrams passed, {stats.dropped} lost, "
          f"{stats.blocked} blocked by the partition, {stats.delayed} delayed")
    print("Same protocol code as the simulator — only the driver (and its "
          "weather) changed.")


if __name__ == "__main__":
    main()
