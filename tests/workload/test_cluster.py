"""Tests for the SimCluster driver."""

import pytest

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.membership.churn import ChurnScript
from repro.workload.cluster import SimCluster, make_protocol_factory


def small_system(**kw):
    return SystemConfig(
        gossip_period=1.0, buffer_capacity=30, dedup_capacity=500, **kw
    )


def test_requires_two_nodes():
    with pytest.raises(ValueError):
        SimCluster(n_nodes=1)


def test_unknown_protocol_kind():
    with pytest.raises(ValueError):
        SimCluster(n_nodes=3, protocol="bogus")
    with pytest.raises(ValueError):
        make_protocol_factory("static")  # needs rate_limit


def test_unknown_membership_kind():
    with pytest.raises(ValueError):
        SimCluster(n_nodes=3, membership="bogus")


def test_broadcast_reaches_everyone():
    cluster = SimCluster(n_nodes=12, system=small_system(), seed=3)
    cluster.add_sender(0, rate=2.0)
    cluster.run(until=30.0)
    from repro.metrics.delivery import analyze_delivery

    stats = analyze_delivery(cluster.metrics.messages_in_window(5, 20), 12)
    assert stats.messages > 0
    assert stats.avg_receiver_fraction > 0.99


def test_sender_validation():
    cluster = SimCluster(n_nodes=4, system=small_system())
    with pytest.raises(ValueError):
        cluster.add_sender(99, rate=1.0)
    cluster.add_sender(0, rate=1.0)
    with pytest.raises(ValueError):
        cluster.add_sender(0, rate=1.0)  # duplicate


def test_add_senders_bulk():
    cluster = SimCluster(n_nodes=6, system=small_system())
    senders = cluster.add_senders([0, 1, 2], rate_each=1.0)
    assert len(senders) == 3
    assert set(cluster.senders) == {0, 1, 2}


def test_set_capacity_runtime():
    cluster = SimCluster(n_nodes=4, system=small_system())
    cluster.run(until=1.0)
    cluster.set_capacity(2, 10)
    assert cluster.protocol_of(2).buffer_capacity == 10


def test_scheduled_action():
    cluster = SimCluster(n_nodes=4, system=small_system())
    fired = []
    cluster.at(5.0, lambda: fired.append(cluster.sim.now))
    cluster.run(until=10.0)
    assert fired == [5.0]


def test_leave_node_stops_participation():
    cluster = SimCluster(n_nodes=6, system=small_system(), seed=1)
    cluster.add_sender(0, rate=2.0)
    cluster.leave_node(3)
    assert cluster.group_size == 5
    assert 3 not in cluster.nodes
    cluster.run(until=10.0)  # must not crash routing to the gone node
    assert cluster.metrics.deliveries.total > 0


def test_crash_node():
    cluster = SimCluster(n_nodes=6, system=small_system(), seed=1)
    cluster.crash_node(5)
    assert cluster.group_size == 5
    cluster.run(until=5.0)


def test_join_node_mid_run():
    cluster = SimCluster(n_nodes=5, system=small_system(), seed=1)
    cluster.add_sender(0, rate=2.0)
    cluster.run(until=5.0)
    cluster.join_node(100)
    cluster.run(until=25.0)
    assert cluster.group_size == 6
    # the newcomer receives traffic
    assert len(cluster.protocol_of(100).dedup) > 0


def test_churn_script_applied():
    cluster = SimCluster(n_nodes=6, system=small_system(), seed=1)
    script = ChurnScript().leave(2.0, 4).join(4.0, 77).crash(6.0, 3)
    cluster.apply_churn(script)
    cluster.run(until=10.0)
    assert 4 not in cluster.nodes
    assert 3 not in cluster.nodes
    assert 77 in cluster.nodes
    assert cluster.group_size == 5


def test_adaptive_cluster_constructs_protocols():
    cluster = SimCluster(
        n_nodes=4,
        system=small_system(),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=4.0),
    )
    proto = cluster.protocol_of(0)
    assert proto.adaptive_config.age_critical == 4.0


def test_static_cluster_needs_rate_limit():
    cluster = SimCluster(
        n_nodes=4, system=small_system(), protocol="static", rate_limit=3.0
    )
    assert cluster.protocol_of(0).allowed_rate == 3.0


def test_partial_membership_cluster_disseminates():
    cluster = SimCluster(
        n_nodes=16, system=small_system(), membership="partial", seed=2
    )
    cluster.add_sender(0, rate=2.0)
    cluster.run(until=30.0)
    from repro.metrics.delivery import analyze_delivery

    stats = analyze_delivery(cluster.metrics.messages_in_window(5, 20), 16)
    assert stats.avg_receiver_fraction > 0.9


def test_custom_protocol_factory():
    calls = []

    def factory(node_id, system, membership, rng, deliver_fn, drop_fn, now):
        from repro.gossip.lpbcast import LpbcastProtocol

        calls.append(node_id)
        return LpbcastProtocol(node_id, system, membership, rng, deliver_fn, drop_fn)

    cluster = SimCluster(n_nodes=3, system=small_system(), protocol=factory)
    assert sorted(calls) == [0, 1, 2]
    assert cluster.protocol_of(1).node_id == 1


def test_gauges_sampled_for_adaptive():
    cluster = SimCluster(
        n_nodes=4, system=small_system(), protocol="adaptive", seed=1
    )
    cluster.run(until=5.0)
    assert cluster.metrics.gauge("allowed_rate", 0) is not None
    assert cluster.metrics.gauge("min_buff", 0) is not None
    assert cluster.metrics.gauge("buffer_len", 0) is not None
