"""Tests for scripted resource dynamics."""

import pytest

from repro.gossip.config import SystemConfig
from repro.workload.cluster import SimCluster
from repro.workload.dynamics import CapacityChange, OfferedRateChange, ResourceScript


def test_change_validation():
    with pytest.raises(ValueError):
        CapacityChange(-1.0, (1,), 10)
    with pytest.raises(ValueError):
        CapacityChange(1.0, (), 10)
    with pytest.raises(ValueError):
        CapacityChange(1.0, (1,), 0)
    with pytest.raises(ValueError):
        OfferedRateChange(1.0, (1,), 0)
    with pytest.raises(ValueError):
        OfferedRateChange(-1.0, (1,), 5.0)


def test_builder():
    script = (
        ResourceScript()
        .set_capacity(10.0, [1, 2], 45)
        .set_offered_rate(20.0, [0], 5.0)
    )
    assert len(script) == 2


def test_capacity_change_applies_at_time():
    system = SystemConfig(buffer_capacity=90, dedup_capacity=500)
    cluster = SimCluster(n_nodes=4, system=system)
    ResourceScript().set_capacity(5.0, [1, 2], 45).apply(cluster)
    cluster.run(until=4.0)
    assert cluster.protocol_of(1).buffer_capacity == 90
    cluster.run(until=6.0)
    assert cluster.protocol_of(1).buffer_capacity == 45
    assert cluster.protocol_of(2).buffer_capacity == 45
    assert cluster.protocol_of(0).buffer_capacity == 90


def test_rate_change_applies_to_senders():
    system = SystemConfig(buffer_capacity=90, dedup_capacity=500)
    cluster = SimCluster(n_nodes=4, system=system)
    cluster.add_sender(0, rate=1.0)
    ResourceScript().set_offered_rate(5.0, [0], 30.0).apply(cluster)
    cluster.run(until=10.0)
    before = cluster.metrics.offered.count(0, 5)
    after = cluster.metrics.offered.count(5, 10)
    assert after > before * 5


def test_missing_nodes_ignored():
    system = SystemConfig(buffer_capacity=90, dedup_capacity=500)
    cluster = SimCluster(n_nodes=4, system=system)
    script = (
        ResourceScript()
        .set_capacity(1.0, [99], 45)
        .set_offered_rate(1.0, [98], 3.0)
    )
    script.apply(cluster)
    cluster.run(until=2.0)  # must not raise
