"""Tests for group-size tracking under churn."""

from repro.gossip.config import SystemConfig
from repro.workload.cluster import SimCluster


def small_cluster():
    return SimCluster(
        n_nodes=6,
        system=SystemConfig(buffer_capacity=30, dedup_capacity=300),
        seed=1,
    )


def test_initial_size_logged():
    cluster = small_cluster()
    assert cluster.group_size_at(0.0) == 6
    assert cluster.group_size_at(100.0) == 6


def test_size_changes_tracked():
    cluster = small_cluster()
    cluster.at(5.0, lambda: cluster.leave_node(5))
    cluster.at(10.0, lambda: cluster.join_node(77))
    cluster.at(10.0, lambda: cluster.join_node(78))
    cluster.run(until=20.0)
    assert cluster.group_size_at(1.0) == 6
    assert cluster.group_size_at(7.0) == 5
    assert cluster.group_size_at(15.0) == 7
    assert cluster.group_size == 7


def test_size_at_change_instant_uses_new_value():
    cluster = small_cluster()
    cluster.at(5.0, lambda: cluster.crash_node(0))
    cluster.run(until=6.0)
    assert cluster.group_size_at(5.0) == 5
