"""Tests for the publish-subscribe application layer."""

import pytest

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.workload.pubsub import PubSubSystem


def make_system(**kw):
    return PubSubSystem(
        system=SystemConfig(buffer_capacity=60, dedup_capacity=600),
        adaptive=AdaptiveConfig(age_critical=4.5),
        min_buffer_per_topic=8,
        seed=5,
        **kw,
    )


def test_host_budget_validated():
    system = make_system()
    with pytest.raises(ValueError):
        system.add_host("tiny", buffer_budget=4)


def test_duplicate_host_rejected():
    system = make_system()
    system.add_host("h", 100)
    with pytest.raises(ValueError):
        system.add_host("h", 100)


def test_subscribe_splits_budget():
    system = make_system()
    host = system.add_host("h", buffer_budget=90)
    host.subscribe("a")
    assert host.per_topic_capacity() == 90
    host.subscribe("b")
    host.subscribe("c")
    assert host.per_topic_capacity() == 30
    for topic in ("a", "b", "c"):
        assert host.nodes[topic].protocol.buffer_capacity == 30


def test_unsubscribe_restores_budget():
    system = make_system()
    host = system.add_host("h", buffer_budget=80)
    host.subscribe("a")
    host.subscribe("b")
    host.unsubscribe("b")
    assert host.topics == ["a"]
    assert host.nodes["a"].protocol.buffer_capacity == 80
    assert system.group_size("b") == 0


def test_min_per_topic_floor():
    system = make_system()
    host = system.add_host("h", buffer_budget=20)
    for t in ("a", "b", "c", "d"):
        host.subscribe(t)
    assert host.per_topic_capacity() == 8  # floored, not 5


def test_publish_requires_subscription():
    system = make_system()
    host = system.add_host("h", 60)
    with pytest.raises(ValueError):
        host.publish_at("ghost", rate=1.0)
    host.subscribe("t")
    host.publish_at("t", rate=1.0)
    with pytest.raises(ValueError):
        host.publish_at("t", rate=1.0)  # one publisher per (host, topic)


def test_topic_isolation_and_delivery():
    system = make_system()
    hosts = [system.add_host(f"h{i}", 120) for i in range(8)]
    for h in hosts:
        h.subscribe("news")
    for h in hosts[:4]:
        h.subscribe("logs")
    hosts[0].publish_at("news", rate=2.0)
    system.run(until=30.0)
    news = system.collector_for("news")
    stats = analyze_delivery(news.messages_in_window(5, 20), system.group_size("news"))
    assert stats.avg_receiver_fraction > 0.95
    # nothing leaked into the other topic
    assert system.collector_for("logs").deliveries.total == 0


def test_subscription_change_tightens_min_buff_estimate():
    """The §1 motivating scenario: a host joining many topics shrinks its
    per-topic buffers, and the *other* members of its groups find out
    through the minBuff gossip."""
    system = make_system()
    hosts = [system.add_host(f"h{i}", 96) for i in range(6)]
    for h in hosts:
        h.subscribe("main")
    system.run(until=10.0)
    observer = hosts[0].nodes["main"].protocol
    assert observer.min_buff_estimate == 96
    # h5 subscribes to three more topics: its "main" share drops to 24
    for t in ("x", "y", "z"):
        hosts[5].subscribe(t)
    assert hosts[5].nodes["main"].protocol.buffer_capacity == 24
    system.run(until=40.0)
    assert observer.min_buff_estimate == 24
