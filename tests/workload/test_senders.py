"""Tests for arrival processes and the admission-controlled sender."""

import random

import pytest

from repro.core.adaptive import StaticRateLpbcastProtocol
from repro.gossip.config import SystemConfig
from repro.gossip.lpbcast import LpbcastProtocol
from repro.membership.full import Directory, FullMembershipView
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.workload.senders import (
    OnOffArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    Sender,
)


def test_periodic_intervals():
    arr = PeriodicArrivals(4.0)
    rng = random.Random(1)
    assert arr.next_interval(rng) == 0.25
    with pytest.raises(ValueError):
        PeriodicArrivals(0)


def test_poisson_intervals_mean():
    arr = PoissonArrivals(10.0)
    rng = random.Random(1)
    samples = [arr.next_interval(rng) for _ in range(5000)]
    assert sum(samples) / len(samples) == pytest.approx(0.1, rel=0.1)


def test_onoff_runs_only_during_on_phases():
    arr = OnOffArrivals(rate=2.0, on=1.0, off=3.0)
    rng = random.Random(1)
    # rate 2 in a 1s on-phase: two arrivals fit, then the off gap
    assert arr.next_interval(rng) == pytest.approx(0.5)
    assert arr.next_interval(rng) == pytest.approx(0.5)
    assert arr.next_interval(rng) == pytest.approx(3.5)  # crosses the off phase


def test_onoff_with_zero_off_is_periodic():
    arr = OnOffArrivals(rate=4.0, on=1.0, off=0.0)
    rng = random.Random(1)
    for _ in range(10):
        assert arr.next_interval(rng) == pytest.approx(0.25)


def test_onoff_validation():
    with pytest.raises(ValueError):
        OnOffArrivals(0, 1, 1)
    with pytest.raises(ValueError):
        OnOffArrivals(1, 0, 1)
    with pytest.raises(ValueError):
        OnOffArrivals(1, 1, -1)


def make_protocol(sim, kind="lpbcast", rate_limit=5.0):
    directory = Directory(range(4))
    config = SystemConfig(buffer_capacity=16, dedup_capacity=64)
    view = FullMembershipView(directory, 0)
    rng = sim.rngs.stream("p")
    if kind == "lpbcast":
        return LpbcastProtocol(0, config, view, rng)
    return StaticRateLpbcastProtocol(
        0, config, view, rng, rate_limit=rate_limit, max_tokens=1.0
    )


def test_sender_offers_at_configured_rate():
    sim = Simulator(seed=1)
    proto = make_protocol(sim)
    collector = MetricsCollector()
    sender = Sender(sim, "s", proto, PeriodicArrivals(10.0), collector)
    sim.run(until=5.0)
    assert sender.offered == pytest.approx(50, abs=2)
    assert sender.admitted == sender.offered  # baseline admits instantly
    assert collector.admitted.total == sender.admitted


def test_sender_queues_when_throttled():
    sim = Simulator(seed=1)
    proto = make_protocol(sim, kind="static", rate_limit=2.0)
    collector = MetricsCollector()
    sender = Sender(sim, "s", proto, PeriodicArrivals(10.0), collector)
    sim.run(until=10.0)
    # admitted tracks the token rate, not the offered rate
    assert sender.admitted == pytest.approx(2.0 * 10.0, rel=0.2)
    assert sender.offered > sender.admitted


def test_sender_bounded_queue_rejects_oldest():
    sim = Simulator(seed=1)
    proto = make_protocol(sim, kind="static", rate_limit=0.5)
    collector = MetricsCollector()
    sender = Sender(
        sim, "s", proto, PeriodicArrivals(20.0), collector, queue_limit=5
    )
    sim.run(until=10.0)
    assert sender.rejected > 0
    assert sender.queue_depth <= 5
    assert collector.rejected.total == sender.rejected


def test_sender_start_stop_window():
    sim = Simulator(seed=1)
    proto = make_protocol(sim)
    collector = MetricsCollector()
    sender = Sender(
        sim, "s", proto, PeriodicArrivals(10.0), collector, start=2.0, stop=4.0
    )
    sim.run(until=10.0)
    assert sender.offered == pytest.approx(20, abs=3)
    assert collector.offered.count(0.0, 2.0) == 0
    assert collector.offered.count(4.1, 10.0) == 0


def test_sender_set_rate():
    sim = Simulator(seed=1)
    proto = make_protocol(sim)
    collector = MetricsCollector()
    sender = Sender(sim, "s", proto, PeriodicArrivals(2.0), collector)
    sim.schedule_at(5.0, sender.set_rate, 20.0)
    sim.run(until=10.0)
    low = collector.offered.count(0, 5)
    high = collector.offered.count(5, 10)
    assert high > low * 5
    with pytest.raises(ValueError):
        sender.set_rate(0)


def test_sender_payload_fn():
    sim = Simulator(seed=1)
    proto = make_protocol(sim)
    received = []
    proto._deliver_fn = lambda eid, payload, now: received.append(payload)
    collector = MetricsCollector()
    Sender(
        sim, "s", proto, PeriodicArrivals(5.0), collector,
        payload_fn=lambda seq: f"msg-{seq}",
    )
    sim.run(until=1.0)
    assert received
    assert received[0] == "msg-0"


def test_queue_limit_validated():
    sim = Simulator(seed=1)
    proto = make_protocol(sim)
    with pytest.raises(ValueError):
        Sender(sim, "s", proto, PeriodicArrivals(1.0), MetricsCollector(), queue_limit=0)
