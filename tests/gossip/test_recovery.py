"""Tests for the [10]-style bufferer recovery scheme."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary
from repro.gossip.protocol import GossipMessage
from repro.gossip.recovery import (
    BuffererBimodalProtocol,
    LongTermStore,
    rendezvous_bufferers,
)
from repro.membership.full import Directory, FullMembershipView

MEMBERS = list(range(10))


# ----------------------------------------------------------------------
# rendezvous hashing
# ----------------------------------------------------------------------
def test_bufferers_deterministic():
    a = rendezvous_bufferers(EventId(1, 7), MEMBERS, 3)
    b = rendezvous_bufferers(EventId(1, 7), list(reversed(MEMBERS)), 3)
    assert a == b
    assert len(a) == 3


def test_bufferers_validation():
    with pytest.raises(ValueError):
        rendezvous_bufferers(EventId(1, 1), MEMBERS, 0)


def test_bufferers_vary_by_event():
    sets = {tuple(rendezvous_bufferers(EventId(0, i), MEMBERS, 2)) for i in range(50)}
    assert len(sets) > 10  # different events land on different bufferers


def test_bufferers_balanced():
    counts = {m: 0 for m in MEMBERS}
    for i in range(600):
        for m in rendezvous_bufferers(EventId("x", i), MEMBERS, 3):
            counts[m] += 1
    expected = 600 * 3 / len(MEMBERS)
    assert all(0.5 * expected < c < 1.6 * expected for c in counts.values())


@settings(max_examples=100, deadline=None)
@given(seq=st.integers(0, 10_000), leaver=st.sampled_from(MEMBERS))
def test_bufferers_minimal_disruption(seq, leaver):
    """Removing one member only re-homes events it was a bufferer of."""
    event = EventId("e", seq)
    before = rendezvous_bufferers(event, MEMBERS, 3)
    after = rendezvous_bufferers(event, [m for m in MEMBERS if m != leaver], 3)
    if leaver not in before:
        assert after == before
    else:
        assert set(before) - {leaver} <= set(after)


# ----------------------------------------------------------------------
# long-term store
# ----------------------------------------------------------------------
def test_long_term_store_fifo_bound():
    store = LongTermStore(2)
    for i in range(4):
        store.pin(EventId("a", i), age=i, payload=f"p{i}")
    assert len(store) == 2
    assert store.evictions == 2
    assert EventId("a", 3) in store
    assert store.get(EventId("a", 0)) is None


def test_long_term_store_repin_keeps_max_age():
    store = LongTermStore(4)
    store.pin(EventId("a", 1), age=2, payload="p")
    store.pin(EventId("a", 1), age=7, payload="ignored")
    assert store.get(EventId("a", 1)) == (7, "p")


def test_long_term_store_validation():
    with pytest.raises(ValueError):
        LongTermStore(0)


# ----------------------------------------------------------------------
# protocol behaviour
# ----------------------------------------------------------------------
def make_node(node_id, n=6, replicas=2):
    directory = Directory(range(n))
    return BuffererBimodalProtocol(
        node_id,
        SystemConfig(buffer_capacity=8, dedup_capacity=64),
        FullMembershipView(directory, node_id),
        random.Random(node_id + 1),
        replicas=replicas,
        long_term_capacity=50,
    )


def bufferer_of(event_id, n=6, replicas=2):
    return rendezvous_bufferers(event_id, list(range(n)), replicas)


def test_bufferer_pins_on_fold():
    event = EventId(5, 0)
    target = bufferer_of(event)[0]
    node = make_node(target)
    node.on_receive(
        GossipMessage(sender=5, events=(EventSummary(event, 1, "data"),),
                      kind="multicast"),
        now=0.1,
    )
    assert event in node.long_term


def test_non_bufferer_does_not_pin():
    event = EventId(5, 0)
    outsiders = [m for m in range(6) if m not in bufferer_of(event)]
    node = make_node(outsiders[0])
    node.on_receive(
        GossipMessage(sender=5, events=(EventSummary(event, 1, "data"),),
                      kind="multicast"),
        now=0.1,
    )
    assert event not in node.long_term


def test_requests_routed_to_bufferers():
    node = make_node(0)
    event = EventId(5, 3)
    digest = GossipMessage(
        sender=4, events=(EventSummary(event, 2, None),), kind="digest"
    )
    emissions = node.on_receive(digest, now=0.1)
    expected = bufferer_of(event)[0]
    if expected == 0:
        expected = bufferer_of(event)[-1]
    assert len(emissions) == 1
    assert emissions[0].dest == expected
    assert emissions[0].message.kind == "request"


def test_request_served_from_long_term_after_buffer_eviction():
    event = EventId(5, 0)
    target = bufferer_of(event)[0]
    node = make_node(target)
    node.on_receive(
        GossipMessage(sender=5, events=(EventSummary(event, 1, "precious"),),
                      kind="multicast"),
        now=0.1,
    )
    # flood the short-term buffer so the event is evicted from it
    flood = tuple(EventSummary(EventId(4, i), 0, None) for i in range(10))
    node.on_receive(GossipMessage(sender=4, events=flood, kind="multicast"), now=0.2)
    assert event not in node.buffer
    replies = node.on_receive(
        GossipMessage(sender=2, events=(EventSummary(event, 0, None),),
                      kind="request"),
        now=0.3,
    )
    assert len(replies) == 1
    assert replies[0].message.events[0].payload == "precious"
    assert node.recoveries_served == 1


def test_own_broadcast_pinned_if_bufferer():
    for node_id in range(6):
        node = make_node(node_id)
        event = node.broadcast("mine", now=0.0)
        assert (event in node.long_term) == node.is_bufferer_for(event)
