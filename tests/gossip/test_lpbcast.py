"""Unit tests for the baseline lpbcast protocol (Figure 1)."""

import random


from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary
from repro.gossip.lpbcast import LpbcastProtocol
from repro.gossip.protocol import GossipMessage
from repro.membership.full import Directory, FullMembershipView


def make_node(node_id=0, n=10, **cfg):
    directory = Directory(range(n))
    config = SystemConfig(**{"buffer_capacity": 8, "dedup_capacity": 64, **cfg})
    delivered = []
    dropped = []
    proto = LpbcastProtocol(
        node_id,
        config,
        FullMembershipView(directory, node_id),
        random.Random(1),
        deliver_fn=lambda eid, p, t: delivered.append((eid, p, t)),
        drop_fn=lambda eid, age, r, t: dropped.append((eid, age, r, t)),
    )
    return proto, delivered, dropped


def gossip_from(sender, events):
    return GossipMessage(
        sender=sender,
        events=tuple(EventSummary(e, a, None) for e, a in events),
    )


def test_broadcast_assigns_sequential_ids():
    proto, delivered, _ = make_node()
    a = proto.broadcast("x", now=0.0)
    b = proto.broadcast("y", now=0.1)
    assert a == EventId(0, 0)
    assert b == EventId(0, 1)
    assert len(proto.buffer) == 2


def test_broadcast_delivers_locally():
    proto, delivered, _ = make_node()
    eid = proto.broadcast("payload", now=0.0)
    assert delivered == [(eid, "payload", 0.0)]


def test_on_round_emits_fanout_messages():
    proto, _, _ = make_node()
    proto.broadcast("x", now=0.0)
    emissions = proto.on_round(now=1.0)
    assert len(emissions) == proto.config.fanout
    dests = {e.dest for e in emissions}
    assert 0 not in dests  # never gossips to itself
    assert len(dests) == proto.config.fanout  # without replacement
    # all emissions share the same message content
    assert all(e.message is emissions[0].message for e in emissions)


def test_on_round_ages_events():
    proto, _, _ = make_node()
    eid = proto.broadcast("x", now=0.0)
    proto.on_round(now=1.0)
    assert proto.buffer.age_of(eid) == 1
    msg = proto.on_round(now=2.0)[0].message
    assert msg.events[0].age == 2


def test_age_out_drops(caplog=None):
    proto, _, dropped = make_node(max_age=2)
    eid = proto.broadcast("x", now=0.0)
    for r in range(4):
        proto.on_round(now=float(r + 1))
    assert eid not in proto.buffer
    assert any(d[0] == eid and d[2] == "age_out" for d in dropped)


def test_receive_new_event_delivers_and_buffers():
    proto, delivered, _ = make_node()
    msg = gossip_from(3, [(EventId(3, 0), 2)])
    proto.on_receive(msg, now=0.5)
    assert delivered == [(EventId(3, 0), None, 0.5)]
    assert proto.buffer.age_of(EventId(3, 0)) == 2


def test_receive_duplicate_not_redelivered_but_age_synced():
    proto, delivered, _ = make_node()
    proto.on_receive(gossip_from(3, [(EventId(3, 0), 1)]), now=0.5)
    proto.on_receive(gossip_from(4, [(EventId(3, 0), 5)]), now=0.6)
    assert len(delivered) == 1
    assert proto.buffer.age_of(EventId(3, 0)) == 5
    assert proto.stats.duplicates_seen == 1


def test_receive_overflow_drops_oldest():
    proto, _, dropped = make_node()
    events = [(EventId(3, i), i) for i in range(12)]  # capacity is 8
    proto.on_receive(gossip_from(3, events), now=0.5)
    assert len(proto.buffer) == 8
    overflow = [d for d in dropped if d[2] == "overflow"]
    assert len(overflow) == 4
    # the four oldest (highest age) were dropped
    assert {d[0] for d in overflow} == {EventId(3, i) for i in (8, 9, 10, 11)}


def test_forwarding_includes_received_events():
    proto, _, _ = make_node()
    proto.on_receive(gossip_from(3, [(EventId(3, 0), 1)]), now=0.5)
    emissions = proto.on_round(now=1.0)
    ids = [e.id for e in emissions[0].message.events]
    assert EventId(3, 0) in ids


def test_dedup_prevents_rebuffering_after_drop():
    proto, delivered, _ = make_node()
    proto.on_receive(gossip_from(3, [(EventId(3, 0), 1)]), now=0.5)
    # push it out of the buffer with newer events
    events = [(EventId(4, i), 0) for i in range(8)]
    proto.on_receive(gossip_from(4, events), now=0.6)
    assert EventId(3, 0) not in proto.buffer
    proto.on_receive(gossip_from(5, [(EventId(3, 0), 2)]), now=0.7)
    assert EventId(3, 0) not in proto.buffer  # dedup remembered it
    assert len([d for d in delivered if d[0] == EventId(3, 0)]) == 1


def test_try_broadcast_always_admits_on_baseline():
    proto, _, _ = make_node()
    assert proto.try_broadcast("x", now=0.0) is not None
    assert proto.time_until_admission(0.0) == 0.0
    assert proto.allowed_rate is None


def test_set_buffer_capacity_runtime():
    proto, _, dropped = make_node()
    for i in range(8):
        proto.broadcast(f"m{i}", now=0.0)
    proto.set_buffer_capacity(4, now=1.0)
    assert proto.buffer.capacity == 4
    assert len(proto.buffer) == 4
    assert len([d for d in dropped if d[2] == "resize"]) == 4
    assert proto.buffer_capacity == 4


def test_stats_counters():
    proto, _, _ = make_node()
    proto.broadcast("x", now=0.0)
    proto.on_round(now=1.0)
    proto.on_receive(gossip_from(3, [(EventId(3, 0), 1)]), now=1.5)
    s = proto.stats
    assert s.broadcasts == 1
    assert s.rounds == 1
    assert s.messages_sent == proto.config.fanout
    assert s.messages_received == 1
    assert s.events_delivered == 2


def test_no_emission_when_alone():
    directory = Directory([0])
    proto = LpbcastProtocol(
        0,
        SystemConfig(buffer_capacity=8, dedup_capacity=64),
        FullMembershipView(directory, 0),
        random.Random(1),
    )
    proto.broadcast("x", now=0.0)
    assert proto.on_round(now=1.0) == []


def test_fanout_larger_than_group():
    proto, _, _ = make_node(n=3)  # 2 peers, fanout 4
    proto.broadcast("x", now=0.0)
    emissions = proto.on_round(now=1.0)
    assert len(emissions) == 2
