"""Tests for the age-ordered bounded event buffer.

Includes a hypothesis model test checking the anchor/heap implementation
against a brute-force reference that follows the paper's Figure 1
semantics literally.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.buffer import EventBuffer
from repro.gossip.events import EventId


def eid(n):
    return EventId("n", n)


def test_capacity_validated():
    with pytest.raises(ValueError):
        EventBuffer(0)


def test_add_and_lookup():
    buf = EventBuffer(4)
    buf.add(eid(1), age=2, payload="p")
    assert eid(1) in buf
    assert buf.age_of(eid(1)) == 2
    assert buf.payload_of(eid(1)) == "p"
    assert len(buf) == 1


def test_duplicate_add_rejected():
    buf = EventBuffer(4)
    buf.add(eid(1))
    with pytest.raises(ValueError):
        buf.add(eid(1))


def test_negative_age_rejected():
    buf = EventBuffer(4)
    with pytest.raises(ValueError):
        buf.add(eid(1), age=-1)


def test_advance_round_ages_everything():
    buf = EventBuffer(4)
    buf.add(eid(1), age=0)
    buf.add(eid(2), age=3)
    buf.advance_round()
    assert buf.age_of(eid(1)) == 1
    assert buf.age_of(eid(2)) == 4


def test_overflow_evicts_oldest_age_first():
    buf = EventBuffer(2)
    buf.add(eid(1), age=5)
    buf.add(eid(2), age=1)
    dropped = buf.add(eid(3), age=3)
    assert [d.id for d in dropped] == [eid(1)]
    assert dropped[0].age == 5
    assert dropped[0].reason == "overflow"
    assert set(buf.ids()) == {eid(2), eid(3)}


def test_overflow_tie_broken_by_arrival_order():
    buf = EventBuffer(2)
    buf.add(eid(1), age=2)
    buf.add(eid(2), age=2)
    dropped = buf.add(eid(3), age=0)
    assert [d.id for d in dropped] == [eid(1)]


def test_new_event_can_be_evicted_immediately():
    buf = EventBuffer(2)
    buf.add(eid(1), age=1)
    buf.add(eid(2), age=1)
    dropped = buf.add(eid(3), age=9)  # oldest on arrival
    assert [d.id for d in dropped] == [eid(3)]


def test_sync_age_raises_only():
    buf = EventBuffer(4)
    buf.add(eid(1), age=3)
    assert buf.sync_age(eid(1), 5)
    assert buf.age_of(eid(1)) == 5
    assert not buf.sync_age(eid(1), 2)  # lower ages are ignored
    assert buf.age_of(eid(1)) == 5
    assert not buf.sync_age(eid(9), 4)  # unknown id ignored


def test_sync_age_affects_eviction_order():
    buf = EventBuffer(2)
    buf.add(eid(1), age=0)
    buf.add(eid(2), age=0)
    buf.sync_age(eid(1), 7)
    dropped = buf.add(eid(3), age=1)
    assert [d.id for d in dropped] == [eid(1)]


def test_drop_aged_out():
    buf = EventBuffer(10)
    buf.add(eid(1), age=0)
    buf.add(eid(2), age=4)
    for _ in range(3):
        buf.advance_round()
    dropped = buf.drop_aged_out(max_age=5)
    assert [d.id for d in dropped] == [eid(2)]  # age 7 > 5
    assert dropped[0].reason == "age_out"
    assert eid(1) in buf  # age 3 <= 5


def test_drop_aged_out_boundary_inclusive():
    buf = EventBuffer(10)
    buf.add(eid(1), age=5)
    assert buf.drop_aged_out(max_age=5) == []  # equal is kept
    buf.advance_round()
    assert [d.id for d in buf.drop_aged_out(max_age=5)] == [eid(1)]


def test_resize_shrink_evicts_oldest():
    buf = EventBuffer(4)
    for i, age in enumerate([1, 4, 2, 3]):
        buf.add(eid(i), age=age)
    dropped = buf.resize(2)
    assert {d.id for d in dropped} == {eid(1), eid(3)}
    assert all(d.reason == "resize" for d in dropped)
    assert buf.capacity == 2


def test_resize_grow_keeps_everything():
    buf = EventBuffer(2)
    buf.add(eid(1))
    buf.add(eid(2))
    assert buf.resize(5) == []
    buf.add(eid(3))
    assert len(buf) == 3


def test_stage_then_evict_overflow():
    buf = EventBuffer(2)
    for i in range(5):
        buf.stage(eid(i), age=i)
    assert len(buf) == 5  # staging does not evict
    dropped = buf.evict_overflow()
    assert len(buf) == 2
    assert {d.id for d in dropped} == {eid(2), eid(3), eid(4)}
    assert set(buf.ids()) == {eid(0), eid(1)}


def test_snapshot_reflects_current_ages():
    buf = EventBuffer(4)
    buf.add(eid(1), age=1, payload="a")
    buf.advance_round()
    snap = buf.snapshot()
    assert len(snap) == 1
    assert snap[0].id == eid(1)
    assert snap[0].age == 2
    assert snap[0].payload == "a"


def test_oldest_excluding():
    buf = EventBuffer(10)
    for i, age in enumerate([5, 1, 3, 7]):
        buf.add(eid(i), age=age)
    oldest = buf.oldest_excluding(2)
    assert [x[0] for x in oldest] == [eid(3), eid(0)]
    assert [x[1] for x in oldest] == [7, 5]
    oldest = buf.oldest_excluding(2, exclude={eid(3)})
    assert [x[0] for x in oldest] == [eid(0), eid(2)]
    assert buf.oldest_excluding(0) == []


def test_compact_preserves_behaviour():
    buf = EventBuffer(3)
    for i in range(3):
        buf.add(eid(i), age=i)
    buf.sync_age(eid(0), 9)
    buf.compact()
    dropped = buf.add(eid(9), age=0)
    assert [d.id for d in dropped] == [eid(0)]


# ----------------------------------------------------------------------
# model-based property test
# ----------------------------------------------------------------------
class ModelBuffer:
    """Literal Figure 1 semantics: explicit ages, linear scans."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.items = {}  # id -> [age, arrival]
        self.arrival = 0

    def add(self, event_id, age):
        self.items[event_id] = [age, self.arrival]
        self.arrival += 1
        dropped = []
        while len(self.items) > self.capacity:
            victim = max(self.items, key=lambda k: (self.items[k][0], -self.items[k][1]))
            dropped.append((victim, self.items.pop(victim)[0]))
        return dropped

    def advance(self):
        for v in self.items.values():
            v[0] += 1

    def sync(self, event_id, age):
        if event_id in self.items:
            self.items[event_id][0] = max(self.items[event_id][0], age)

    def age_out(self, k):
        victims = sorted(
            (kv for kv in self.items.items() if kv[1][0] > k),
            key=lambda kv: (-kv[1][0], kv[1][1]),
        )
        out = []
        for key, (age, _arr) in victims:
            del self.items[key]
            out.append((key, age))
        return out


ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 30), st.integers(0, 8)),
        st.tuples(st.just("advance"), st.just(0), st.just(0)),
        st.tuples(st.just("sync"), st.integers(0, 30), st.integers(0, 12)),
        st.tuples(st.just("age_out"), st.just(0), st.integers(2, 10)),
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=ops, capacity=st.integers(1, 6))
def test_buffer_matches_model(ops, capacity):
    real = EventBuffer(capacity)
    model = ModelBuffer(capacity)
    for op, a, b in ops:
        if op == "add":
            if eid(a) in real:
                continue
            got = {(d.id, d.age) for d in real.add(eid(a), age=b)}
            want = set(model.add(eid(a), b))
            assert got == want
        elif op == "advance":
            real.advance_round()
            model.advance()
        elif op == "sync":
            real.sync_age(eid(a), b)
            model.sync(eid(a), b)
        else:  # age_out
            got = {(d.id, d.age) for d in real.drop_aged_out(b)}
            want = set(model.age_out(b))
            assert got == want
        assert set(real.ids()) == set(model.items)
        for key, (age, _arr) in model.items.items():
            assert real.age_of(key) == age
        assert len(real) <= capacity


def test_remove_specific_event():
    buf = EventBuffer(4)
    buf.add(eid(1), age=3, payload="p")
    removed = buf.remove(eid(1))
    assert removed.id == eid(1)
    assert removed.age == 3
    assert removed.payload == "p"
    assert removed.reason == "obsolete"
    assert eid(1) not in buf


def test_remove_missing_returns_none():
    buf = EventBuffer(4)
    assert buf.remove(eid(9)) is None


def test_remove_keeps_heap_consistent():
    buf = EventBuffer(3)
    buf.add(eid(1), age=9)
    buf.add(eid(2), age=1)
    buf.add(eid(3), age=5)
    buf.remove(eid(1))  # the oldest leaves a stale heap entry
    dropped = buf.add(eid(4), age=0)
    assert dropped == []  # capacity not exceeded
    dropped = buf.add(eid(5), age=0)
    assert [d.id for d in dropped] == [eid(3)]  # next-oldest, not the ghost


def test_remove_custom_reason():
    buf = EventBuffer(2)
    buf.add(eid(1))
    assert buf.remove(eid(1), reason="because").reason == "because"
