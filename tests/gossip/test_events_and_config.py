"""Tests for event identities and the gossip SystemConfig."""

import pytest

from repro.gossip.config import SystemConfig
from repro.gossip.events import EventColumns, EventId, EventSummary, make_event_id


def test_event_id_identity():
    assert EventId("a", 1) == EventId("a", 1)
    assert EventId("a", 1) != EventId("a", 2)
    assert EventId("a", 1) != EventId("b", 1)
    assert make_event_id("a", 1) == EventId("a", 1)


def test_event_id_hashable():
    s = {EventId("a", 1), EventId("a", 1), EventId("b", 2)}
    assert len(s) == 2


def test_event_summary_fields():
    summary = EventSummary(EventId("a", 1), 3, "payload")
    ident, age, payload = summary
    assert ident == EventId("a", 1)
    assert age == 3
    assert payload == "payload"


def test_system_config_defaults_valid():
    cfg = SystemConfig()
    assert cfg.fanout == 4
    assert cfg.buffer_capacity == 90


@pytest.mark.parametrize(
    "kwargs",
    [
        {"fanout": 0},
        {"gossip_period": 0},
        {"gossip_period": -1.0},
        {"buffer_capacity": 0},
        {"dedup_capacity": 10, "buffer_capacity": 20},
        {"max_age": 0},
        {"round_jitter": 0.5},
        {"round_jitter": -0.1},
    ],
)
def test_system_config_validation(kwargs):
    with pytest.raises(ValueError):
        SystemConfig(**kwargs)


def test_with_buffer_copies():
    cfg = SystemConfig(buffer_capacity=90)
    other = cfg.with_buffer(30)
    assert other.buffer_capacity == 30
    assert cfg.buffer_capacity == 90
    assert other.fanout == cfg.fanout


def test_config_is_frozen():
    cfg = SystemConfig()
    with pytest.raises(AttributeError):
        cfg.fanout = 10


# ----------------------------------------------------------------------
# EventColumns — the columnar wire form
# ----------------------------------------------------------------------
def _columns():
    return EventColumns(
        ids=(EventId("a", 0), EventId("b", 3)),
        base_round=10,
        anchors=(8, 10),
        payloads=("x", None),
    )


def test_event_columns_ages_are_anchor_relative():
    cols = _columns()
    assert cols.ages == (2, 0)
    # a different base with shifted anchors describes the same events
    rebased = EventColumns(cols.ids, 0, (-2, 0), cols.payloads)
    assert rebased.ages == cols.ages
    assert rebased == cols


def test_event_columns_iterates_as_summaries():
    cols = _columns()
    assert list(cols) == [
        EventSummary(EventId("a", 0), 2, "x"),
        EventSummary(EventId("b", 3), 0, None),
    ]
    assert cols[1] == EventSummary(EventId("b", 3), 0, None)
    assert len(cols) == 2
    assert cols.summaries() == tuple(cols)


def test_event_columns_equals_row_form_both_ways():
    cols = _columns()
    rows = tuple(cols)
    assert cols == rows
    assert rows == cols  # reflected comparison through tuple.__eq__
    assert hash(cols) == hash(rows)
    assert cols != rows[:1]
    assert cols != ()


def test_event_columns_from_summaries_roundtrip():
    rows = (
        EventSummary(EventId(1, 1), 5, b"p"),
        EventSummary(EventId(2, 2), 0, None),
    )
    cols = EventColumns.from_summaries(rows)
    assert cols == rows
    assert EventColumns.from_summaries(()) == ()


def test_event_columns_without_payloads():
    stripped = _columns().without_payloads()
    assert stripped.payloads == (None, None)
    assert stripped.ids == _columns().ids
    assert stripped.ages == _columns().ages


def test_event_columns_id_set_cached_and_shared():
    cols = _columns()
    assert cols.id_set == frozenset(cols.ids)
    assert cols.id_set is cols.id_set  # computed once
    assert cols.ages is cols.ages
