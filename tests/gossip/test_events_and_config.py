"""Tests for event identities and the gossip SystemConfig."""

import pytest

from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary, make_event_id


def test_event_id_identity():
    assert EventId("a", 1) == EventId("a", 1)
    assert EventId("a", 1) != EventId("a", 2)
    assert EventId("a", 1) != EventId("b", 1)
    assert make_event_id("a", 1) == EventId("a", 1)


def test_event_id_hashable():
    s = {EventId("a", 1), EventId("a", 1), EventId("b", 2)}
    assert len(s) == 2


def test_event_summary_fields():
    summary = EventSummary(EventId("a", 1), 3, "payload")
    ident, age, payload = summary
    assert ident == EventId("a", 1)
    assert age == 3
    assert payload == "payload"


def test_system_config_defaults_valid():
    cfg = SystemConfig()
    assert cfg.fanout == 4
    assert cfg.buffer_capacity == 90


@pytest.mark.parametrize(
    "kwargs",
    [
        {"fanout": 0},
        {"gossip_period": 0},
        {"gossip_period": -1.0},
        {"buffer_capacity": 0},
        {"dedup_capacity": 10, "buffer_capacity": 20},
        {"max_age": 0},
        {"round_jitter": 0.5},
        {"round_jitter": -0.1},
    ],
)
def test_system_config_validation(kwargs):
    with pytest.raises(ValueError):
        SystemConfig(**kwargs)


def test_with_buffer_copies():
    cfg = SystemConfig(buffer_capacity=90)
    other = cfg.with_buffer(30)
    assert other.buffer_capacity == 30
    assert cfg.buffer_capacity == 90
    assert other.fanout == cfg.fanout


def test_config_is_frozen():
    cfg = SystemConfig()
    with pytest.raises(AttributeError):
        cfg.fanout = 10
