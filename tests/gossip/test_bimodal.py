"""Unit tests for the bimodal-multicast-style substrate."""

import random

import pytest

from repro.gossip.bimodal import BimodalProtocol
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary
from repro.gossip.protocol import GossipMessage
from repro.membership.full import Directory, FullMembershipView


def make_node(node_id=0, n=8, **cfg):
    directory = Directory(range(n))
    config = SystemConfig(**{"buffer_capacity": 16, "dedup_capacity": 128, **cfg})
    delivered = []
    proto = BimodalProtocol(
        node_id,
        config,
        FullMembershipView(directory, node_id),
        random.Random(1),
        deliver_fn=lambda eid, p, t: delivered.append((eid, p)),
    )
    return proto, delivered


def test_broadcast_multicasts_to_everyone_next_round():
    proto, _ = make_node(n=8)
    proto.broadcast("x", now=0.0)
    emissions = proto.on_round(now=1.0)
    pushes = [e for e in emissions if e.message.kind == "multicast"]
    digests = [e for e in emissions if e.message.kind == "digest"]
    assert len(pushes) == 7  # every other member
    assert {e.dest for e in pushes} == set(range(1, 8))
    assert len(digests) == proto.config.fanout
    # the push carries the payload
    assert pushes[0].message.events[0].payload == "x"
    # a second round does not re-multicast
    again = [e for e in proto.on_round(now=2.0) if e.message.kind == "multicast"]
    assert again == []


def test_digest_carries_no_payloads():
    proto, _ = make_node()
    proto.broadcast("secret", now=0.0)
    emissions = proto.on_round(now=1.0)
    digest = next(e.message for e in emissions if e.message.kind == "digest")
    assert all(s.payload is None for s in digest.events)


def test_multicast_received_is_delivered():
    proto, delivered = make_node()
    msg = GossipMessage(
        sender=3,
        events=(EventSummary(EventId(3, 0), 0, "hello"),),
        kind="multicast",
    )
    assert proto.on_receive(msg, now=0.5) == []
    assert delivered == [(EventId(3, 0), "hello")]


def test_digest_triggers_request_for_missing():
    proto, _ = make_node()
    digest = GossipMessage(
        sender=3,
        events=(
            EventSummary(EventId(3, 0), 2, None),
            EventSummary(EventId(3, 1), 1, None),
        ),
        kind="digest",
    )
    replies = proto.on_receive(digest, now=0.5)
    assert len(replies) == 1
    request = replies[0]
    assert request.dest == 3
    assert request.message.kind == "request"
    assert {s.id for s in request.message.events} == {EventId(3, 0), EventId(3, 1)}
    assert proto.stats.requests_sent == 1
    assert proto.stats.events_requested == 2


def test_digest_of_known_events_syncs_ages_only():
    proto, _ = make_node()
    proto.on_receive(
        GossipMessage(sender=3, events=(EventSummary(EventId(3, 0), 1, "p"),),
                      kind="multicast"),
        now=0.4,
    )
    digest = GossipMessage(
        sender=4, events=(EventSummary(EventId(3, 0), 6, None),), kind="digest"
    )
    assert proto.on_receive(digest, now=0.5) == []
    assert proto.buffer.age_of(EventId(3, 0)) == 6


def test_request_served_from_buffer():
    proto, _ = make_node()
    proto.broadcast("data", now=0.0)
    request = GossipMessage(
        sender=5,
        events=(
            EventSummary(EventId(0, 0), 0, None),
            EventSummary(EventId(9, 9), 0, None),  # not held here
        ),
        kind="request",
    )
    replies = proto.on_receive(request, now=0.5)
    assert len(replies) == 1
    reply = replies[0].message
    assert reply.kind == "reply"
    assert [s.id for s in reply.events] == [EventId(0, 0)]
    assert reply.events[0].payload == "data"


def test_request_for_unknown_events_yields_nothing():
    proto, _ = make_node()
    request = GossipMessage(
        sender=5, events=(EventSummary(EventId(9, 9), 0, None),), kind="request"
    )
    assert proto.on_receive(request, now=0.5) == []


def test_reply_counts_repairs():
    proto, delivered = make_node()
    reply = GossipMessage(
        sender=5, events=(EventSummary(EventId(5, 0), 3, "fix"),), kind="reply"
    )
    proto.on_receive(reply, now=0.5)
    assert proto.stats.events_repaired == 1
    assert delivered == [(EventId(5, 0), "fix")]


def test_unknown_kind_rejected():
    proto, _ = make_node()
    with pytest.raises(ValueError):
        proto.on_receive(
            GossipMessage(sender=1, events=(), kind="carrier-pigeon"), now=0.0
        )


def test_overflow_and_age_out_match_substrate_rules():
    proto, _ = make_node(buffer_capacity=4, max_age=3)
    events = tuple(EventSummary(EventId(3, i), i % 3, None) for i in range(8))
    proto.on_receive(GossipMessage(sender=3, events=events, kind="multicast"), now=0.1)
    assert len(proto.buffer) == 4
    for r in range(5):
        proto.on_round(now=1.0 + r)
    assert len(proto.buffer) == 0  # everything aged out


def test_set_buffer_capacity():
    proto, _ = make_node()
    proto.set_buffer_capacity(2, now=1.0)
    assert proto.buffer_capacity == 2
