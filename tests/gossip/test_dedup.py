"""Tests for the FIFO-bounded duplicate-detection store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.dedup import DedupStore
from repro.gossip.events import EventId


def eid(n):
    return EventId("n", n)


def test_capacity_validated():
    with pytest.raises(ValueError):
        DedupStore(0)


def test_add_returns_true_for_new():
    store = DedupStore(4)
    assert store.add(eid(1))
    assert not store.add(eid(1))
    assert eid(1) in store
    assert len(store) == 1


def test_fifo_eviction():
    store = DedupStore(3)
    for i in range(5):
        store.add(eid(i))
    assert len(store) == 3
    assert eid(0) not in store
    assert eid(1) not in store
    assert all(eid(i) in store for i in (2, 3, 4))
    assert store.evictions == 2


def test_readding_refreshes_nothing():
    # Re-adding an id already present must not change its FIFO position.
    store = DedupStore(2)
    store.add(eid(1))
    store.add(eid(2))
    store.add(eid(1))  # no-op
    store.add(eid(3))  # evicts 1 (still oldest)
    assert eid(1) not in store
    assert eid(2) in store


def test_evicted_id_can_return():
    store = DedupStore(1)
    store.add(eid(1))
    store.add(eid(2))  # evicts 1
    assert store.add(eid(1))  # admitted again (the lpbcast artefact)


def test_resize_shrink_evicts_oldest():
    store = DedupStore(5)
    for i in range(5):
        store.add(eid(i))
    store.resize(2)
    assert set(store) == {eid(3), eid(4)}
    assert store.capacity == 2
    with pytest.raises(ValueError):
        store.resize(0)


def test_iteration_in_insertion_order():
    store = DedupStore(10)
    for i in (3, 1, 2):
        store.add(eid(i))
    assert list(store) == [eid(3), eid(1), eid(2)]


@settings(max_examples=200, deadline=None)
@given(
    ids=st.lists(st.integers(0, 20), max_size=80),
    capacity=st.integers(1, 8),
)
def test_dedup_matches_fifo_model(ids, capacity):
    store = DedupStore(capacity)
    model = []  # insertion-ordered unique ids, newest last
    for n in ids:
        added = store.add(eid(n))
        assert added == (eid(n) not in model)
        if added:
            model.append(eid(n))
            if len(model) > capacity:
                model.pop(0)
        assert list(store) == model
        assert len(store) <= capacity


def test_backing_dict_bulk_insert_and_trim_match_per_add():
    """The hot path's bulk insert + one trim equals per-add eviction."""
    per_add = DedupStore(5)
    bulk = DedupStore(5)
    ids = [eid(n) for n in range(12)]
    for e in ids:
        per_add.add(e)
    backing = bulk.backing
    for e in ids:
        if e not in backing:
            backing[e] = None
    assert bulk.trim() == 7
    assert list(bulk) == list(per_add)
    assert bulk.evictions == per_add.evictions == 7
    assert bulk.trim() == 0  # idempotent once within capacity


def test_backing_is_the_live_dict():
    store = DedupStore(4)
    store.add(eid(1))
    assert eid(1) in store.backing
    assert store.backing.keys() >= {eid(1)}
