"""Tests for semantic obsolescence purging ([11]-style)."""

import random

from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary
from repro.gossip.protocol import GossipMessage
from repro.gossip.semantics import KeyedPayloadPolicy, SemanticLpbcastProtocol
from repro.membership.full import Directory, FullMembershipView


def make_node(node_id=0, n=8, policy=None, **cfg):
    directory = Directory(range(n))
    config = SystemConfig(**{"buffer_capacity": 8, "dedup_capacity": 64, **cfg})
    drops = []
    proto = SemanticLpbcastProtocol(
        node_id,
        config,
        FullMembershipView(directory, node_id),
        random.Random(1),
        drop_fn=lambda eid, age, r, t: drops.append((eid, r)),
        policy=policy,
    )
    return proto, drops


def gossip(sender, entries):
    return GossipMessage(
        sender=sender,
        events=tuple(EventSummary(e, a, p) for e, a, p in entries),
    )


def test_default_policy_keys_pairs():
    assert KeyedPayloadPolicy(("stock:ACME", 101)) == "stock:ACME"
    assert KeyedPayloadPolicy("unkeyed") is None
    assert KeyedPayloadPolicy((1, 2, 3)) is None


def test_newer_update_purges_older():
    proto, drops = make_node()
    first = proto.broadcast(("k", 1), now=0.0)
    second = proto.broadcast(("k", 2), now=0.1)
    assert first not in proto.buffer
    assert second in proto.buffer
    assert (first, "obsolete") in drops
    assert proto.obsoleted == 1
    assert proto.stats.drops_obsolete == 1


def test_different_keys_coexist():
    proto, drops = make_node()
    a = proto.broadcast(("k1", 1), now=0.0)
    b = proto.broadcast(("k2", 1), now=0.1)
    assert a in proto.buffer and b in proto.buffer
    assert proto.obsoleted == 0


def test_unkeyed_payloads_never_obsoleted():
    proto, drops = make_node()
    a = proto.broadcast("plain", now=0.0)
    b = proto.broadcast("plain", now=0.1)
    assert a in proto.buffer and b in proto.buffer


def test_received_update_purges_local():
    proto, drops = make_node()
    mine = proto.broadcast(("k", 1), now=0.0)
    proto.on_receive(gossip(3, [(EventId(3, 0), 1, ("k", 2))]), now=0.5)
    assert mine not in proto.buffer
    assert EventId(3, 0) in proto.buffer


def test_duplicate_does_not_self_obsolete():
    proto, drops = make_node()
    proto.on_receive(gossip(3, [(EventId(3, 0), 1, ("k", 1))]), now=0.5)
    proto.on_receive(gossip(4, [(EventId(3, 0), 3, ("k", 1))]), now=0.6)
    assert EventId(3, 0) in proto.buffer
    assert proto.obsoleted == 0


def test_custom_policy():
    proto, drops = make_node(policy=lambda p: p["key"] if isinstance(p, dict) else None)
    a = proto.broadcast({"key": "x", "v": 1}, now=0.0)
    proto.broadcast({"key": "x", "v": 2}, now=0.1)
    assert a not in proto.buffer


def test_holder_map_bounded():
    proto, drops = make_node(buffer_capacity=4, dedup_capacity=4000)
    for i in range(200):
        proto.on_receive(
            gossip(3, [(EventId(3, i), 0, (f"key-{i}", i))]), now=0.01 * i
        )
    assert len(proto._holder_of) <= 4 * proto.config.buffer_capacity + 1


def test_semantic_frees_room_for_fresh_events():
    """With per-key updates, the buffer holds one live event per key
    instead of drowning in stale versions."""
    proto, drops = make_node(buffer_capacity=4)
    for i in range(12):
        proto.on_receive(
            gossip(3, [(EventId(3, i), 0, (f"k{i % 2}", i))]), now=0.01 * i
        )
    live_keys = {proto.buffer.payload_of(e)[0] for e in proto.buffer.ids()}
    assert live_keys == {"k0", "k1"}
    assert len(proto.buffer) == 2  # newest update per key only


def test_adaptive_semantic_composition():
    from repro.core.config import AdaptiveConfig
    from repro.core.semantics import AdaptiveSemanticLpbcastProtocol

    directory = Directory(range(6))
    proto = AdaptiveSemanticLpbcastProtocol(
        0,
        SystemConfig(buffer_capacity=8, dedup_capacity=64),
        FullMembershipView(directory, 0),
        random.Random(1),
        adaptive=AdaptiveConfig(age_critical=4.5),
    )
    first = proto.try_broadcast(("k", 1), now=0.0)
    second = proto.try_broadcast(("k", 2), now=0.01)
    assert first is not None and second is not None
    assert first not in proto.buffer  # semantic layer active
    assert proto.min_buff_estimate == 8  # adaptive layer active
    emissions = proto.on_round(now=1.0)
    assert emissions[0].message.adaptive is not None

def test_batch_receive_routes_through_semantic_override():
    """on_receive_batch must not bypass the subclass's on_receive wrapper
    (the simulated network's per-instant coalescing delivers through it)."""
    from repro.gossip.events import EventColumns

    proto, _drops = make_node()
    older = EventColumns.from_summaries(
        (EventSummary(EventId("s", 0), 0, ("key", 1)),)
    )
    newer = EventColumns.from_summaries(
        (EventSummary(EventId("s", 1), 0, ("key", 2)),)
    )
    proto.on_receive_batch(
        [
            GossipMessage(sender="s", events=older),
            GossipMessage(sender="s", events=newer),
        ],
        now=1.0,
    )
    assert proto.obsoleted == 1
    assert EventId("s", 0) not in proto.buffer
    assert EventId("s", 1) in proto.buffer
