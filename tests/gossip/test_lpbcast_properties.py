"""Property-based tests of protocol-level invariants.

A hypothesis-driven adversary feeds one lpbcast node arbitrary
interleavings of rounds, local broadcasts and incoming gossip messages
(valid but adversarial: duplicate ids, wild ages, oversized batches) and
checks the Figure 1 safety invariants after every step:

* the buffer never exceeds its capacity after an operation completes;
* an event id is never delivered twice while its id is remembered;
* every buffered event's id is remembered in ``eventIds``;
* emissions never target the node itself and never exceed the fanout;
* ages on the wire are never negative.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary
from repro.gossip.lpbcast import LpbcastProtocol
from repro.gossip.protocol import GossipMessage
from repro.membership.full import Directory, FullMembershipView

N = 10
CAPACITY = 6

event_ids = st.tuples(st.integers(1, 5), st.integers(0, 15)).map(
    lambda t: EventId(*t)
)
summaries = st.builds(
    EventSummary,
    id=event_ids,
    age=st.integers(0, 20),
    payload=st.none(),
)
operations = st.lists(
    st.one_of(
        st.just(("round",)),
        st.just(("broadcast",)),
        st.tuples(st.just("receive"), st.lists(summaries, max_size=12)),
    ),
    max_size=40,
)


@settings(max_examples=200, deadline=None)
@given(ops=operations)
def test_protocol_invariants_under_adversarial_input(ops):
    directory = Directory(range(N))
    config = SystemConfig(
        buffer_capacity=CAPACITY, dedup_capacity=64, max_age=8, fanout=4
    )
    delivered: list[EventId] = []
    proto = LpbcastProtocol(
        0,
        config,
        FullMembershipView(directory, 0),
        random.Random(7),
        deliver_fn=lambda eid, p, t: delivered.append(eid),
    )
    now = 0.0
    for op in ops:
        now += 0.1
        if op[0] == "round":
            emissions = proto.on_round(now)
            assert len(emissions) <= config.fanout
            for dest, message in emissions:
                assert dest != 0
                assert all(s.age >= 0 for s in message.events)
        elif op[0] == "broadcast":
            proto.broadcast(None, now)
        else:
            proto.on_receive(
                GossipMessage(sender=3, events=tuple(op[1])), now
            )
        # safety invariants after every operation
        assert len(proto.buffer) <= CAPACITY
        for eid in proto.buffer.ids():
            assert eid in proto.dedup
    # no event delivered twice while its id was remembered: with a dedup
    # store larger than everything we injected, that means never.
    assert len(delivered) == len(set(delivered))
