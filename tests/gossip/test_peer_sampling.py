"""Tests for gossip target selection strategies."""

import random

from repro.gossip.peer_sampling import AvoidRepeatSampler, UniformSampler
from repro.membership.full import Directory, FullMembershipView


def make_view(n=20, owner=0):
    return FullMembershipView(Directory(range(n)), owner)


def test_uniform_sampler_respects_fanout():
    view = make_view()
    sampler = UniformSampler()
    picked = sampler.select(view, 4, random.Random(1))
    assert len(picked) == 4
    assert len(set(picked)) == 4
    assert 0 not in picked


def test_uniform_sampler_covers_peers_over_time():
    view = make_view(n=10)
    sampler = UniformSampler()
    rng = random.Random(2)
    seen = set()
    for _ in range(100):
        seen.update(sampler.select(view, 3, rng))
    assert seen == set(range(1, 10))


def test_avoid_repeat_sampler_skips_last_round():
    view = make_view(n=30)
    sampler = AvoidRepeatSampler()
    rng = random.Random(3)
    first = set(sampler.select(view, 4, rng))
    second = set(sampler.select(view, 4, rng))
    assert not first & second


def test_avoid_repeat_degrades_on_small_views():
    view = make_view(n=4)  # 3 peers
    sampler = AvoidRepeatSampler()
    rng = random.Random(4)
    first = sampler.select(view, 3, rng)
    second = sampler.select(view, 3, rng)
    assert len(first) == 3
    assert len(second) == 3  # still full fanout despite overlap
