"""EventBuffer under adversarial duplicate traffic.

Every ``sync_age`` raise strands a stale heap entry (the lazy re-push
path documented in the module). Heavy duplicate age-raising must not let
the heap grow without bound — the automatic compaction has to kick in —
and, compacted or not, the observable drop behaviour must stay identical
to a brute-force model of Figure 1's buffer.
"""

import random

from repro.gossip.buffer import EventBuffer
from repro.gossip.events import EventId


class BruteForceBuffer:
    """O(n)-per-operation reference model of the paper's `events` store."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.items = {}  # id -> [age, arrival]
        self._arrivals = 0

    def add(self, event_id, age):
        self.items[event_id] = [age, self._arrivals]
        self._arrivals += 1
        dropped = []
        while len(self.items) > self.capacity:
            eid = max(self.items, key=lambda e: (self.items[e][0], -self.items[e][1]))
            dropped.append((eid, self.items.pop(eid)[0]))
        return dropped

    def sync_age(self, event_id, age):
        if event_id in self.items:
            self.items[event_id][0] = max(self.items[event_id][0], age)

    def advance(self):
        for item in self.items.values():
            item[0] += 1

    def drop_aged_out(self, max_age):
        dropped = sorted(
            (
                (eid, item[0])
                for eid, item in self.items.items()
                if item[0] > max_age
            ),
            key=lambda pair: (-pair[1], self.items[pair[0]][1]),
        )
        for eid, _age in dropped:
            del self.items[eid]
        return dropped


def test_heavy_duplicate_age_raising_stays_compact():
    """Millions of raises on a small buffer: heap stays O(live set)."""
    buf = EventBuffer(64)
    ids = [EventId("src", i) for i in range(64)]
    for i, eid in enumerate(ids):
        buf.add(eid, age=0)
    rng = random.Random(1)
    raises = 0
    for step in range(200):
        buf.advance_round()
        # every duplicate arrives with an age one above the stored one,
        # so every sync_age call strands a stale heap entry
        for eid in ids:
            if eid in buf:
                raised = buf.sync_age(eid, buf.age_of(eid) + rng.randint(0, 1))
                raises += raised
    assert raises > 4000  # the stress actually stressed
    # without compaction the heap would hold ~64 + raises entries
    assert len(buf._heap) < 8 * len(buf)


def test_compaction_preserves_drop_semantics():
    """Fuzz adds/raises/ageing against the brute-force model."""
    rng = random.Random(42)
    buf = EventBuffer(20)
    model = BruteForceBuffer(20)
    next_id = 0
    for step in range(3000):
        op = rng.random()
        if op < 0.25:
            eid = EventId("n", next_id)
            next_id += 1
            age = rng.randint(0, 5)
            got = buf.add(eid, age=age)
            expected = model.add(eid, age)
            assert sorted((d.id, d.age) for d in got) == sorted(expected)
        elif op < 0.85:
            live = list(buf.ids())
            if live:
                eid = rng.choice(live)
                target = buf.age_of(eid) + rng.randint(0, 3)
                buf.sync_age(eid, target)
                model.sync_age(eid, target)
        else:
            buf.advance_round()
            model.advance()
            got = buf.drop_aged_out(12)
            expected = model.drop_aged_out(12)
            assert sorted((d.id, d.age) for d in got) == sorted(expected)
        assert set(buf.ids()) == set(model.items)
        for eid in model.items:
            assert buf.age_of(eid) == model.items[eid][0]


def test_snapshot_cache_matches_fresh_build_under_random_interleavings():
    """Cache-hit, append-patch and rebuild paths all equal a fresh build.

    Drives random interleavings of every mutation the buffer supports —
    add/stage, sync_age (raising and not), drop_aged_out, remove, resize,
    advance_round — and after every step checks the cached columnar
    snapshot against the entry dict itself (ids, ages, payloads, order).
    """
    rng = random.Random(7)
    buf = EventBuffer(24)
    next_id = 0
    for step in range(4000):
        op = rng.random()
        if op < 0.30:
            buf.add(EventId("n", next_id), age=rng.randint(0, 6), payload=next_id)
            next_id += 1
        elif op < 0.50:
            live = list(buf.ids())
            if live:
                eid = rng.choice(live)
                buf.sync_age(eid, buf.age_of(eid) + rng.randint(-1, 2))
        elif op < 0.65:
            buf.advance_round()
        elif op < 0.78:
            buf.drop_aged_out(rng.randint(6, 14))
        elif op < 0.88:
            live = list(buf.ids())
            if live:
                buf.remove(rng.choice(live))
        elif op < 0.94:
            buf.resize(rng.randint(4, 32))
        else:
            buf.advance_round()  # consecutive rounds: pure cache hits
            buf.snapshot_columns()

        columns = buf.snapshot_columns()
        assert columns.ids == tuple(buf.ids())
        assert columns.ages == tuple(buf.age_of(e) for e in buf.ids())
        assert columns.payloads == tuple(buf.payload_of(e) for e in buf.ids())
        assert columns == tuple(buf.snapshot())  # row view agrees too
    assert next_id > 1000  # the stress actually exercised the buffer


def test_snapshot_cache_hits_share_column_tuples():
    """Consecutive unchanged rounds reuse the cached tuples outright."""
    buf = EventBuffer(16)
    for i in range(8):
        buf.add(EventId("s", i), age=i % 3)
    first = buf.snapshot_columns()
    buf.advance_round()  # ages everything; anchors (and columns) unchanged
    second = buf.snapshot_columns()
    assert second.ids is first.ids
    assert second.anchors is first.anchors
    assert second.payloads is first.payloads
    assert second.base_round == first.base_round + 1
    assert [age - 1 for age in second.ages] == list(first.ages)
    # an append patches incrementally: the old prefix is preserved
    buf.stage(EventId("s", 99), age=0, payload="fresh")
    third = buf.snapshot_columns()
    assert third.ids[: len(first.ids)] == first.ids
    assert third.ids[-1] == EventId("s", 99)


def test_explicit_compact_is_idempotent_and_lossless():
    buf = EventBuffer(32)
    for i in range(32):
        buf.add(EventId("x", i), age=i % 7)
    for i in range(32):
        buf.sync_age(EventId("x", i), 10 + i % 3)
    before = sorted((eid, buf.age_of(eid)) for eid in buf.ids())
    buf.compact()
    buf.compact()
    assert len(buf._heap) == len(buf)
    assert sorted((eid, buf.age_of(eid)) for eid in buf.ids()) == before
    # drop order unaffected by compaction
    dropped = buf.resize(1)
    assert len(dropped) == 31
