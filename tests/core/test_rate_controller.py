"""Tests for the Figure 5(c) rate controller."""

import random

import pytest

from repro.core.config import AdaptiveConfig
from repro.core.rate_controller import RateController, RateDecision


def make(rho=1.0, **kw):
    cfg = AdaptiveConfig(
        age_critical=5.0,
        mark_offset=0.5,
        rho=rho,
        dec=0.1,
        inc=0.1,
        initial_rate=10.0,
        min_rate=1.0,
        max_rate=100.0,
        max_tokens=4,
        **kw,
    )
    return RateController(cfg, random.Random(1))


def test_initial_rate():
    ctl = make()
    assert ctl.rate == 10.0


def test_decrease_on_congestion():
    ctl = make()
    decision = ctl.step(avg_age=4.0, avg_tokens=0.0)  # below L=4.5
    assert decision is RateDecision.DECREASE
    assert ctl.rate == pytest.approx(9.0)


def test_decrease_on_unused_grant():
    ctl = make()
    # age says roomy, but the grant is unused (avgTokens above max/2)
    decision = ctl.step(avg_age=9.0, avg_tokens=3.5)
    assert decision is RateDecision.DECREASE


def test_increase_needs_age_and_usage():
    ctl = make()
    decision = ctl.step(avg_age=6.0, avg_tokens=0.5)  # above H=5.5, used
    assert decision is RateDecision.INCREASE
    assert ctl.rate == pytest.approx(11.0)


def test_hold_inside_hysteresis_band():
    ctl = make()
    decision = ctl.step(avg_age=5.0, avg_tokens=0.5)  # between L and H
    assert decision is RateDecision.HOLD
    assert ctl.rate == 10.0


def test_hold_when_roomy_but_grant_idle_at_threshold():
    ctl = make()
    # tokens exactly at max/2: neither unused (>2) nor used (<2)
    decision = ctl.step(avg_age=6.0, avg_tokens=2.0)
    assert decision is RateDecision.HOLD


def test_none_age_counts_as_roomy():
    ctl = make()
    decision = ctl.step(avg_age=None, avg_tokens=0.0)
    assert decision is RateDecision.INCREASE


def test_none_age_never_decreases_via_age_rule():
    ctl = make()
    decision = ctl.step(avg_age=None, avg_tokens=3.9)  # unused grant only
    assert decision is RateDecision.DECREASE


def test_rho_randomizes_increase():
    cfg_rho = 0.3
    ctl = make(rho=cfg_rho)
    outcomes = [ctl.step(avg_age=6.0, avg_tokens=0.0) for _ in range(500)]
    increases = sum(1 for o in outcomes if o is RateDecision.INCREASE)
    skipped = sum(1 for o in outcomes if o is RateDecision.SKIPPED_INCREASE)
    assert increases + skipped == 500
    assert 0.2 < increases / 500 < 0.4  # ≈ rho


def test_rate_floor():
    ctl = make()
    for _ in range(200):
        ctl.step(avg_age=0.0, avg_tokens=4.0)
    assert ctl.rate == 1.0  # min_rate


def test_rate_ceiling():
    ctl = make()
    for _ in range(200):
        ctl.step(avg_age=9.0, avg_tokens=0.0)
    assert ctl.rate == 100.0  # max_rate


def test_set_rate_clamps():
    ctl = make()
    ctl.set_rate(0.01)
    assert ctl.rate == 1.0
    ctl.set_rate(1e9)
    assert ctl.rate == 100.0


def test_decision_counters():
    ctl = make()
    ctl.step(avg_age=4.0, avg_tokens=0.0)
    ctl.step(avg_age=5.0, avg_tokens=0.5)
    assert ctl.decisions[RateDecision.DECREASE] == 1
    assert ctl.decisions[RateDecision.HOLD] == 1


def test_explicit_marks_override_offset():
    cfg = AdaptiveConfig(age_critical=5.0, low_mark=2.0, high_mark=9.0)
    ctl = RateController(cfg, random.Random(1))
    assert ctl.low_mark == 2.0
    assert ctl.high_mark == 9.0
