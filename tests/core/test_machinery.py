"""Tests for the reusable AdaptiveMachinery component."""

import random

import pytest

from repro.core.config import AdaptiveConfig
from repro.core.machinery import AdaptiveMachinery
from repro.core.rate_controller import RateDecision
from repro.gossip.buffer import EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId


def make(buffer_capacity=20, **adaptive_kw):
    system = SystemConfig(buffer_capacity=buffer_capacity, dedup_capacity=100)
    acfg = AdaptiveConfig(
        age_critical=5.0, initial_rate=10.0, max_tokens=4, **adaptive_kw
    )
    return AdaptiveMachinery(
        "node", system, acfg, random.Random(1), now=0.0
    )


def test_initial_state():
    m = make()
    assert m.allowed_rate == 10.0
    assert m.min_buff_estimate == 20
    assert m.avg_age is None
    assert m.last_decision is None


def test_round_tick_returns_decision_and_updates_bucket():
    m = make()
    decision = m.round_tick(now=1.0)
    assert isinstance(decision, RateDecision)
    assert m.last_decision is decision
    assert m.bucket.rate == m.controller.rate


def test_header_roundtrip_between_instances():
    a = make(buffer_capacity=50)
    system = SystemConfig(buffer_capacity=20, dedup_capacity=100)
    b = AdaptiveMachinery(
        "small", system, AdaptiveConfig(age_critical=5.0), random.Random(2), now=0.0
    )
    a.on_header(b.header(0.5), now=0.5)
    assert a.min_buff_estimate == 20


def test_observe_buffer_accounts_excess():
    m = make(buffer_capacity=4)
    buf = EventBuffer(100)
    for i in range(8):
        buf.stage(EventId("x", i), age=i)
    accounted = m.observe_buffer(buf, now=0.5)
    assert accounted == 4  # 8 staged vs minBuff 4
    assert m.avg_age is not None


def test_admission_follows_bucket():
    m = make()
    admitted = 0
    while m.try_admit(now=0.0):
        admitted += 1
    assert admitted == 4  # max_tokens
    assert m.time_until_admission(0.0) == pytest.approx(0.1)  # 1/rate


def test_capacity_change_reaches_estimator():
    m = make(buffer_capacity=40)
    m.on_capacity_change(10, now=1.0)
    assert m.min_buff_estimate == 10


def test_stale_congestion_evidence_expires():
    """After evidence_ttl_rounds without new would-be drops, a frozen
    mid-band avgAge no longer blocks the increase rule."""
    m = make(buffer_capacity=4, rho=1.0, evidence_ttl_rounds=5)
    buf = EventBuffer(100)
    for i in range(8):
        buf.stage(EventId("x", i), age=5)  # exactly mid-band (tau = 5)
    m.observe_buffer(buf, now=0.1)
    assert m.avg_age == pytest.approx(5.0)
    # drain tokens so the grant reads as fully used; the avgTokens EWMA
    # needs ~7 rounds to register that, so run well past the TTL
    decisions = []
    for r in range(30):
        while m.try_admit(now=float(r)):
            pass
        decisions.append(m.round_tick(now=float(r) + 1e-3))
    # while the mid-band evidence was fresh nothing increased; once it
    # expired (and the grant read as used) increases kicked in
    from repro.core.rate_controller import RateDecision

    assert RateDecision.INCREASE not in decisions[:5]
    assert RateDecision.INCREASE in decisions[5:]
    assert m.allowed_rate > 10.0


def test_fresh_evidence_not_expired():
    m = make(buffer_capacity=4, evidence_ttl_rounds=3)
    buf = EventBuffer(100)
    for i in range(8):
        buf.stage(EventId("x", i), age=1)  # congested
    m.observe_buffer(buf, now=0.1)
    for r in range(2):
        m.round_tick(now=float(r) + 0.2)
    assert m.evidence_fresh
    # congested evidence still drives decreases while fresh
    assert m.allowed_rate < 10.0
