"""Unit tests for the integrated adaptive protocol (Figure 5)."""

import random

import pytest

from repro.core.adaptive import AdaptiveLpbcastProtocol, StaticRateLpbcastProtocol
from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId, EventSummary
from repro.gossip.protocol import GossipMessage
from repro.membership.full import Directory, FullMembershipView


def make_adaptive(node_id=0, n=10, buffer_capacity=8, **adaptive_kw):
    directory = Directory(range(n))
    config = SystemConfig(buffer_capacity=buffer_capacity, dedup_capacity=64)
    acfg = AdaptiveConfig(
        age_critical=5.0,
        initial_rate=10.0,
        min_rate=0.5,
        max_tokens=4,
        **adaptive_kw,
    )
    return AdaptiveLpbcastProtocol(
        node_id,
        config,
        FullMembershipView(directory, node_id),
        random.Random(1),
        adaptive=acfg,
    )


def gossip(sender, events, adaptive=None):
    return GossipMessage(
        sender=sender,
        events=tuple(EventSummary(e, a, None) for e, a in events),
        adaptive=adaptive,
    )


def test_emissions_carry_adaptive_header():
    proto = make_adaptive()
    proto.broadcast("x", now=0.0)
    emissions = proto.on_round(now=1.0)
    header = emissions[0].message.adaptive
    assert header is not None
    assert header.min_buff == 8  # own capacity, nothing heard yet


def test_receive_header_lowers_minbuff():
    proto = make_adaptive()
    from repro.gossip.protocol import AdaptiveHeader

    proto.on_receive(gossip(3, [], adaptive=AdaptiveHeader(0, 4)), now=0.5)
    assert proto.min_buff_estimate == 4


def test_congestion_estimated_against_minbuff():
    proto = make_adaptive()
    from repro.gossip.protocol import AdaptiveHeader

    proto.on_receive(gossip(3, [], adaptive=AdaptiveHeader(0, 2)), now=0.4)
    events = [(EventId(3, i), i) for i in range(6)]
    proto.on_receive(gossip(3, events), now=0.5)
    # buffer held 6 events against minBuff=2: 4 would-be drops accounted
    assert proto.avg_age is not None
    assert proto.congestion.events_accounted == 4


def test_try_broadcast_respects_tokens():
    proto = make_adaptive()
    admitted = 0
    for _ in range(10):
        if proto.try_broadcast("x", now=0.0) is not None:
            admitted += 1
    assert admitted == 4  # max_tokens
    assert proto.time_until_admission(0.0) > 0.0
    # tokens refill at the allowed rate (10/s)
    assert proto.try_broadcast("y", now=0.2) is not None


def test_rate_decreases_under_congestion_signal():
    proto = make_adaptive()
    # flood with young events so avgAge collapses below L
    for r in range(12):
        events = [(EventId(3, r * 40 + i), 1) for i in range(40)]
        proto.on_receive(gossip(3, events), now=0.1 * r)
        # keep the bucket drained so the unused-grant rule stays quiet
        while proto.try_broadcast("x", now=0.1 * r) is not None:
            pass
    before = proto.allowed_rate
    proto.on_round(now=2.0)
    assert proto.avg_age < 4.5
    assert proto.allowed_rate < before


def test_rate_increases_when_roomy_and_used():
    proto = make_adaptive(rho=1.0)
    # No congestion signal at all; drain the bucket right before each
    # round so avgTokens reads the grant as fully used. The avgTokens
    # EWMA starts at max, so the first rounds decrease — the increase
    # rule must win once the average catches up.
    for r in range(30):
        now = float(r)
        while proto.try_broadcast("x", now=now) is not None:
            pass
        proto.on_round(now=now + 1e-3)
    assert proto.allowed_rate > 10.0


def test_unused_grant_decays():
    proto = make_adaptive()
    for r in range(30):
        proto.on_round(now=float(r + 1))  # never broadcasts
    assert proto.allowed_rate < 10.0


def test_set_buffer_capacity_propagates_to_estimator():
    proto = make_adaptive()
    proto.set_buffer_capacity(4, now=1.0)
    assert proto.min_buff_estimate == 4
    assert proto.buffer.capacity == 4


def test_bucket_rate_follows_controller():
    proto = make_adaptive()
    proto.controller.set_rate(2.0)
    proto.on_round(now=1.0)
    assert proto.bucket.rate == proto.controller.rate


def test_static_rate_protocol_limits():
    directory = Directory(range(5))
    proto = StaticRateLpbcastProtocol(
        0,
        SystemConfig(buffer_capacity=8, dedup_capacity=64),
        FullMembershipView(directory, 0),
        random.Random(1),
        rate_limit=2.0,
        max_tokens=1.0,
    )
    assert proto.try_broadcast("a", now=0.0) is not None
    assert proto.try_broadcast("b", now=0.0) is None
    assert proto.time_until_admission(0.0) == pytest.approx(0.5)
    assert proto.allowed_rate == 2.0
    assert proto.try_broadcast("b", now=0.6) is not None


def test_adaptive_header_period_advances_with_time():
    proto = make_adaptive()
    sp = proto.minbuff._period_len
    h0 = proto._emission_headers(now=0.0)
    h1 = proto._emission_headers(now=sp * 3 + 0.1)
    assert h1.period == h0.period + 3
