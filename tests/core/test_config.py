"""Tests for AdaptiveConfig validation and derived values."""

import math

import pytest

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig


def test_defaults_valid():
    cfg = AdaptiveConfig()
    low, high = cfg.resolved_marks()
    assert low < cfg.age_critical < high


@pytest.mark.parametrize(
    "kwargs",
    [
        {"age_critical": 0},
        {"alpha": 1.0},
        {"alpha": -0.1},
        {"window": 0},
        {"dec": 0.0},
        {"dec": 1.0},
        {"inc": 0.0},
        {"rho": 0.0},
        {"rho": 1.5},
        {"max_tokens": 0},
        {"initial_rate": 0},
        {"min_rate": 0},
        {"min_rate": 5.0, "max_rate": 1.0},
        {"initial_rate": 0.01, "min_rate": 0.1},
        {"sample_period": 0},
        {"low_mark": 6.0, "high_mark": 5.0},
        {"mark_offset": -1.0},
        {"tokens_low_frac": 0.9, "tokens_high_frac": 0.1},
        {"tokens_low_frac": -0.1},
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        AdaptiveConfig(**kwargs)


def test_resolved_marks_default_offset():
    cfg = AdaptiveConfig(age_critical=5.0, mark_offset=0.75)
    assert cfg.resolved_marks() == (4.25, 5.75)


def test_resolved_marks_explicit():
    cfg = AdaptiveConfig(age_critical=5.0, low_mark=3.0, high_mark=8.0)
    assert cfg.resolved_marks() == (3.0, 8.0)


def test_resolved_sample_period_derived():
    cfg = AdaptiveConfig(age_critical=5.3)
    system = SystemConfig(gossip_period=2.0)
    assert cfg.resolved_sample_period(system) == math.ceil(5.3) * 2.0


def test_resolved_sample_period_explicit():
    cfg = AdaptiveConfig(sample_period=7.5)
    assert cfg.resolved_sample_period(SystemConfig()) == 7.5


def test_with_age_critical():
    cfg = AdaptiveConfig(age_critical=5.0)
    other = cfg.with_age_critical(4.0)
    assert other.age_critical == 4.0
    assert cfg.age_critical == 5.0
    assert other.resolved_marks() == (3.5, 4.5)
