"""Model-based property test for the minBuff estimator (Figure 5(a)).

A hypothesis adversary drives one estimator with an arbitrary interleaving
of clock advances, local capacity changes and received headers, and
checks it against a brute-force reference model that literally keeps
"the minimum of everything relevant per period" and combines the last W
periods. Invariants checked at every step:

* the estimate equals the reference model's windowed minimum;
* the estimate never exceeds the node's own current capacity... unless
  the capacity was recently lowered from an even lower value — precisely:
  the estimate is always ≤ the max capacity the node had in the window;
* period bookkeeping is monotone.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minbuff import MinBuffEstimator
from repro.gossip.protocol import AdaptiveHeader

PERIOD = 5.0
WINDOW = 3


class ModelMinBuff:
    """Brute force: remember every contribution per period."""

    def __init__(self, capacity):
        self.capacity = capacity
        self.contributions = {0: [capacity]}  # period -> values
        self.current = 0

    def _enter(self, period):
        if period > self.current:
            self.current = period
        self.contributions.setdefault(self.current, []).append(self.capacity)

    def advance_to(self, period):
        self._enter(max(period, self.current))

    def set_capacity(self, capacity):
        self.capacity = capacity
        self.contributions.setdefault(self.current, []).append(capacity)

    def on_header(self, period, value):
        if period > self.current:
            self._enter(period)
        if period <= self.current - WINDOW:
            return
        # a period we lived through contributes our capacity too
        self.contributions.setdefault(period, []).append(self.capacity)
        self.contributions[period].append(value)

    def min_buff(self):
        horizon = self.current - WINDOW
        values = []
        for period, contribution in self.contributions.items():
            if period > horizon:
                values.extend(contribution)
        # the current period always has at least our capacity
        return min(values) if values else self.capacity


ops = st.lists(
    st.one_of(
        st.tuples(st.just("tick"), st.floats(0.1, 12.0)),
        st.tuples(st.just("capacity"), st.integers(1, 100)),
        st.tuples(
            st.just("header"),
            st.tuples(st.integers(-2, 10), st.integers(1, 100)),
        ),
    ),
    max_size=30,
)


@settings(max_examples=300, deadline=None)
@given(ops=ops, initial=st.integers(1, 100))
def test_minbuff_matches_model(ops, initial):
    est = MinBuffEstimator(
        node_id="me",
        local_capacity=initial,
        sample_period=PERIOD,
        window=WINDOW,
        now=0.0,
    )
    model = ModelMinBuff(initial)
    now = 0.0
    for op, arg in ops:
        if op == "tick":
            now += arg
            est.advance(now)
            model.advance_to(int(math.floor(now / PERIOD)))
        elif op == "capacity":
            est.set_local_capacity(arg, now)
            model.advance_to(int(math.floor(now / PERIOD)))
            model.set_capacity(arg)
        else:
            period_offset, value = arg
            period = model.current + period_offset
            if period < 0:
                continue
            est.on_header(AdaptiveHeader(period, value), now)
            model.on_header(period, value)
        assert est.current_period == model.current
        assert est.min_buff() == model.min_buff()
        # the estimate can never exceed anything we contributed
        assert est.min_buff() <= max(
            v for vs in model.contributions.values() for v in vs
        )
