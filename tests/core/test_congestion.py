"""Tests for the local congestion estimator (Figure 5(b))."""

import pytest

from repro.core.congestion import CongestionEstimator
from repro.gossip.buffer import EventBuffer
from repro.gossip.events import EventId


def eid(n):
    return EventId("n", n)


def fill(buf, ages):
    for i, age in enumerate(ages):
        buf.stage(eid(i), age=age)


def test_no_excess_no_samples():
    buf = EventBuffer(10)
    fill(buf, [1, 2, 3])
    est = CongestionEstimator(alpha=0.9)
    assert est.update(buf, min_buff=5) == 0
    assert est.avg_age is None


def test_min_buff_validated():
    est = CongestionEstimator(alpha=0.9)
    with pytest.raises(ValueError):
        est.update(EventBuffer(5), min_buff=0)


def test_accounts_oldest_excess_events():
    buf = EventBuffer(10)
    fill(buf, [1, 5, 3, 7])  # oldest: id3(7), id1(5)
    est = CongestionEstimator(alpha=0.0)  # track last sample exactly
    n = est.update(buf, min_buff=2)
    assert n == 2
    # alpha=0: avg equals the last accounted age; both 7 and 5 were seen
    assert est.avg_age == 5.0
    assert est.accounted_live == 2


def test_each_event_accounted_once():
    buf = EventBuffer(10)
    fill(buf, [1, 5, 3, 7])
    est = CongestionEstimator(alpha=0.5)
    est.update(buf, min_buff=2)
    assert est.update(buf, min_buff=2) == 0  # same state, nothing new
    assert est.events_accounted == 2


def test_new_arrivals_extend_accounting():
    buf = EventBuffer(10)
    fill(buf, [4, 6])
    est = CongestionEstimator(alpha=0.5)
    est.update(buf, min_buff=1)  # accounts the age-6 event
    buf.stage(eid(10), age=9)
    n = est.update(buf, min_buff=1)  # the age-9 arrival is now excess
    assert n == 1
    assert est.events_accounted == 2


def test_accounted_pruned_when_events_leave_buffer():
    buf = EventBuffer(2)
    fill(buf, [4, 6])
    est = CongestionEstimator(alpha=0.5)
    est.update(buf, min_buff=1)
    buf.evict_overflow()  # nothing over capacity yet
    buf.add(eid(5), age=0)  # evicts the oldest accounted event
    est.update(buf, min_buff=1)
    assert est.accounted_live <= 2


def test_average_follows_ewma_rule():
    buf = EventBuffer(10)
    fill(buf, [8])
    est = CongestionEstimator(alpha=0.9, initial_age=4.0)
    est.update(buf, min_buff=1)  # buffer len 1, min_buff 1: no excess
    assert est.avg_age == 4.0
    buf.stage(eid(20), age=6)
    est.update(buf, min_buff=1)
    # one event accounted (the age-8 one is oldest): 0.9*4 + 0.1*8 = 4.4
    assert est.avg_age == pytest.approx(4.4)


def test_initial_age_used():
    est = CongestionEstimator(alpha=0.9, initial_age=5.3)
    assert est.avg_age == 5.3


def test_reset():
    buf = EventBuffer(10)
    fill(buf, [4, 6])
    est = CongestionEstimator(alpha=0.5)
    est.update(buf, min_buff=1)
    est.reset(2.0)
    assert est.avg_age == 2.0
    assert est.accounted_live == 0


def test_congestion_signal_lower_under_pressure():
    """The headline §2.3 behaviour: more load -> younger would-be drops."""
    est_light = CongestionEstimator(alpha=0.5)
    est_heavy = CongestionEstimator(alpha=0.5)
    light = EventBuffer(100)
    heavy = EventBuffer(100)
    # light: few events live long before exceeding minBuff
    fill(light, [9, 8, 7, 1])
    est_light.update(light, min_buff=3)
    # heavy: many young events flood past minBuff
    for i, age in enumerate([2, 2, 3, 1, 2, 3, 2, 1]):
        heavy.stage(EventId("h", i), age=age)
    est_heavy.update(heavy, min_buff=3)
    assert est_heavy.avg_age < est_light.avg_age
