"""Tests for the exponentially weighted moving average."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ewma import Ewma


def test_alpha_validated():
    with pytest.raises(ValueError):
        Ewma(1.0)
    with pytest.raises(ValueError):
        Ewma(-0.1)


def test_starts_empty_without_initial():
    e = Ewma(0.9)
    assert e.value is None
    assert e.samples == 0


def test_initial_value():
    e = Ewma(0.9, initial=5.0)
    assert e.value == 5.0


def test_first_sample_without_initial_becomes_value():
    e = Ewma(0.9)
    assert e.update(4.0) == 4.0


def test_update_rule_matches_paper():
    e = Ewma(0.9, initial=10.0)
    assert e.update(0.0) == pytest.approx(9.0)  # 0.9*10 + 0.1*0
    assert e.update(0.0) == pytest.approx(8.1)


def test_alpha_zero_tracks_last_sample():
    e = Ewma(0.0, initial=100.0)
    e.update(3.0)
    assert e.value == 3.0


def test_reset():
    e = Ewma(0.5, initial=1.0)
    e.update(2.0)
    e.reset()
    assert e.value is None
    assert e.samples == 0
    e.reset(7.0)
    assert e.value == 7.0


@settings(max_examples=200, deadline=None)
@given(
    alpha=st.floats(0.0, 0.99),
    initial=st.floats(-100, 100),
    samples=st.lists(st.floats(-100, 100), min_size=1, max_size=50),
)
def test_value_bounded_by_inputs(alpha, initial, samples):
    """The average always stays within [min, max] of everything seen."""
    e = Ewma(alpha, initial=initial)
    seen = [initial]
    for s in samples:
        e.update(s)
        seen.append(s)
        assert min(seen) - 1e-9 <= e.value <= max(seen) + 1e-9


@settings(max_examples=100, deadline=None)
@given(samples=st.lists(st.floats(0, 50), min_size=2, max_size=30))
def test_converges_to_constant_input(samples):
    e = Ewma(0.5)
    for s in samples:
        e.update(s)
    for _ in range(200):
        e.update(7.0)
    assert e.value == pytest.approx(7.0, abs=1e-6)
