"""Tests for the lazy token bucket (Figure 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tokens import TokenBucket


def test_validation():
    with pytest.raises(ValueError):
        TokenBucket(0, 5)
    with pytest.raises(ValueError):
        TokenBucket(1, 0)
    with pytest.raises(ValueError):
        TokenBucket(1, 5, initial=9)


def test_starts_full_by_default():
    b = TokenBucket(rate=1.0, max_tokens=5)
    assert b.tokens(0.0) == 5.0


def test_consume_and_refill():
    b = TokenBucket(rate=2.0, max_tokens=5, now=0.0, initial=0.0)
    assert not b.try_consume(0.0)
    assert b.try_consume(0.5)  # 1 token refilled
    assert b.tokens(0.5) == pytest.approx(0.0)
    assert b.tokens(3.0) == pytest.approx(5.0)  # capped at max


def test_refill_capped_at_max():
    b = TokenBucket(rate=10.0, max_tokens=3)
    assert b.tokens(100.0) == 3.0


def test_time_until():
    b = TokenBucket(rate=2.0, max_tokens=5, initial=0.0)
    assert b.time_until(1.0, 0.0) == pytest.approx(0.5)
    assert b.time_until(1.0, 0.25) == pytest.approx(0.25)
    b2 = TokenBucket(rate=1.0, max_tokens=5)
    assert b2.time_until(1.0, 0.0) == 0.0


def test_set_rate_credits_elapsed_at_old_rate():
    b = TokenBucket(rate=1.0, max_tokens=10, initial=0.0, now=0.0)
    b.set_rate(10.0, now=2.0)  # 2 tokens earned at the old rate
    assert b.tokens(2.0) == pytest.approx(2.0)
    assert b.tokens(2.5) == pytest.approx(7.0)  # then 10/s


def test_monotone_clock_enforced():
    b = TokenBucket(rate=1.0, max_tokens=5)
    b.tokens(2.0)
    with pytest.raises(ValueError):
        b.tokens(1.0)


def test_consume_amount_validation():
    b = TokenBucket(rate=1.0, max_tokens=5)
    with pytest.raises(ValueError):
        b.try_consume(0.0, amount=0)


@settings(max_examples=200, deadline=None)
@given(
    rate=st.floats(0.1, 50),
    max_tokens=st.integers(1, 10),
    steps=st.lists(st.floats(0.001, 2.0), min_size=1, max_size=40),
)
def test_conservation_property(rate, max_tokens, steps):
    """Admissions never exceed initial tokens + rate × elapsed time."""
    b = TokenBucket(rate=rate, max_tokens=max_tokens, now=0.0)
    now = 0.0
    admitted = 0
    for dt in steps:
        now += dt
        while b.try_consume(now):
            admitted += 1
        assert 0.0 <= b.tokens(now) <= max_tokens + 1e-9
    assert admitted <= max_tokens + rate * now + 1e-6


@settings(max_examples=100, deadline=None)
@given(rate=st.floats(0.5, 20), dt=st.floats(0.01, 5.0))
def test_time_until_is_exact(rate, dt):
    b = TokenBucket(rate=rate, max_tokens=5, initial=0.0, now=0.0)
    wait = b.time_until(1.0, 0.0)
    # one epsilon after the promised time, the token must be there
    assert b.try_consume(wait + 1e-9)
