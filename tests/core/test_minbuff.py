"""Tests for the distributed minimum-buffer estimator (Figure 5(a))."""

import pytest

from repro.core.aggregation import KSmallestAggregate
from repro.core.minbuff import MinBuffEstimator
from repro.gossip.protocol import AdaptiveHeader


def make(capacity=90, period=5.0, window=4, now=0.0, **kw):
    return MinBuffEstimator(
        node_id="me",
        local_capacity=capacity,
        sample_period=period,
        window=window,
        now=now,
        **kw,
    )


def test_validation():
    with pytest.raises(ValueError):
        make(capacity=0)
    with pytest.raises(ValueError):
        make(period=0)
    with pytest.raises(ValueError):
        make(window=0)


def test_initial_estimate_is_local_capacity():
    est = make(capacity=90)
    assert est.min_buff() == 90
    assert est.current_period == 0


def test_header_carries_current_period_sample():
    est = make(capacity=90, period=5.0)
    header = est.header(now=12.0)
    assert header.period == 2
    assert header.min_buff == 90


def test_on_header_lowers_estimate():
    est = make(capacity=90)
    est.on_header(AdaptiveHeader(period=0, min_buff=45), now=1.0)
    assert est.min_buff() == 45


def test_higher_remote_values_ignored():
    est = make(capacity=45)
    est.on_header(AdaptiveHeader(period=0, min_buff=90), now=1.0)
    assert est.min_buff() == 45


def test_windowed_minimum_spans_recent_periods():
    est = make(capacity=90, period=5.0, window=4)
    est.on_header(AdaptiveHeader(period=0, min_buff=45), now=1.0)
    # two periods later the old 45 still rules the window
    est.advance(now=11.0)
    assert est.min_buff() == 45
    # after the window passes without hearing 45 again, it is forgotten
    est.advance(now=21.0)  # period 4: horizon excludes period 0
    assert est.min_buff() == 90


def test_future_header_fast_forwards_clock():
    est = make(capacity=90, period=5.0)
    est.on_header(AdaptiveHeader(period=7, min_buff=60), now=1.0)
    assert est.current_period == 7
    assert est.min_buff() == 60


def test_too_old_headers_ignored():
    est = make(capacity=90, period=5.0, window=2)
    est.advance(now=20.0)  # period 4
    est.on_header(AdaptiveHeader(period=1, min_buff=10), now=20.0)
    assert est.min_buff() == 90


def test_capacity_decrease_takes_effect_immediately():
    est = make(capacity=90)
    est.set_local_capacity(30, now=1.0)
    assert est.min_buff() == 30
    assert est.header(now=1.5).min_buff == 30


def test_capacity_increase_is_delayed_by_window():
    est = make(capacity=30, period=5.0, window=2)
    est.set_local_capacity(90, now=1.0)
    # current period sample still carries the old 30 (merged minimum)
    assert est.min_buff() == 30
    est.advance(now=6.0)  # period 1: fresh sample at 90, window holds 30
    assert est.min_buff() == 30
    est.advance(now=11.0)  # period 2: the 30 has aged out of the window
    assert est.min_buff() == 90


def test_in_window_past_period_header_merges():
    est = make(capacity=90, period=5.0, window=4)
    est.advance(now=12.0)  # period 2
    est.on_header(AdaptiveHeader(period=1, min_buff=50), now=12.0)
    assert est.min_buff() == 50


def test_with_k_smallest_aggregate():
    agg = KSmallestAggregate(2)
    est = MinBuffEstimator(
        node_id="me",
        local_capacity=90,
        sample_period=5.0,
        window=2,
        aggregate=agg,
        now=0.0,
    )
    est.on_header(AdaptiveHeader(period=0, min_buff=agg.lift(10, "straggler")), now=1.0)
    # two nodes known (me@90, straggler@10): 2nd smallest is 90
    assert est.min_buff() == 90
    est.on_header(AdaptiveHeader(period=0, min_buff=agg.lift(40, "other")), now=2.0)
    assert est.min_buff() == 40


def test_monotone_advance_never_goes_back():
    est = make(period=5.0)
    est.on_header(AdaptiveHeader(period=9, min_buff=70), now=1.0)
    est.advance(now=2.0)  # wall period 0 < jumped period 9
    assert est.current_period == 9
