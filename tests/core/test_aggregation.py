"""Tests for gossip-mergeable capacity aggregates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import (
    KSmallestAggregate,
    MinAggregate,
    ThresholdedKSmallestAggregate,
)


def test_min_aggregate_basics():
    agg = MinAggregate()
    a = agg.lift(30, "a")
    b = agg.lift(50, "b")
    assert agg.result(agg.merge(a, b)) == 30
    assert agg.result(a) == 30


def test_k_smallest_validation():
    with pytest.raises(ValueError):
        KSmallestAggregate(0)
    with pytest.raises(ValueError):
        ThresholdedKSmallestAggregate(1, 0)


def test_k_smallest_counts_nodes_not_values():
    agg = KSmallestAggregate(2)
    state = agg.lift(30, "a")
    state = agg.merge(state, agg.lift(30, "b"))
    # two *nodes* at 30: the 2nd smallest is 30, not some larger value
    assert agg.result(state) == 30


def test_k_smallest_skips_single_straggler():
    agg = KSmallestAggregate(2)
    state = agg.lift(10, "straggler")
    state = agg.merge(state, agg.lift(90, "b"))
    state = agg.merge(state, agg.lift(80, "c"))
    assert agg.result(state) == 80  # 2nd smallest node


def test_k_smallest_conservative_below_k_nodes():
    agg = KSmallestAggregate(3)
    state = agg.merge(agg.lift(40, "a"), agg.lift(70, "b"))
    assert agg.result(state) == 40  # only 2 nodes known -> plain minimum


def test_k_smallest_node_reconfiguration_keeps_smallest():
    agg = KSmallestAggregate(2)
    state = agg.merge(agg.lift(50, "a"), agg.lift(30, "a"))
    assert state == ((30, "a"),)  # one node, its smallest capacity


def test_k_smallest_empty_state_rejected():
    agg = KSmallestAggregate(2)
    with pytest.raises(ValueError):
        agg.result(())


def test_thresholded_clamps_to_floor():
    agg = ThresholdedKSmallestAggregate(1, floor=25)
    state = agg.merge(agg.lift(5, "tiny"), agg.lift(90, "big"))
    assert agg.result(state) == 25


def test_merge_idempotent_commutative_associative():
    agg = KSmallestAggregate(2)
    a = agg.lift(10, "a")
    b = agg.lift(20, "b")
    c = agg.lift(30, "c")
    assert agg.merge(a, a) == a
    assert agg.merge(a, b) == agg.merge(b, a)
    assert agg.merge(agg.merge(a, b), c) == agg.merge(a, agg.merge(b, c))


caps = st.lists(
    st.tuples(st.integers(1, 100), st.integers(0, 9)), min_size=1, max_size=20
)


@settings(max_examples=200, deadline=None)
@given(pairs=caps, k=st.integers(1, 4))
def test_k_smallest_matches_bruteforce(pairs, k):
    """Merging in any grouping equals the k-th smallest over node minima."""
    agg = KSmallestAggregate(k)
    state = agg.lift(pairs[0][0], pairs[0][1])
    for capacity, node in pairs[1:]:
        state = agg.merge(state, agg.lift(capacity, node))
    best = {}
    for capacity, node in pairs:
        best[node] = min(best.get(node, capacity), capacity)
    ordered = sorted(best.values())
    expected = ordered[k - 1] if len(ordered) >= k else ordered[0]
    assert agg.result(state) == expected


@settings(max_examples=100, deadline=None)
@given(pairs=caps)
def test_min_matches_bruteforce(pairs):
    agg = MinAggregate()
    state = agg.lift(pairs[0][0], pairs[0][1])
    for capacity, node in pairs[1:]:
        state = agg.merge(state, agg.lift(capacity, node))
    assert agg.result(state) == min(c for c, _ in pairs)
