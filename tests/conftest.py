"""Shared test setup.

pytest's ``pythonpath`` config (pyproject.toml) puts ``src`` on the
in-process ``sys.path``, but tests that spawn ``sys.executable -m
repro...`` subprocesses (the standalone runtime) need the path in the
environment too. Exporting it here makes a bare ``python -m pytest``
work without installing the package or setting PYTHONPATH by hand.
"""

import os
import pathlib
import sys

_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

_existing = os.environ.get("PYTHONPATH")
if not _existing:
    os.environ["PYTHONPATH"] = _SRC
elif _SRC not in _existing.split(os.pathsep):
    os.environ["PYTHONPATH"] = _SRC + os.pathsep + _existing
