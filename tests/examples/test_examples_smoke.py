"""Every example is importable and runs end to end at a short horizon.

The examples are executable documentation; importing them must be free
of side effects (all run code lives in ``main()``), and each ``main``
accepts a horizon/duration knob so this smoke keeps them honest in
seconds. A rotted example fails here, not in a reader's terminal.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent.parent / "examples"


def load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "dynamic_resources",
        "churn_partial_views",
        "heterogeneous_cluster",
        "pubsub_topics",
        "real_runtime",
    ],
)
def test_example_importable_without_side_effects(name):
    module = load(name)
    assert callable(module.main)


def test_quickstart_runs(capsys):
    load("quickstart").main(horizon=24.0)
    out = capsys.readouterr().out
    assert "lpbcast" in out and "adaptive" in out


def test_dynamic_resources_runs(capsys):
    load("dynamic_resources").main(horizon=30.0)
    assert "allowed rate" in capsys.readouterr().out


def test_churn_partial_views_runs(capsys):
    load("churn_partial_views").main(horizon=30.0)
    assert "view size" in capsys.readouterr().out


def test_heterogeneous_cluster_runs(capsys):
    load("heterogeneous_cluster").main(horizon=24.0)
    assert "minimum (paper)" in capsys.readouterr().out


def test_pubsub_topics_runs(capsys):
    load("pubsub_topics").main(horizon=40.0)
    assert "minBuff estimate" in capsys.readouterr().out


def test_real_runtime_runs(capsys):
    load("real_runtime").main(seconds=1)
    assert "delivered per node" in capsys.readouterr().out
