"""Tests for runtime transports."""

import threading

import pytest

from repro.runtime.transport import InMemoryHub, UdpTransport


def test_inmemory_send_recv():
    hub = InMemoryHub()
    a = hub.create("a")
    b = hub.create("b")
    assert a.send("b", b"hello")
    assert b.recv(1.0) == (b"hello", "a")


def test_inmemory_recv_timeout():
    hub = InMemoryHub()
    a = hub.create("a")
    assert a.recv(0.01) is None


def test_inmemory_unknown_destination():
    hub = InMemoryHub()
    a = hub.create("a")
    assert not a.send("ghost", b"x")
    assert hub.dropped == 1


def test_inmemory_duplicate_address():
    hub = InMemoryHub()
    hub.create("a")
    with pytest.raises(ValueError):
        hub.create("a")


def test_inmemory_queue_overrun_drops():
    hub = InMemoryHub()
    a = hub.create("a")
    b = hub.create("b", max_queue=2)
    assert a.send("b", b"1")
    assert a.send("b", b"2")
    assert not a.send("b", b"3")  # queue full: best-effort drop
    assert b.recv(0.1) == (b"1", "a")


def test_inmemory_close_unregisters():
    hub = InMemoryHub()
    a = hub.create("a")
    b = hub.create("b")
    b.close()
    assert not a.send("b", b"x")
    with pytest.raises(RuntimeError):
        b.send("a", b"x")
    assert hub.addresses() == ["a"]


def test_inmemory_cross_thread():
    hub = InMemoryHub()
    a = hub.create("a")
    b = hub.create("b")
    received = []

    def receiver():
        packet = b.recv(2.0)
        if packet:
            received.append(packet)

    t = threading.Thread(target=receiver)
    t.start()
    a.send("b", b"threaded")
    t.join()
    assert received == [(b"threaded", "a")]


def test_udp_send_recv_localhost():
    a = UdpTransport()
    b = UdpTransport()
    try:
        assert a.send(b.address, b"ping")
        packet = b.recv(2.0)
        assert packet is not None
        data, src = packet
        assert data == b"ping"
        assert src == a.address
    finally:
        a.close()
        b.close()


def test_udp_recv_timeout():
    a = UdpTransport()
    try:
        assert a.recv(0.02) is None
    finally:
        a.close()


def test_udp_oversized_datagram_rejected():
    a = UdpTransport()
    try:
        with pytest.raises(ValueError):
            a.send(("127.0.0.1", 9), b"x" * 70000)
    finally:
        a.close()


def test_udp_send_after_close():
    a = UdpTransport()
    a.close()
    with pytest.raises(RuntimeError):
        a.send(("127.0.0.1", 9), b"x")
