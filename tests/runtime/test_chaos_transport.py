"""Tests for the fault-injecting chaos transport layer."""

import random
import time

import pytest

from repro.runtime.transport import (
    ChaosRules,
    ChaosTransport,
    InMemoryHub,
    Transport,
)
from repro.sim.network import BernoulliLoss, ConstantLatency, UniformLatency


class RecordingInner:
    """A stub Transport that records what actually hit the wire."""

    def __init__(self, address="stub"):
        self.address = address
        self.sent = []

    def send(self, dest, data):
        self.sent.append((dest, data))
        return True

    def recv(self, timeout):
        return None

    def close(self):
        pass


def test_transports_satisfy_the_protocol():
    hub = InMemoryHub()
    raw = hub.create("a")
    assert isinstance(raw, Transport)
    wrapped = ChaosTransport(raw, ChaosRules(), "a", seed=1)
    assert isinstance(wrapped, Transport)
    assert wrapped.address == raw.address


def test_same_seed_same_drop_decisions():
    """Seeded determinism: the same seed replays the same chaos."""

    def pattern(seed):
        rules = ChaosRules(loss=BernoulliLoss(0.4))
        inner = RecordingInner()
        transport = ChaosTransport(inner, rules, node=3, seed=seed)
        results = [
            transport.send("d", i.to_bytes(2, "big")) for i in range(200)
        ]
        rules.close()
        assert all(results)  # chaos drops are invisible to the caller
        return [int.from_bytes(data, "big") for _, data in inner.sent]

    assert pattern(7) == pattern(7)
    # and a different seed gives a different drop pattern (p ~ 1 - 2^-200)
    assert pattern(7) != pattern(8)


def test_same_seed_same_delay_draws():
    def delays(seed):
        rules = ChaosRules(latency=UniformLatency(0.01, 0.05))
        rng = random.Random(seed)
        out = [rules.plan(0, 1, rng) for _ in range(50)]
        rules.close()
        return out

    assert delays(42) == delays(42)
    assert delays(42) != delays(43)


def test_latency_scale_compresses_delays():
    rules = ChaosRules(latency=ConstantLatency(0.5), latency_scale=0.1)
    verdict = rules.plan(0, 1, random.Random(0))
    rules.close()
    assert verdict == pytest.approx(0.05)


def test_partition_blocks_cross_group_only():
    rules = ChaosRules()
    rules.partition([[0, 1], [2, 3]])
    rng = random.Random(0)
    assert rules.plan(0, 1, rng) == 0.0  # same group
    assert rules.plan(0, 2, rng) is None  # across the split
    assert rules.plan(4, 5, rng) == 0.0  # unmentioned nodes share group -1
    assert rules.plan(0, 4, rng) is None  # named vs unmentioned differ
    assert rules.stats.blocked == 2
    rules.heal()
    assert rules.plan(0, 2, rng) == 0.0
    rules.close()


def test_bandwidth_cap_windows():
    t = [100.0]
    rules = ChaosRules(clock=lambda: t[0])
    rules.set_bandwidth_cap(3.0)
    rng = random.Random(0)
    verdicts = [rules.plan(0, 1, rng) for _ in range(5)]
    assert verdicts == [0.0, 0.0, 0.0, None, None]
    assert rules.stats.capped == 2
    t[0] = 101.0  # a fresh one-second window refills the budget
    assert rules.plan(0, 1, rng) == 0.0
    rules.set_bandwidth_cap(None)
    assert all(rules.plan(0, 1, rng) == 0.0 for _ in range(10))
    rules.close()


def test_cap_validation():
    rules = ChaosRules()
    with pytest.raises(ValueError):
        rules.set_bandwidth_cap(0.0)
    with pytest.raises(ValueError):
        ChaosRules(latency_scale=0.0)
    rules.close()


def test_delayed_datagrams_arrive_late_but_arrive():
    hub = InMemoryHub()
    a_raw = hub.create("a")
    b = hub.create("b")
    rules = ChaosRules(latency=ConstantLatency(0.05))
    a = ChaosTransport(a_raw, rules, "a", seed=1)
    t0 = time.monotonic()
    for i in range(3):
        assert a.send("b", bytes([i]))
    assert b.recv(0.0) is None  # nothing on the wire yet: all in flight
    got = [b.recv(1.0) for _ in range(3)]
    elapsed = time.monotonic() - t0
    assert [data for data, _ in got] == [b"\x00", b"\x01", b"\x02"]
    assert elapsed >= 0.05
    assert rules.stats.delayed == 3
    rules.close()


def test_rule_updates_apply_mid_stream():
    rules = ChaosRules()
    inner = RecordingInner()
    transport = ChaosTransport(inner, rules, node=0, seed=0)
    transport.send("d", b"1")
    rules.set_loss(BernoulliLoss(1.0))  # now everything drops
    transport.send("d", b"2")
    transport.send("d", b"3")
    rules.set_loss(None)
    transport.send("d", b"4")
    assert [data for _, data in inner.sent] == [b"1", b"4"]
    assert rules.stats.dropped == 2
    rules.close()


def test_delay_line_close_drops_pending():
    hub = InMemoryHub()
    a_raw = hub.create("a")
    b = hub.create("b")
    rules = ChaosRules(latency=ConstantLatency(5.0))
    a = ChaosTransport(a_raw, rules, "a", seed=1)
    a.send("b", b"late")
    rules.close()  # pending delayed datagram is dropped, thread joins
    assert b.recv(0.05) is None


def test_oneway_cut_blocks_one_direction_only():
    rules = ChaosRules()
    rules.partition_oneway([[0, 1], [2, 3]], blocked=[(0, 1)])
    rng = random.Random(0)
    assert rules.plan(0, 2, rng) is None  # group 0 -> group 1: cut
    assert rules.plan(2, 0, rng) == 0.0  # reverse direction flows
    assert rules.plan(0, 1, rng) == 0.0  # inside a group
    assert rules.stats.oneway_blocked == 1
    rules.heal_oneway()
    assert rules.plan(0, 2, rng) == 0.0
    rules.close()


def test_link_loss_matrix_is_per_pair():
    rules = ChaosRules()
    rules.set_link_loss({(0, 1): 1.0})
    rng = random.Random(0)
    assert rules.plan(0, 1, rng) is None
    assert rules.plan(1, 0, rng) == 0.0  # reverse pair not in the matrix
    assert rules.plan(0, 2, rng) == 0.0
    assert rules.stats.link_dropped == 1
    rules.set_link_loss(None)
    assert rules.plan(0, 1, rng) == 0.0
    rules.close()


def test_link_loss_draws_rng_only_for_matrix_pairs():
    """Mirrors the sim discipline: pairs outside the matrix must not
    consume the chaos stream, or the matrix would shift every later
    draw and desynchronise unrelated links."""
    rules = ChaosRules(loss=None)
    rules.set_link_loss({(0, 1): 0.5})
    rng = random.Random(0)
    before = rng.getstate()
    rules.plan(0, 2, rng)
    assert rng.getstate() == before
    rules.plan(0, 1, rng)
    assert rng.getstate() != before
    rules.close()


def test_restart_reseeds_the_same_chaos_stream():
    """A crashed-and-restarted node rebuilds its ChaosTransport from the
    same derived seed (the cluster derives it from (seed, "chaos", node)),
    so the restarted node replays the identical drop pattern — restarts
    do not fork the chaos timeline."""

    def wire_pattern(run):
        rules = ChaosRules(loss=BernoulliLoss(0.4))
        rules.set_link_loss({("x", "d"): 0.3})
        inner = RecordingInner()
        transport = ChaosTransport(inner, rules, node="x", seed=99)
        for i in range(200):
            transport.send("d", i.to_bytes(2, "big"))
        rules.close()
        return [int.from_bytes(data, "big") for _, data in inner.sent]

    first_life = wire_pattern(0)
    restarted = wire_pattern(1)  # a fresh transport, same node + seed
    assert first_life == restarted
    assert 0 < len(first_life) < 200  # chaos actually ate something
