"""Tests for the threaded runtime node and cluster.

These use short gossip periods (tens of milliseconds) so each test
completes in about a second of wall time. Assertions are kept robust to
scheduling noise — they check reachability and counters, not timing.
"""

import time

import pytest

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.runtime.cluster import ThreadedCluster
from repro.runtime.codec import BinaryCodec
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import InMemoryHub


def fast_system(**kw):
    params = {"gossip_period": 0.03, "buffer_capacity": 64, "dedup_capacity": 512}
    params.update(kw)
    return SystemConfig(**params)


def test_cluster_requires_two_nodes():
    with pytest.raises(ValueError):
        ThreadedCluster(1)


def test_unknown_transport():
    with pytest.raises(ValueError):
        ThreadedCluster(2, transport="carrier-pigeon")


def test_broadcast_disseminates_in_memory():
    cluster = ThreadedCluster(6, system=fast_system(), seed=1)
    cluster.start()
    try:
        for i in range(5):
            cluster.broadcast(0, f"m{i}")
        time.sleep(1.0)
    finally:
        cluster.stop()
    # every node should have seen all five events through gossip
    for node_id in range(1, 6):
        proto = cluster.protocol_of(node_id)
        assert proto.stats.events_delivered >= 5


def test_run_for_convenience():
    cluster = ThreadedCluster(4, system=fast_system(), seed=2)
    cluster.broadcast(1, "x")
    cluster.run_for(0.8)
    delivered = sum(
        cluster.protocol_of(n).stats.events_delivered for n in range(4)
    )
    assert delivered >= 4


def test_udp_cluster_smoke():
    cluster = ThreadedCluster(4, system=fast_system(), transport="udp", seed=3)
    cluster.start()
    try:
        cluster.broadcast(0, "over-udp")
        deadline = time.time() + 3.0
        while time.time() < deadline:
            if all(
                cluster.protocol_of(n).stats.events_delivered >= 1 for n in range(4)
            ):
                break
            time.sleep(0.05)
    finally:
        cluster.stop()
    for n in range(1, 4):
        assert cluster.protocol_of(n).stats.events_delivered >= 1


def test_adaptive_cluster_headers_flow():
    cluster = ThreadedCluster(
        4,
        system=fast_system(buffer_capacity=32),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=4.5, sample_period=0.1),
        seed=4,
    )
    # one node is the constrained one
    cluster.protocol_of(3).set_buffer_capacity(8, 0.0)
    cluster.start()
    try:
        time.sleep(1.0)
    finally:
        cluster.stop()
    # everyone discovered the constrained buffer through gossip headers
    for n in range(3):
        assert cluster.protocol_of(n).min_buff_estimate == 8


def test_malformed_datagram_does_not_kill_node():
    hub = InMemoryHub()
    cluster_side = hub.create("node")
    attacker = hub.create("attacker")

    import random

    from repro.gossip.lpbcast import LpbcastProtocol
    from repro.membership.full import Directory, FullMembershipView

    directory = Directory(["node", "peer"])
    proto = LpbcastProtocol(
        "node",
        fast_system(),
        FullMembershipView(directory, "node"),
        random.Random(1),
    )
    node = RuntimeNode(
        proto,
        cluster_side,
        BinaryCodec(),
        {"node": "node", "peer": "peer"}.get,
        gossip_period=0.05,
    )
    node.start()
    try:
        attacker.send("node", b"\xde\xad\xbe\xef")
        attacker.send("node", b"")
        time.sleep(0.3)
        assert node.is_alive()
        assert node.decode_errors == 2
    finally:
        node.shutdown()


def test_offers_respect_admission():
    cluster = ThreadedCluster(
        3,
        system=fast_system(),
        protocol="static",
        rate_limit=5.0,
        seed=5,
    )
    cluster.start()
    try:
        for _ in range(100):
            cluster.broadcast(0, "x")
        time.sleep(1.0)
    finally:
        cluster.stop()
    node = cluster.nodes[0]
    # ~5/s for ~1s, plus the bucket depth (5): nowhere near 100
    assert node.offers_admitted <= 20
    assert node.offers_admitted >= 1


def test_send_failures_counted_for_unknown_dest():
    hub = InMemoryHub()
    endpoint = hub.create("n")

    import random

    from repro.gossip.lpbcast import LpbcastProtocol
    from repro.membership.full import Directory, FullMembershipView

    directory = Directory(["n", "missing"])
    proto = LpbcastProtocol(
        "n",
        fast_system(),
        FullMembershipView(directory, "n"),
        random.Random(1),
    )
    node = RuntimeNode(
        proto,
        endpoint,
        BinaryCodec(),
        lambda dest: None,  # resolver knows nobody
        gossip_period=0.03,
    )
    node.broadcast("payload")
    node.start()
    time.sleep(0.3)
    node.shutdown()
    assert node.send_failures > 0


def test_gossip_period_validated():
    hub = InMemoryHub()
    endpoint = hub.create("n")
    with pytest.raises(ValueError):
        RuntimeNode(None, endpoint, BinaryCodec(), lambda d: d, gossip_period=0)


def test_bimodal_over_threaded_runtime():
    """The anti-entropy request/reply path works through the real driver:
    on_receive's reply emissions are transmitted, and lost multicasts are
    repaired by pulls over the in-memory transport."""
    cluster = ThreadedCluster(
        5, system=fast_system(), protocol="bimodal", seed=8
    )
    cluster.start()
    try:
        for i in range(10):
            cluster.broadcast(2, f"b{i}")
        time.sleep(1.2)
    finally:
        cluster.stop()
    for node_id in range(5):
        assert cluster.protocol_of(node_id).stats.events_delivered >= 10
    digests = sum(
        cluster.protocol_of(n).stats.digests_sent for n in range(5)
    )
    assert digests > 0


def test_set_capacity_applies_on_the_node_thread():
    cluster = ThreadedCluster(3, system=fast_system(), seed=4)
    cluster.start()
    try:
        cluster.set_capacity(2, 7)
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if cluster.protocol_of(2).buffer_capacity == 7:
                break
            time.sleep(0.02)
    finally:
        cluster.stop()
    assert cluster.protocol_of(2).buffer_capacity == 7
    # the untouched nodes keep their configured capacity
    assert cluster.protocol_of(0).buffer_capacity == 64


def test_from_scenario_builds_threaded_cluster():
    from repro.scenarios.conditions import SlowReceivers
    from repro.scenarios.spec import ScenarioSpec, SenderSpec

    spec = ScenarioSpec(
        name="threaded-build",
        n_nodes=4,
        system=SystemConfig(buffer_capacity=40, dedup_capacity=400),
        senders=(SenderSpec(0, 5.0),),
        duration=30.0,
        warmup=5.0,
        drain=5.0,
        seed=3,
    ).stressed(SlowReceivers(capacity=9, nodes=(3,)))
    cluster = ThreadedCluster.from_scenario(spec, gossip_period=0.05)
    try:
        # the protocol profile carried over, rounds rescaled, and the
        # t=0 capacity override landed before any thread started
        assert cluster.system.gossip_period == 0.05
        assert cluster.system.buffer_capacity == 40
        assert cluster.protocol_of(3).buffer_capacity == 9
        assert cluster.group_size == 4
    finally:
        cluster.stop()


def test_adaptive_bimodal_over_threaded_runtime():
    cluster = ThreadedCluster(
        4,
        system=fast_system(),
        protocol="adaptive-bimodal",
        adaptive=AdaptiveConfig(age_critical=4.5, sample_period=0.2),
        seed=9,
    )
    cluster.start()
    try:
        cluster.broadcast(0, "x")
        time.sleep(0.8)
    finally:
        cluster.stop()
    assert cluster.protocol_of(1).stats.events_delivered >= 1
    assert cluster.protocol_of(1).min_buff_estimate == 64
