"""Integration tests: fault injection on a live threaded cluster.

These run real threads for fractions of a second, so assertions are
shaped to be timing-robust: a partition proves itself by *zero*
cross-partition deliveries (nothing can race to a false positive), and
heal/restart prove themselves by eventual delivery with generous round
budgets.
"""

import time

from repro.gossip.config import SystemConfig
from repro.runtime.cluster import ThreadedCluster
from repro.runtime.transport import ChaosRules

N = 8
SYSTEM = SystemConfig(
    gossip_period=0.05, fanout=3, buffer_capacity=60, dedup_capacity=500, max_age=30
)


def make_cluster(**kw):
    params = dict(n_nodes=N, system=SYSTEM, protocol="lpbcast", seed=3)
    params.update(kw)
    return ThreadedCluster(**params)


def delivered(cluster):
    return {n: cluster.protocol_of(n).stats.events_delivered for n in cluster.nodes}


def test_partition_then_heal():
    rules = ChaosRules()
    cluster = make_cluster(chaos=rules)
    left = list(range(N // 2))
    right = list(range(N // 2, N))
    rules.partition([left, right])
    cluster.start()
    try:
        for i in range(5):
            cluster.broadcast(0, f"pre-{i}")
        time.sleep(0.8)  # ~16 rounds: plenty inside the left half
        snapshot = delivered(cluster)
        # the only source is node 0 (left half): the right half must
        # have seen *nothing* while the partition stood
        assert all(snapshot[n] == 0 for n in right)
        assert any(snapshot[n] > 0 for n in left)
        assert rules.stats.blocked > 0  # gossip did try to cross

        rules.heal()
        for i in range(5):
            cluster.broadcast(0, f"post-{i}")
        time.sleep(1.5)
    finally:
        cluster.stop()
    final = delivered(cluster)
    # after the heal, fresh broadcasts reach both halves
    assert all(final[n] > 0 for n in cluster.nodes)


def test_crash_then_restart_rejoins_with_fresh_state():
    cluster = make_cluster()
    victim = N - 1
    cluster.start()
    try:
        for i in range(4):
            cluster.broadcast(0, f"pre-{i}")
        time.sleep(0.6)
        pre = cluster.protocol_of(victim).stats.events_delivered
        assert pre > 0
        cluster.crash_node(victim)
        assert not cluster.directory.is_alive(victim)
        assert not cluster.nodes[victim].is_alive()

        cluster.join_node(victim)
        assert cluster.directory.is_alive(victim)
        assert cluster.nodes[victim].is_alive()
        # a restart is a fresh process under the old identity
        assert cluster.protocol_of(victim).stats.events_delivered == 0

        for i in range(4):
            cluster.broadcast(0, f"post-{i}")
        time.sleep(1.0)
    finally:
        cluster.stop()
    assert cluster.protocol_of(victim).stats.events_delivered > 0


def test_leave_is_graceful_and_idempotent():
    cluster = make_cluster(membership="partial", view_size=4)
    cluster.start()
    try:
        leaver = N - 1
        cluster.leave_node(leaver)
        cluster.leave_node(leaver)  # idempotent
        assert not cluster.directory.is_alive(leaver)
        cluster.broadcast(0, "after-leave")
        time.sleep(0.4)
    finally:
        cluster.stop()
    # by teardown at the latest, the unsubscribe ran on the node thread
    # (the grace period is non-blocking; stop() joins everything)
    assert cluster.protocol_of(leaver).membership.unsubscribed
    # the group keeps working without the leaver
    others = [n for n in cluster.nodes if n != leaver]
    assert any(cluster.protocol_of(n).stats.events_delivered > 0 for n in others)


def test_leave_then_rejoin_within_the_grace_window():
    # a graceful leave defers its shutdown on a timer; rejoining before
    # it fires must supersede it, and the timer's late endpoint close
    # must not unregister the rejoined node's fresh endpoint
    cluster = make_cluster(membership="partial", view_size=4)
    cluster.start()
    try:
        n = N - 1
        cluster.leave_node(n)
        node = cluster.join_node(n)  # inside the grace window
        assert cluster.directory.is_alive(n)
        assert node.is_alive()
        grace = 0.05 + SYSTEM.gossip_period * 1.2
        time.sleep(grace + 0.2)  # outlive the grace timer
        assert node.is_alive()
        assert n in cluster._hub.addresses()  # still routable
    finally:
        cluster.stop()


def test_join_grows_the_group():
    cluster = make_cluster()
    cluster.start()
    try:
        newcomer = N  # an id beyond the initial group
        cluster.join_node(newcomer)
        assert cluster.directory.is_alive(newcomer)
        for i in range(6):
            cluster.broadcast(0, f"m-{i}")
        time.sleep(1.0)
    finally:
        cluster.stop()
    assert cluster.protocol_of(newcomer).stats.events_delivered > 0


def test_stop_closes_chaos_delay_line():
    rules = ChaosRules()
    cluster = make_cluster(chaos=rules)
    cluster.start()
    cluster.stop()
    assert rules.delay_line._closed
