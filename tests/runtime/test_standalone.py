"""Tests for the standalone node CLI and process launcher."""

import json
import subprocess
import sys

import pytest

from repro.runtime.standalone import _parse_peers, build_parser


def test_parse_peers():
    book = _parse_peers(["1=127.0.0.1:9001", "2=10.0.0.5:80"])
    assert book == {1: ("127.0.0.1", 9001), 2: ("10.0.0.5", 80)}


def test_parse_peers_rejects_garbage():
    with pytest.raises(SystemExit):
        _parse_peers(["nonsense"])
    with pytest.raises(SystemExit):
        _parse_peers(["1=nohost"])


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.protocol == "lpbcast"
    assert args.duration == 10.0
    assert args.launch is None


def test_parser_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["--protocol", "smoke-signals"])


def test_single_node_process_runs_and_reports():
    out = subprocess.run(
        [
            sys.executable, "-m", "repro.runtime.standalone",
            "--node-id", "7", "--port", "0", "--duration", "1.0",
            "--offered-rate", "5",
        ],
        capture_output=True, text=True, timeout=60, check=True,
    )
    report = json.loads(out.stdout.strip().splitlines()[-1])
    assert report["node_id"] == 7
    assert report["broadcasts"] >= 3
    # alone in the group: its own deliveries only, nothing received
    assert report["events_delivered"] == report["broadcasts"]
    assert report["messages_received"] == 0


def test_launched_group_disseminates():
    out = subprocess.run(
        [
            sys.executable, "-m", "repro.runtime.standalone",
            "--launch", "3", "--base-port", "9760",
            "--protocol", "lpbcast", "--duration", "2.5",
            "--offered-rate", "10", "--senders", "1", "--period", "0.05",
        ],
        capture_output=True, text=True, timeout=90, check=True,
    )
    reports = [json.loads(line) for line in out.stdout.strip().splitlines()]
    assert len(reports) == 3
    by_id = {r["node_id"]: r for r in reports}
    sent = by_id[0]["broadcasts"]
    assert sent >= 10
    # non-senders received most of the sender's events over real UDP
    for node_id in (1, 2):
        assert by_id[node_id]["events_delivered"] >= 0.6 * sent
        assert by_id[node_id]["decode_errors"] == 0


def test_parse_link_loss_builds_a_matrix():
    from repro.runtime.standalone import _parse_link_loss

    matrix = _parse_link_loss(["0:1:0.5", "2:0:0.1"])
    assert matrix == {(0, 1): 0.5, (2, 0): 0.1}
    assert _parse_link_loss([]) == {}


def test_parse_link_loss_rejects_garbage():
    from repro.runtime.standalone import _parse_link_loss

    for bad in ("0:1", "0:1:x", "a:b:0.5", "0:1:0.5:9"):
        with pytest.raises(SystemExit, match="chaos-link-loss"):
            _parse_link_loss([bad])


def test_parse_oneway_shares_groups_across_entries():
    from repro.runtime.standalone import _parse_oneway

    groups, blocked = _parse_oneway(["0,1>2,3", "2,3>0,1"])
    assert groups == [[0, 1], [2, 3]]
    # both directions named the same two groups — no duplicates minted
    assert blocked == [(0, 1), (1, 0)]


def test_parse_oneway_rejects_garbage():
    from repro.runtime.standalone import _parse_oneway

    for bad in ("0,1", ">2", "0,1>", "a>b"):
        with pytest.raises(SystemExit, match="chaos-oneway"):
            _parse_oneway([bad])


def test_build_chaos_is_none_without_flags():
    from repro.runtime.standalone import _build_chaos, build_parser

    peers = {0: ("127.0.0.1", 9500), 1: ("127.0.0.1", 9501)}
    args = build_parser().parse_args(["--node-id", "0"])
    assert _build_chaos(args, peers) is None
    args = build_parser().parse_args(
        ["--node-id", "0", "--chaos-oneway", "0>1",
         "--chaos-link-loss", "0:1:0.5"]
    )
    rules = _build_chaos(args, peers)
    assert rules is not None
