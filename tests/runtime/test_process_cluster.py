"""Worker lifecycle for the multi-process UDP driver.

Three properties the process driver must hold beyond scenario parity:

* **Deterministic seeded port maps** — the same seed always derives the
  same address book (that is what makes every worker's replicated
  address book coherent), and the attempt salt derives a genuinely
  fresh one after a bind race.
* **Port-collision retry** — a port that is already bound is skipped at
  map time, and a map that loses the probe-to-bind race is rebuilt.
* **Orphan safety** — a worker whose parent disappears (pipe EOF)
  exits on its own, before or during a run; no leaked processes or
  sockets survive the suite.
"""

import multiprocessing
import socket
import time

import pytest

from repro.runtime.process_cluster import (
    ProcessCluster,
    scenario_identities,
    seeded_port_map,
)
from repro.runtime.worker import WorkerConfig, worker_main
from repro.scenarios.registry import get_scenario
from repro.scenarios.runner import run_scenario_process, smoke_profile


# ----------------------------------------------------------------------
# seeded port maps
# ----------------------------------------------------------------------
def test_port_map_is_deterministic_for_a_seed():
    nodes = list(range(24))
    # probe=False: pure derivation, no environment in the loop
    first = seeded_port_map(nodes, seed=7, probe=False)
    second = seeded_port_map(nodes, seed=7, probe=False)
    assert first == second


def test_port_map_assigns_unique_in_range_ports():
    nodes = list(range(64))
    ports = [port for _, port in seeded_port_map(nodes, seed=3, probe=False).values()]
    assert len(set(ports)) == len(nodes)
    assert all(20000 <= p < 56000 for p in ports)


def test_attempt_salt_derives_a_fresh_map():
    nodes = list(range(16))
    base = seeded_port_map(nodes, seed=7, probe=False)
    retry = seeded_port_map(nodes, seed=7, probe=False, attempt=1)
    assert base != retry  # a re-map after a bind race replays nothing


def test_port_map_skips_an_occupied_port():
    nodes = list(range(8))
    contested = seeded_port_map(nodes, seed=11, probe=False)[0]
    holder = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        holder.bind(contested)
        remapped = seeded_port_map(nodes, seed=11, probe=True)
        assert contested not in remapped.values()
        # every port it did hand out is genuinely bindable right now
        for node in nodes:
            probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                probe.bind(remapped[node])
            finally:
                probe.close()
    finally:
        holder.close()


def test_identities_cover_churn_joiners_and_crash_targets():
    spec = get_scenario("rolling-churn", smoke_profile())
    identities = scenario_identities(spec)
    assert set(range(spec.n_nodes)) <= set(identities)
    for event in spec.churn.sorted_events():
        assert event.node in identities  # future joiners get ports up front


def test_shards_partition_every_identity_exactly_once():
    spec = get_scenario("overload-baseline", smoke_profile())
    cluster = ProcessCluster(spec, n_workers=3)
    shards = cluster.shards(scenario_identities(spec))
    flat = [node for shard in shards for node in shard]
    assert sorted(flat) == scenario_identities(spec)
    assert len(shards) == 3
    assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1


# ----------------------------------------------------------------------
# end to end, briefly
# ----------------------------------------------------------------------
def test_tiny_run_delivers_and_leaks_nothing():
    spec = get_scenario("overload-baseline", smoke_profile()).with_horizon(6.0)
    before = len(multiprocessing.active_children())
    report = run_scenario_process(spec)
    assert report.delivered_total > 0
    assert report.skipped_count == 0
    assert report.n_workers >= 2
    assert report.bind_errors == 0
    # every worker joined in teardown; nothing outlives the run
    assert len(multiprocessing.active_children()) <= before


# ----------------------------------------------------------------------
# orphan safety
# ----------------------------------------------------------------------
def _configured_worker(horizon=30.0):
    """Spawn one real worker process, configured and ready."""
    spec = get_scenario("overload-baseline", smoke_profile()).with_horizon(horizon)
    identities = scenario_identities(spec)
    port_map = seeded_port_map(identities, spec.seed)
    cfg = WorkerConfig(
        worker_id=0,
        n_workers=1,
        spec=spec,
        nodes=tuple(identities),
        port_map=port_map,
        gossip_period=0.1,
        wall_seconds=horizon * 0.1 / spec.system.gossip_period,
    )
    ctx = multiprocessing.get_context("spawn")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=worker_main, args=(child_conn,), daemon=True)
    proc.start()
    child_conn.close()
    parent_conn.send(("configure", cfg))
    assert parent_conn.poll(30.0), "worker never answered configure"
    msg = parent_conn.recv()
    assert msg == ("ready", 0), msg
    return proc, parent_conn


def test_worker_exits_when_parent_vanishes_before_start():
    proc, conn = _configured_worker()
    conn.close()  # the parent "crashes" before releasing the barrier
    proc.join(timeout=10.0)
    assert proc.exitcode == 0, "orphaned worker kept waiting at the barrier"


def test_worker_exits_when_parent_vanishes_mid_run():
    proc, conn = _configured_worker()
    conn.send(("start",))
    time.sleep(0.5)  # genuinely mid-run (wall is ~30s of scaled horizon)
    conn.close()  # parent gone; the watchdog must notice the EOF
    proc.join(timeout=10.0)
    assert proc.exitcode == 0, "orphaned worker outlived its parent"


def test_worker_reports_a_lost_bind_race():
    spec = get_scenario("overload-baseline", smoke_profile()).with_horizon(6.0)
    identities = scenario_identities(spec)
    port_map = seeded_port_map(identities, spec.seed)
    holder = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        holder.bind(port_map[identities[0]])  # steal a port post-probe
        cfg = WorkerConfig(
            worker_id=0,
            n_workers=1,
            spec=spec,
            nodes=tuple(identities),
            port_map=port_map,
            gossip_period=0.1,
            wall_seconds=5.0,
        )
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(target=worker_main, args=(child_conn,), daemon=True)
        proc.start()
        child_conn.close()
        parent_conn.send(("configure", cfg))
        assert parent_conn.poll(30.0)
        msg = parent_conn.recv()
        assert msg[0] == "bind_failed"  # the parent then re-maps and respawns
        proc.join(timeout=10.0)
        assert proc.exitcode == 0
        parent_conn.close()
    finally:
        holder.close()


def test_no_processes_leak_after_a_failed_startup():
    spec = get_scenario("overload-baseline", smoke_profile()).with_horizon(6.0)
    cluster = ProcessCluster(spec, n_workers=2)
    cluster.BIND_ATTEMPTS = 1
    identities = scenario_identities(spec)
    # hold *every* mapped port of the only attempt so startup must fail
    holders = []
    try:
        port_map = seeded_port_map(identities, spec.seed, probe=False)
        for addr in port_map.values():
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            try:
                sock.bind(addr)
                holders.append(sock)
            except OSError:
                sock.close()
        if not holders:
            pytest.skip("could not occupy any mapped port")
        before = len(multiprocessing.active_children())
        # the probing map builder dodges the held ports, so collide the
        # worker directly: probe=False map with ports we already hold
        with pytest.raises(RuntimeError):
            saved = seeded_port_map
            try:
                import repro.runtime.process_cluster as pc

                pc.seeded_port_map = (
                    lambda ids, seed, host="127.0.0.1", attempt=0, **kw: port_map
                )
                cluster.run(wall_seconds=2.0)
            finally:
                pc.seeded_port_map = saved
        assert len(multiprocessing.active_children()) <= before
    finally:
        for sock in holders:
            sock.close()
