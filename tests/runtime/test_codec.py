"""Tests for the wire codecs, including a round-trip property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gossip.buffer import EventBuffer
from repro.gossip.events import EventColumns, EventId, EventSummary
from repro.gossip.protocol import AdaptiveHeader, GossipMessage, MembershipHeader
from repro.runtime.codec import BinaryCodec, CodecError, JsonCodec

CODECS = [BinaryCodec(), JsonCodec()]


def simple_message():
    return GossipMessage(
        sender=3,
        events=(
            EventSummary(EventId(1, 0), 2, None),
            EventSummary(EventId("node-x", 7), 5, "payload"),
        ),
        adaptive=AdaptiveHeader(4, 45),
        membership=MembershipHeader(subs=(1, 2), unsubs=("dead",)),
    )


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_roundtrip_full_message(codec):
    msg = simple_message()
    assert codec.decode(codec.encode(msg)) == msg


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_roundtrip_minimal_message(codec):
    msg = GossipMessage(sender="a", events=())
    assert codec.decode(codec.encode(msg)) == msg


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_roundtrip_k_smallest_aggregate_state(codec):
    msg = GossipMessage(
        sender=0,
        events=(),
        adaptive=AdaptiveHeader(2, ((30, 5), (60, "h2"))),
    )
    assert codec.decode(codec.encode(msg)) == msg


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_roundtrip_tuple_addresses(codec):
    """Pub/sub addresses are (topic, host) tuples."""
    msg = GossipMessage(
        sender=("news", 4),
        events=(EventSummary(EventId(("news", 4), 0), 1, None),),
    )
    assert codec.decode(codec.encode(msg)) == msg


# ----------------------------------------------------------------------
# columnar (EventColumns) messages — the hot-path wire shape
# ----------------------------------------------------------------------
def columnar_message(**overrides):
    columns = EventColumns(
        ids=(EventId(1, 0), EventId("node-x", 7), EventId(("t", 2), 9)),
        base_round=41,
        anchors=(39, 36, 41),
        payloads=(None, "payload", b"\x01\x02"),
    )
    fields = dict(
        sender=3,
        events=columns,
        adaptive=AdaptiveHeader(4, 45),
        membership=MembershipHeader(subs=(1, 2), unsubs=("dead",)),
    )
    fields.update(overrides)
    return GossipMessage(**fields)


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_columnar_roundtrip_preserves_semantics(codec):
    msg = columnar_message()
    decoded = codec.decode(codec.encode(msg))
    assert isinstance(decoded.events, EventColumns)
    assert decoded == msg  # semantic equality: ids, ages, payloads, headers
    assert decoded.events.ages == msg.events.ages


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_columnar_roundtrip_empty_events(codec):
    msg = columnar_message(
        events=EventColumns((), 12, (), ()), adaptive=None, membership=None
    )
    decoded = codec.decode(codec.encode(msg))
    assert isinstance(decoded.events, EventColumns)
    assert len(decoded.events) == 0
    assert decoded == msg


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_columnar_roundtrip_digest_without_payloads(codec):
    msg = columnar_message(events=columnar_message().events.without_payloads(),
                           kind="digest")
    decoded = codec.decode(codec.encode(msg))
    assert decoded.kind == "digest"
    assert decoded.events.payloads == (None, None, None)
    assert decoded == msg


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_row_form_decodes_to_columnar(codec):
    """Row-form events encode to the same wire shape and come back columnar."""
    msg = simple_message()
    decoded = codec.decode(codec.encode(msg))
    assert isinstance(decoded.events, EventColumns)
    assert decoded == msg
    assert tuple(decoded.events) == msg.events  # iterates as summaries


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_buffer_snapshot_roundtrips_through_wire(codec):
    """Simulator and threaded runtime share one message shape end to end."""
    buf = EventBuffer(16)
    for i in range(10):
        buf.add(EventId("src", i), age=i % 4, payload=i)
    for _ in range(3):
        buf.advance_round()
    columns = buf.snapshot_columns()
    msg = GossipMessage(sender="src", events=columns)
    decoded = codec.decode(codec.encode(msg))
    assert decoded.events.ages == columns.ages
    assert decoded.events.ids == columns.ids
    assert decoded == msg


def test_json_rejects_malformed_columns():
    with pytest.raises(CodecError):
        JsonCodec().decode(b'{"v":2,"kind":"gossip","sender":1,'
                           b'"events":{"ids":[[1,0]],"ages":[],"payloads":[]},'
                           b'"adaptive":null,"membership":null}')


def test_binary_rejects_bad_magic():
    with pytest.raises(CodecError):
        BinaryCodec().decode(b"\x00\x01")


def test_binary_rejects_bad_version():
    data = bytearray(BinaryCodec().encode(simple_message()))
    data[1] = 99
    with pytest.raises(CodecError):
        BinaryCodec().decode(bytes(data))


def test_binary_rejects_truncation():
    data = BinaryCodec().encode(simple_message())
    for cut in (2, len(data) // 2, len(data) - 1):
        with pytest.raises(CodecError):
            BinaryCodec().decode(data[:cut])


def test_binary_rejects_trailing_garbage():
    data = BinaryCodec().encode(simple_message())
    with pytest.raises(CodecError):
        BinaryCodec().decode(data + b"\x00")


def test_json_rejects_garbage():
    with pytest.raises(CodecError):
        JsonCodec().decode(b"\xff\xfe")
    with pytest.raises(CodecError):
        JsonCodec().decode(b"{}")
    with pytest.raises(CodecError):
        JsonCodec().decode(b'{"v":1,"events":"nope"}')


def test_unencodable_value_rejected():
    msg = GossipMessage(sender=object(), events=())
    for codec in CODECS:
        with pytest.raises(CodecError):
            codec.encode(msg)


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_kind_carried_on_wire(codec):
    for kind in ("gossip", "multicast", "digest", "request", "reply"):
        msg = GossipMessage(sender=1, events=(), kind=kind)
        assert codec.decode(codec.encode(msg)).kind == kind


@pytest.mark.parametrize("codec", CODECS, ids=["binary", "json"])
def test_unknown_kind_rejected(codec):
    msg = GossipMessage(sender=1, events=(), kind="smoke-signals")
    with pytest.raises(CodecError):
        codec.encode(msg)


def test_binary_rejects_unknown_kind_code():
    data = bytearray(BinaryCodec().encode(GossipMessage(sender=1, events=())))
    data[2] = 99  # the kind byte
    with pytest.raises(CodecError):
        BinaryCodec().decode(bytes(data))


def test_binary_is_compact():
    """A full buffer's worth of events must fit in a UDP datagram."""
    events = tuple(
        EventSummary(EventId(i % 60, i), i % 12, None) for i in range(180)
    )
    msg = GossipMessage(sender=7, events=events, adaptive=AdaptiveHeader(3, 90))
    data = BinaryCodec().encode(msg)
    assert len(data) < 3000  # far below the 65507-byte UDP cap


# ----------------------------------------------------------------------
# property-based round-trip
# ----------------------------------------------------------------------
node_ids = st.one_of(
    st.integers(-(2**40), 2**40),
    st.text(max_size=12),
    st.tuples(st.text(max_size=6), st.integers(0, 1000)),
)
payloads = st.one_of(
    st.none(),
    st.integers(-(2**40), 2**40),
    st.text(max_size=20),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.binary(max_size=16),
    st.tuples(st.integers(0, 5), st.text(max_size=4)),
)
summaries = st.builds(
    EventSummary,
    id=st.builds(EventId, origin=node_ids, seq=st.integers(0, 2**30)),
    age=st.integers(0, 1000),
    payload=payloads,
)
adaptive_headers = st.one_of(
    st.none(),
    st.builds(
        AdaptiveHeader,
        period=st.integers(-5, 2**30),
        min_buff=st.one_of(
            st.integers(1, 10_000),
            st.tuples(st.tuples(st.integers(1, 500), node_ids)),
        ),
    ),
)
membership_headers = st.one_of(
    st.none(),
    st.builds(
        MembershipHeader,
        subs=st.tuples(node_ids),
        unsubs=st.tuples(node_ids),
    ),
)
messages = st.builds(
    GossipMessage,
    sender=node_ids,
    events=st.lists(summaries, max_size=8).map(tuple),
    adaptive=adaptive_headers,
    membership=membership_headers,
    kind=st.sampled_from(["gossip", "multicast", "digest", "request", "reply"]),
)


@settings(max_examples=300, deadline=None)
@given(msg=messages)
def test_binary_roundtrip_property(msg):
    codec = BinaryCodec()
    assert codec.decode(codec.encode(msg)) == msg


@settings(max_examples=200, deadline=None)
@given(msg=messages)
def test_json_roundtrip_property(msg):
    codec = JsonCodec()
    assert codec.decode(codec.encode(msg)) == msg
