"""Integration: dissemination properties of the full simulated stack."""


from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.workload.cluster import SimCluster


def run_cluster(n=20, protocol="lpbcast", buffer=60, rate=4.0, seed=1, until=60.0,
                **cluster_kw):
    cluster = SimCluster(
        n_nodes=n,
        system=SystemConfig(buffer_capacity=buffer, dedup_capacity=1000),
        protocol=protocol,
        seed=seed,
        **cluster_kw,
    )
    cluster.add_senders([0, n // 2], rate_each=rate / 2)
    cluster.run(until=until)
    return cluster


def test_low_load_full_delivery():
    cluster = run_cluster()
    stats = analyze_delivery(cluster.metrics.messages_in_window(15, 45), 20)
    assert stats.avg_receiver_fraction > 0.99
    assert stats.atomicity > 0.98


def test_no_duplicate_deliveries_with_ample_dedup():
    cluster = run_cluster()
    assert cluster.metrics.duplicate_deliveries == 0


def test_all_messages_eventually_stop_circulating():
    """Age-out (k) bounds every event's lifetime."""
    cluster = run_cluster(until=40.0)
    # stop sending, let the system drain
    for sender in cluster.senders.values():
        sender.stop()
    cluster.run(until=80.0)
    for node in cluster.nodes.values():
        assert len(node.protocol.buffer) == 0


def test_latency_grows_with_group_size():
    lat_small = analyze_delivery(
        run_cluster(n=10).metrics.messages_in_window(15, 45), 10
    ).mean_latency
    lat_large = analyze_delivery(
        run_cluster(n=50).metrics.messages_in_window(15, 45), 50
    ).mean_latency
    assert lat_large > lat_small


def test_loss_tolerance_of_gossip():
    """Gossip redundancy shrugs off 5% iid message loss."""
    from repro.sim.network import BernoulliLoss

    cluster = run_cluster(loss=BernoulliLoss(p=0.05))
    stats = analyze_delivery(cluster.metrics.messages_in_window(15, 45), 20)
    assert stats.avg_receiver_fraction > 0.98


def test_crash_tolerance():
    """A crashed minority does not stop dissemination to the rest."""
    cluster = run_cluster(n=20, until=20.0)
    for node_id in (3, 7, 11):
        cluster.crash_node(node_id)
    cluster.run(until=60.0)
    alive = cluster.group_size
    assert alive == 17
    stats = analyze_delivery(cluster.metrics.messages_in_window(30, 50), alive)
    assert stats.avg_receiver_fraction > 0.95


def test_overload_degrades_baseline_reliability():
    cluster = run_cluster(buffer=20, rate=60.0)
    stats = analyze_delivery(cluster.metrics.messages_in_window(15, 45), 20)
    assert stats.atomicity < 0.8
    assert cluster.metrics.mean_drop_age(15, 45) < 5.0


def test_drop_age_falls_with_load():
    """The §2.3 signal: drop age is monotone in congestion."""
    ages = []
    for rate in (20.0, 40.0, 80.0):
        cluster = run_cluster(buffer=30, rate=rate, until=80.0)
        ages.append(cluster.metrics.mean_drop_age(30, 70))
    assert ages[0] > ages[1] > ages[2]
