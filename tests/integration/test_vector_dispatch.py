"""Integration: ``--dispatch vector`` is a drop-in third dispatch mode.

Every registered scenario must produce a RunResult identical to batched
dispatch (the CI parity gate for the vector mode), sharding a vector
matrix across workers must reproduce the serial run, the aggregate-only
metrics mode must not change any reported quantity, and the columnar
mega lane must refuse the dynamic-membership operations it cannot
honour rather than silently mis-simulate them.
"""

import dataclasses

import pytest

from repro.experiments.harness import build_cluster, run_once, spec_for_scenario
from repro.experiments.profiles import QUICK
from repro.experiments.sweep import run_scenario_matrix
from repro.gossip.config import SystemConfig
from repro.membership.churn import ChurnScript
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import smoke_profile
from repro.scenarios.spec import FixedLinks
from repro.sim.faults import CrashWindow, FaultScript
from repro.sim.network import ConstantLatency
from repro.workload.cluster import SimCluster

_MATRIX_PROFILE = dataclasses.replace(
    smoke_profile(QUICK),
    name="vector-matrix",
    n_nodes=12,
    duration=24.0,
    warmup=8.0,
    drain=4.0,
    offered_load=18.0,
)


def _assert_results_identical(a, b):
    """Field-wise RunResult equality, NaN-tolerant, spec excluded."""
    for field in dataclasses.fields(a):
        if field.name == "spec":
            continue
        va = getattr(a, field.name)
        vb = getattr(b, field.name)
        assert va == vb or (va != va and vb != vb), field.name


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_identical_vector_vs_batched(name):
    """Every registered scenario — including the round-synchronous
    mega-flood, which actually engages the columnar lane — runs to the
    same RunResult under vector and batched dispatch."""
    spec = get_scenario(name, _MATRIX_PROFILE)
    batched = run_once(spec_for_scenario(spec, dispatch="batched"))
    vector = run_once(spec_for_scenario(spec, dispatch="vector"))
    _assert_results_identical(batched, vector)


def test_mega_flood_engages_the_columnar_lane():
    """mega-flood routes onto the mega lane even at test scale (it is
    the regime the lane accelerates); the parity test above would be
    vacuous for it otherwise."""
    spec = get_scenario("mega-flood", _MATRIX_PROFILE)
    cluster = build_cluster(spec_for_scenario(spec, dispatch="vector"))
    assert cluster.vector is not None


# ----------------------------------------------------------------------
# chaos on the columnar lane: faulted library scenarios, vectorized
# ----------------------------------------------------------------------
def _vectorized(spec):
    """The vector-eligible variant of a library scenario.

    Keeps the scenario's fault/churn schedule and workload, but pins
    the protocol profile to the regime the columnar lane accelerates:
    baseline lpbcast over full membership, round-synchronous schedule,
    constant latency. Restart/join instants are snapped to the round
    grid (the lane only re-admits nodes on tick boundaries); window
    open/close edges need no snapping.
    """
    period = spec.system.gossip_period

    def snap(t):
        return round(t / period) * period

    faults = FaultScript(
        [
            dataclasses.replace(f, restart_at=snap(f.restart_at))
            if isinstance(f, CrashWindow) and f.restart_at is not None
            else f
            for f in spec.faults.faults
        ]
    )
    churn = ChurnScript(
        [
            dataclasses.replace(e, time=snap(e.time))
            if e.action == "join"
            else e
            for e in spec.churn.events
        ]
    )
    return dataclasses.replace(
        spec,
        protocol="lpbcast",
        adaptive=None,
        rate_limit=None,
        membership="full",
        view_size=None,
        system=dataclasses.replace(
            spec.system, round_phase=0.0, round_jitter=0.0
        ),
        topology=FixedLinks(0.01),
        faults=faults,
        churn=churn,
    )


_CHAOS_SCENARIOS = [
    "correlated-loss",
    "partition-heal",
    "catastrophic-crash",
    "flaky-edge",
    "asymmetric-uplink",
    "congested-switch",
    "rolling-churn",
]


@pytest.mark.parametrize("name", _CHAOS_SCENARIOS)
def test_faulted_scenario_variants_engage_and_match(name):
    """The chaos vocabulary lowers onto the columnar lane: for each
    faulted library scenario, the vectorized variant actually engages
    the mega lane (not a silent fallback) and reproduces the batched
    per-node run bit for bit — loss draws, window edges, crash/restart
    column resets and all."""
    spec = _vectorized(get_scenario(name, _MATRIX_PROFILE))
    assert build_cluster(spec_for_scenario(spec, dispatch="vector")).vector is not None
    batched = run_once(spec_for_scenario(spec, dispatch="batched"))
    vector = run_once(spec_for_scenario(spec, dispatch="vector"))
    _assert_results_identical(batched, vector)


def test_vector_matrix_identical_across_job_counts():
    """Sharding a vector-dispatch matrix across workers reproduces the
    serial run bit for bit."""
    names = ["mega-flood", "flash-crowd", "overload-baseline"]
    serial = run_scenario_matrix(
        names, profile=_MATRIX_PROFILE, jobs=1, dispatch="vector"
    )
    sharded = run_scenario_matrix(
        names, profile=_MATRIX_PROFILE, jobs=3, dispatch="vector"
    )
    assert [r.spec.scenario for r in serial] == names
    for a, b in zip(serial, sharded):
        assert a.spec == b.spec
        _assert_results_identical(a, b)


def test_aggregate_metrics_do_not_change_results():
    """Aggregate-only collection drops receiver sets and gauges, not
    numbers: the distilled RunResult is identical (gauge-derived fields
    are NaN for lpbcast either way)."""
    spec = get_scenario("mega-flood", _MATRIX_PROFILE)
    full = run_once(spec_for_scenario(spec, dispatch="vector"))
    aggregate = run_once(
        spec_for_scenario(spec, dispatch="vector", aggregate_metrics=True)
    )
    _assert_results_identical(full, aggregate)


# ----------------------------------------------------------------------
# the mega lane's schedule guard
# ----------------------------------------------------------------------
def _mega_cluster() -> SimCluster:
    cluster = SimCluster(
        n_nodes=8,
        system=SystemConfig(
            buffer_capacity=10,
            dedup_capacity=500,
            round_phase=0.0,
            round_jitter=0.0,
        ),
        protocol="lpbcast",
        seed=1,
        latency=ConstantLatency(0.01),
        dispatch="vector",
    )
    assert cluster.vector is not None
    return cluster


def test_mega_lane_supports_faults_and_nonsender_churn():
    """The v2 lane accepts what it can honour exactly: fault windows,
    crashes/leaves of non-sender nodes, and round-aligned rejoins."""
    cluster = _mega_cluster()
    cluster.apply_faults(FaultScript().loss(1.0, 2.0, 0.5))
    cluster.apply_churn(ChurnScript().crash(5.0, 3))
    # round-aligned rejoin under the old identity (scheduled churn fires
    # before the same-instant tick, so t=6.0 re-enters round 6)
    cluster.apply_churn(ChurnScript().crash(2.0, 4).join(6.0, 4))
    cluster.crash_node(6)
    cluster.leave_node(5)
    cluster.run(until=10.0)
    assert 4 in cluster.nodes and 3 not in cluster.nodes


def test_mega_lane_refuses_unsupported_schedules():
    """What stays vetoed: sender departures (their sender process keeps
    broadcasting), brand-new identities, and off-grid rejoins. Every
    refusal names the allow_mega escape hatch."""
    cluster = _mega_cluster()
    cluster.add_sender(0, rate=1.0)
    with pytest.raises(RuntimeError, match="allow_mega"):
        cluster.crash_node(0)
    with pytest.raises(RuntimeError, match="allow_mega"):
        cluster.leave_node(0)
    with pytest.raises(RuntimeError, match="allow_mega"):
        cluster.join_node(99)
    with pytest.raises(RuntimeError, match="allow_mega"):
        cluster.apply_churn(ChurnScript().crash(5.0, 0))
    with pytest.raises(RuntimeError, match="allow_mega"):
        cluster.apply_churn(ChurnScript().crash(2.0, 3).join(4.5, 3))
    with pytest.raises(RuntimeError, match="allow_mega"):
        cluster.apply_faults(FaultScript().crash(2.0, nodes=(3,), restart_at=4.5))
    cluster.crash_node(3)
    cluster.run(until=4.5)
    with pytest.raises(RuntimeError, match="allow_mega"):
        cluster.join_node(3)  # t=4.5 is off the round grid


def test_allow_mega_false_restores_dynamic_membership():
    """The harness's veto: same config with allow_mega=False builds real
    per-node protocols, on which every dynamic operation still works."""
    cluster = SimCluster(
        n_nodes=8,
        system=SystemConfig(
            buffer_capacity=10,
            dedup_capacity=500,
            round_phase=0.0,
            round_jitter=0.0,
        ),
        protocol="lpbcast",
        seed=1,
        latency=ConstantLatency(0.01),
        dispatch="vector",
        allow_mega=False,
    )
    assert cluster.vector is None
    cluster.crash_node(3)
    cluster.run(until=5.0)
