"""Integration: the adaptive mechanism end to end.

These are the paper's qualitative claims as executable assertions:
throttling under overload, acceptance under light load, convergence
toward the calibrated maximum, reaction to runtime resource changes, and
the superiority over the baseline in atomicity.
"""

import pytest

from repro.core.aggregation import KSmallestAggregate
from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.workload.cluster import SimCluster

TAU = 4.46  # calibrated for this simulator (see EXPERIMENTS.md)
SENDERS = [0, 5, 10, 15]


def adaptive_cluster(buffer=30, offered=60.0, n=24, seed=3, duration=160.0, **kw):
    cluster = SimCluster(
        n_nodes=n,
        system=SystemConfig(buffer_capacity=buffer, dedup_capacity=2000),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=TAU, initial_rate=8.0),
        seed=seed,
        **kw,
    )
    cluster.add_senders(SENDERS, rate_each=offered / len(SENDERS))
    cluster.run(until=duration)
    return cluster


def test_throttles_under_overload():
    cluster = adaptive_cluster(buffer=20, offered=60.0)
    input_rate = cluster.metrics.admitted.rate(80, 150)
    assert input_rate < 45.0  # well below the offered 60


def test_accepts_light_load():
    cluster = adaptive_cluster(buffer=60, offered=12.0)
    input_rate = cluster.metrics.admitted.rate(80, 150)
    assert input_rate == pytest.approx(12.0, rel=0.15)


def test_atomicity_preserved_under_overload():
    cluster = adaptive_cluster(buffer=20, offered=60.0)
    stats = analyze_delivery(cluster.metrics.messages_in_window(80, 140), 24)
    assert stats.atomicity > 0.75
    assert stats.avg_receiver_fraction > 0.95


def test_beats_baseline_under_overload():
    adaptive = adaptive_cluster(buffer=20, offered=60.0)
    baseline = SimCluster(
        n_nodes=24,
        system=SystemConfig(buffer_capacity=20, dedup_capacity=2000),
        protocol="lpbcast",
        seed=3,
    )
    baseline.add_senders(SENDERS, rate_each=15.0)
    baseline.run(until=160.0)
    atom_a = analyze_delivery(adaptive.metrics.messages_in_window(80, 140), 24).atomicity
    atom_b = analyze_delivery(baseline.metrics.messages_in_window(80, 140), 24).atomicity
    assert atom_a > atom_b + 0.3


def test_drop_age_held_near_critical():
    cluster = adaptive_cluster(buffer=30, offered=60.0)
    drop_age = cluster.metrics.mean_drop_age(80, 150)
    assert drop_age > TAU - 1.0  # baseline at this load collapses to ~3


def test_minbuff_gossip_converges():
    cluster = adaptive_cluster(buffer=30, offered=20.0, duration=60.0)
    for node in cluster.nodes.values():
        assert node.protocol.min_buff_estimate == 30


def test_reacts_to_capacity_decrease():
    cluster = SimCluster(
        n_nodes=24,
        system=SystemConfig(buffer_capacity=60, dedup_capacity=2000),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=TAU, initial_rate=8.0),
        seed=3,
    )
    cluster.add_senders(SENDERS, rate_each=10.0)  # 40/s: fine for buffer 60
    cluster.run(until=80.0)
    rate_before = cluster.metrics.admitted.rate(50, 80)
    # a fifth of the group shrinks hard
    for node_id in (20, 21, 22, 23):
        cluster.set_capacity(node_id, 15)
    cluster.run(until=200.0)
    rate_after = cluster.metrics.admitted.rate(150, 200)
    assert rate_after < rate_before * 0.75
    # and every node learned the new minimum
    assert cluster.protocol_of(0).min_buff_estimate == 15


def test_recovers_when_capacity_returns():
    cluster = SimCluster(
        n_nodes=24,
        system=SystemConfig(buffer_capacity=60, dedup_capacity=2000),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=TAU, initial_rate=8.0),
        seed=3,
    )
    cluster.add_senders(SENDERS, rate_each=10.0)
    for node_id in (20, 21):
        cluster.set_capacity(node_id, 15)
    cluster.run(until=100.0)
    throttled = cluster.metrics.admitted.rate(70, 100)
    for node_id in (20, 21):
        cluster.set_capacity(node_id, 60)
    cluster.run(until=260.0)
    recovered = cluster.metrics.admitted.rate(220, 260)
    assert recovered > throttled * 1.25
    assert cluster.protocol_of(0).min_buff_estimate == 60


def test_k_smallest_ignores_single_straggler():
    """§6 extension: adapting to the 2nd-smallest buffer lets one tiny
    node be sacrificed instead of throttling the whole group."""
    def build(aggregate):
        cluster = SimCluster(
            n_nodes=24,
            system=SystemConfig(buffer_capacity=60, dedup_capacity=2000),
            protocol="adaptive",
            adaptive=AdaptiveConfig(age_critical=TAU, initial_rate=8.0),
            aggregate=aggregate,
            seed=3,
        )
        cluster.add_senders(SENDERS, rate_each=12.0)
        cluster.set_capacity(23, 10)  # one straggler
        cluster.run(until=120.0)
        return cluster

    plain = build(None)
    kmin = build(KSmallestAggregate(2))
    assert plain.protocol_of(0).min_buff_estimate == 10
    assert kmin.protocol_of(0).min_buff_estimate == 60
    rate_plain = plain.metrics.admitted.rate(80, 120)
    rate_kmin = kmin.metrics.admitted.rate(80, 120)
    assert rate_kmin > rate_plain


def test_senders_share_capacity_fairly_enough():
    cluster = adaptive_cluster(buffer=20, offered=80.0)
    rates = [s.admitted for s in cluster.senders.values()]
    assert max(rates) < 3.5 * min(rates)


def test_idle_sender_cannot_stockpile_allowance():
    """§3.3's attack: an application sends below its grant for a while,
    then bursts. Without the avgTokens rule the grant would have grown
    unbounded during the quiet phase; with it, the grant decays toward
    actual usage, so the burst cannot congest the system."""
    from repro.workload.senders import OnOffArrivals

    cluster = SimCluster(
        n_nodes=24,
        system=SystemConfig(buffer_capacity=30, dedup_capacity=2000),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=TAU, initial_rate=8.0),
        seed=6,
    )
    # background senders keep the group near capacity
    cluster.add_senders([0, 8], rate_each=15.0)
    # the bursty one: 30s silent, then 20s of heavy offers, repeating
    cluster.add_sender(
        16, rate=60.0, arrivals=OnOffArrivals(rate=60.0, on=20.0, off=30.0)
    )
    cluster.run(until=200.0)
    m = cluster.metrics
    # the bursty sender's grant at the END of a quiet phase is modest:
    # sample its allowed rate just before each ON phase starts
    grants = []
    for cycle_start in (50.0, 100.0, 150.0):
        g = m.gauge_mean_over("allowed_rate", [16], cycle_start - 6, cycle_start - 1)
        if g == g:
            grants.append(g)
    assert grants, "no grant samples collected"
    assert max(grants) < 30.0  # nowhere near an unbounded stockpile
    # and the group's reliability survived the bursts
    stats = analyze_delivery(m.messages_in_window(60, 180), 24)
    assert stats.avg_receiver_fraction > 0.93
