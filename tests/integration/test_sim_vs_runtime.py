"""Integration: the simulator and the threaded runtime agree.

The paper's methodology rests on its prototype validating its simulator
("The implementation ... is used to validate simulation results in a
real setting", §4). Here both drivers run the *same protocol objects*
under an equivalent configuration, and the qualitative observables must
agree: full dissemination, minBuff discovery, and admission behaviour.

Wall-clock tests are kept short (~1 s each) and assert ranges, not exact
values — thread scheduling is not deterministic.
"""

import time


from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.runtime.cluster import ThreadedCluster
from repro.workload.cluster import SimCluster

N = 8
ADAPTIVE = AdaptiveConfig(age_critical=4.5, initial_rate=30.0, sample_period=0.5)


def sim_system():
    return SystemConfig(gossip_period=0.05, buffer_capacity=48, dedup_capacity=800)


def test_dissemination_agrees():
    n_messages = 10

    # --- simulator ---
    sim_cluster = SimCluster(n_nodes=N, system=sim_system(), seed=3)
    proto0 = sim_cluster.protocol_of(0)
    for i in range(n_messages):
        proto0.broadcast(f"m{i}", now=sim_cluster.sim.now)
    sim_cluster.run(until=1.0)
    sim_delivered = [
        sim_cluster.protocol_of(n).stats.events_delivered for n in range(1, N)
    ]

    # --- threaded runtime ---
    rt_cluster = ThreadedCluster(N, system=sim_system(), seed=3)
    rt_cluster.start()
    try:
        for i in range(n_messages):
            rt_cluster.broadcast(0, f"m{i}")
        time.sleep(1.0)
    finally:
        rt_cluster.stop()
    rt_delivered = [
        rt_cluster.protocol_of(n).stats.events_delivered for n in range(1, N)
    ]

    assert all(d == n_messages for d in sim_delivered)
    assert all(d == n_messages for d in rt_delivered)


def test_minbuff_discovery_agrees():
    # --- simulator ---
    sim_cluster = SimCluster(
        n_nodes=N, system=sim_system(), protocol="adaptive", adaptive=ADAPTIVE, seed=4
    )
    sim_cluster.set_capacity(N - 1, 12)
    sim_cluster.run(until=2.0)
    sim_estimates = {
        sim_cluster.protocol_of(n).min_buff_estimate for n in range(N - 1)
    }

    # --- threaded runtime ---
    rt_cluster = ThreadedCluster(
        N, system=sim_system(), protocol="adaptive", adaptive=ADAPTIVE, seed=4
    )
    rt_cluster.protocol_of(N - 1).set_buffer_capacity(12, 0.0)
    rt_cluster.start()
    try:
        time.sleep(2.0)
    finally:
        rt_cluster.stop()
    rt_estimates = {
        rt_cluster.protocol_of(n).min_buff_estimate for n in range(N - 1)
    }

    assert sim_estimates == {12}
    assert rt_estimates == {12}


def test_admission_throttles_in_both_drivers():
    offered = 200  # offers, far beyond the initial grant
    window = 1.0

    sim_cluster = SimCluster(
        n_nodes=N, system=sim_system(), protocol="adaptive", adaptive=ADAPTIVE, seed=5
    )
    sim_cluster.add_sender(0, rate=offered / window)
    sim_cluster.run(until=window)
    sim_admitted = sim_cluster.senders[0].admitted

    rt_cluster = ThreadedCluster(
        N, system=sim_system(), protocol="adaptive", adaptive=ADAPTIVE, seed=5
    )
    rt_cluster.start()
    try:
        for i in range(offered):
            rt_cluster.broadcast(0, i)
        time.sleep(window)
    finally:
        rt_cluster.stop()
    rt_admitted = rt_cluster.nodes[0].offers_admitted

    # both drivers admit roughly initial_rate * window (+ bucket depth),
    # nowhere near the offered 200
    for admitted in (sim_admitted, rt_admitted):
        assert admitted <= 2.5 * (ADAPTIVE.initial_rate * window + ADAPTIVE.max_tokens)
        assert admitted >= 0.3 * ADAPTIVE.initial_rate * window
