"""Integration: the bimodal substrate, plain and adapted (§5).

The claim under test: the adaptation mechanism is substrate-agnostic.
The same assertions that hold for adaptive-lpbcast must hold for
adaptive-bimodal, with the plain bimodal substrate showing the same
overload pathology as plain lpbcast.
"""


from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.sim.network import BernoulliLoss
from repro.workload.cluster import SimCluster

SENDERS = [0, 5, 10, 15]


def bimodal_cluster(protocol, buffer=60, offered=16.0, n=20, seed=4, loss=None,
                    duration=120.0):
    cluster = SimCluster(
        n_nodes=n,
        system=SystemConfig(buffer_capacity=buffer, dedup_capacity=2000),
        protocol=protocol,
        adaptive=AdaptiveConfig(age_critical=4.46, initial_rate=8.0),
        seed=seed,
        loss=loss,
    )
    cluster.add_senders(SENDERS, rate_each=offered / len(SENDERS))
    cluster.run(until=duration)
    return cluster


def test_bimodal_disseminates_at_light_load():
    cluster = bimodal_cluster("bimodal")
    stats = analyze_delivery(cluster.metrics.messages_in_window(40, 100), 20)
    assert stats.avg_receiver_fraction > 0.99


def test_antientropy_repairs_multicast_loss():
    """With 20% datagram loss the optimistic push misses nodes; the
    digest/pull phase repairs them — pbcast's defining behaviour."""
    cluster = bimodal_cluster("bimodal", loss=BernoulliLoss(p=0.2))
    stats = analyze_delivery(cluster.metrics.messages_in_window(40, 100), 20)
    assert stats.avg_receiver_fraction > 0.97
    repaired = sum(
        node.protocol.stats.events_repaired for node in cluster.nodes.values()
    )
    assert repaired > 0


def test_push_alone_survives_overload_on_lossless_network():
    """On a loss-free network the optimistic push already reaches every
    node, so buffering (and hence overload) cannot hurt delivery — the
    substrate's buffer exists for *repair*. This pins that behaviour
    down so the lossy tests below are read correctly."""
    cluster = bimodal_cluster("bimodal", buffer=20, offered=60.0)
    stats = analyze_delivery(cluster.metrics.messages_in_window(60, 110), 20)
    assert stats.avg_receiver_fraction > 0.99


def test_plain_bimodal_degrades_under_overload_with_loss():
    """With datagram loss, repair needs the buffers; overload evicts
    events before they can be pulled, and atomicity collapses."""
    cluster = bimodal_cluster(
        "bimodal", buffer=20, offered=60.0, loss=BernoulliLoss(p=0.25),
        duration=160.0,
    )
    stats = analyze_delivery(cluster.metrics.messages_in_window(80, 150), 20)
    assert stats.atomicity < 0.3
    assert cluster.metrics.mean_drop_age(80, 150) < 3.0


def test_adaptive_bimodal_throttles_and_protects():
    kwargs = dict(buffer=20, offered=60.0, duration=160.0)
    plain = bimodal_cluster("bimodal", loss=BernoulliLoss(p=0.25), **kwargs)
    adapted = bimodal_cluster(
        "adaptive-bimodal", loss=BernoulliLoss(p=0.25), **kwargs
    )
    atom_plain = analyze_delivery(
        plain.metrics.messages_in_window(80, 150), 20
    ).atomicity
    stats_adapted = analyze_delivery(
        adapted.metrics.messages_in_window(80, 150), 20
    )
    input_adapted = adapted.metrics.admitted.rate(80, 150)
    assert input_adapted < 40.0  # throttled well below the offered 60
    assert stats_adapted.atomicity > atom_plain + 0.3
    assert stats_adapted.avg_receiver_fraction > 0.93
    # and the drop-age signal is held near tau, exactly as with lpbcast
    assert adapted.metrics.mean_drop_age(80, 150) > 4.0


def test_adaptive_bimodal_minbuff_converges():
    cluster = bimodal_cluster("adaptive-bimodal", duration=80.0)
    cluster.set_capacity(19, 12)
    cluster.run(until=160.0)
    assert cluster.protocol_of(0).min_buff_estimate == 12


def test_adaptive_bimodal_rate_interface():
    cluster = bimodal_cluster("adaptive-bimodal", duration=30.0)
    proto = cluster.protocol_of(SENDERS[0])
    assert proto.allowed_rate > 0
    assert proto.time_until_admission(cluster.sim.now) >= 0.0
