"""Integration: the adaptive mechanism across network partitions.

Not a paper experiment, but a consistency property worth pinning: minBuff
information cannot cross a partition, so each side adapts to the minimum
it can see; after healing, the true group minimum re-propagates within a
sample period or two.
"""

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.sim.faults import FaultScript
from repro.workload.cluster import SimCluster

TAU = 4.46


def build(seed=21):
    cluster = SimCluster(
        n_nodes=20,
        system=SystemConfig(buffer_capacity=80, dedup_capacity=2000, max_age=12),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=TAU, initial_rate=6.0),
        seed=seed,
    )
    cluster.add_senders([0, 10], rate_each=5.0)
    return cluster


def test_minbuff_respects_partition_boundaries():
    cluster = build()
    left = list(range(10))
    right = list(range(10, 20))
    # node 15 (right side) is constrained; partition before it can tell
    # the left side
    cluster.set_capacity(15, 20)
    FaultScript().partition(0.5, 60.0, [left, right]).apply(
        cluster.sim, cluster.network
    )
    cluster.run(until=50.0)
    # right side knows the constrained node...
    assert cluster.protocol_of(12).min_buff_estimate == 20
    # ...the left side cannot (information cannot cross the partition)
    assert cluster.protocol_of(2).min_buff_estimate == 80


def test_heal_propagates_true_minimum():
    cluster = build()
    left = list(range(10))
    right = list(range(10, 20))
    cluster.set_capacity(15, 20)
    FaultScript().partition(0.5, 60.0, [left, right]).apply(
        cluster.sim, cluster.network
    )
    cluster.run(until=120.0)  # healed at 60.5, plus sample periods
    for node_id in (0, 2, 7):
        assert cluster.protocol_of(node_id).min_buff_estimate == 20
