"""Integration: the §1 motivating scenario, end to end.

A publisher must slow down when *other* hosts silently re-budget their
buffers across topics — with no channel other than the data gossip
itself. This is the paper's opening use case as an executable test.
"""


from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.metrics.delivery import analyze_delivery
from repro.workload.pubsub import PubSubSystem

BUDGET = 96
TAU = 4.46


def build(n_hosts=8, seed=11):
    system = PubSubSystem(
        system=SystemConfig(buffer_capacity=BUDGET, dedup_capacity=4000),
        adaptive=AdaptiveConfig(age_critical=TAU, initial_rate=40.0),
        protocol="adaptive",
        seed=seed,
    )
    hosts = [system.add_host(f"h{i}", BUDGET) for i in range(n_hosts)]
    for host in hosts:
        host.subscribe("main")
    return system, hosts


def test_publisher_throttles_after_silent_rebudget():
    system, hosts = build()
    hosts[0].publish_at("main", rate=40.0)
    system.run(until=60.0)
    m = system.collector_for("main")
    rate_before = m.admitted.rate(30, 60)

    # half the hosts subscribe to five side topics each: their "main"
    # buffers shrink from 96 to 16 without telling anyone
    for host in hosts[4:]:
        for topic in ("a", "b", "c", "d", "e"):
            host.subscribe(topic)
    system.run(until=200.0)
    rate_after = m.admitted.rate(160, 200)

    assert hosts[4].nodes["main"].protocol.buffer_capacity == 16
    assert rate_after < rate_before * 0.6
    # the publisher discovered the new minimum through gossip alone
    assert hosts[0].nodes["main"].protocol.min_buff_estimate == 16


def test_reliability_survives_the_rebudget():
    system, hosts = build()
    hosts[0].publish_at("main", rate=40.0)
    system.run(until=60.0)
    for host in hosts[4:]:
        for topic in ("a", "b", "c", "d", "e"):
            host.subscribe(topic)
    system.run(until=200.0)
    m = system.collector_for("main")
    stats = analyze_delivery(m.messages_in_window(150, 190), system.group_size("main"))
    assert stats.avg_receiver_fraction > 0.95


def test_unsubscribe_recovers_rate():
    system, hosts = build()
    hosts[0].publish_at("main", rate=40.0)
    for host in hosts[4:]:
        for topic in ("a", "b", "c", "d", "e"):
            host.subscribe(topic)
    system.run(until=120.0)
    m = system.collector_for("main")
    throttled = m.admitted.rate(80, 120)
    for host in hosts[4:]:
        for topic in ("a", "b", "c", "d", "e"):
            host.unsubscribe(topic)
    # capacity recovery is windowed (W sample periods), so give it time
    system.run(until=320.0)
    recovered = m.admitted.rate(260, 320)
    assert hosts[0].nodes["main"].protocol.min_buff_estimate == BUDGET
    assert recovered > throttled * 1.3
