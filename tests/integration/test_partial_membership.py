"""Integration: the mechanism over partial views and under churn.

§5 claims the approach applies to gossip "relying on a partial
membership knowledge on each node"; these tests exercise exactly that,
plus graceful leave via unsubscription gossip.
"""

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.membership.churn import ChurnScript
from repro.membership.views import ViewConfig
from repro.metrics.delivery import analyze_delivery
from repro.workload.cluster import SimCluster


def partial_cluster(protocol="lpbcast", n=24, seed=5, **kw):
    cluster = SimCluster(
        n_nodes=n,
        system=SystemConfig(buffer_capacity=60, dedup_capacity=1500),
        protocol=protocol,
        adaptive=AdaptiveConfig(age_critical=4.5, initial_rate=6.0),
        membership="partial",
        view_config=ViewConfig(view_size=8),
        seed=seed,
        **kw,
    )
    return cluster


def test_dissemination_over_partial_views():
    cluster = partial_cluster()
    cluster.add_senders([0, 12], rate_each=3.0)
    cluster.run(until=60.0)
    stats = analyze_delivery(cluster.metrics.messages_in_window(20, 45), 24)
    assert stats.avg_receiver_fraction > 0.95


def test_minbuff_converges_over_partial_views():
    cluster = partial_cluster(protocol="adaptive")
    cluster.add_senders([0, 12], rate_each=3.0)
    cluster.set_capacity(17, 20)
    cluster.run(until=80.0)
    estimates = [
        cluster.protocol_of(n).min_buff_estimate for n in cluster.nodes
    ]
    assert max(estimates) == 20  # every node discovered the minimum


def test_views_stay_bounded_and_alive_under_churn():
    cluster = partial_cluster()
    cluster.add_senders([0, 12], rate_each=3.0)
    script = ChurnScript()
    for i, node in enumerate((3, 9, 15)):
        script.leave(10.0 + 5 * i, node)
    for i in range(3):
        script.join(12.0 + 5 * i, 100 + i)
    cluster.apply_churn(script)
    cluster.run(until=80.0)
    for node in cluster.nodes.values():
        membership = node.protocol.membership
        assert membership.size() <= 8
    # messages broadcast after churn still reach (almost) all alive nodes
    stats = analyze_delivery(
        cluster.metrics.messages_in_window(40, 70), cluster.group_size
    )
    assert stats.avg_receiver_fraction > 0.9


def test_joined_node_becomes_known():
    cluster = partial_cluster()
    cluster.add_senders([0], rate_each=3.0)
    cluster.run(until=20.0)
    newcomer = cluster.join_node(99)
    cluster.run(until=70.0)
    known_by = sum(
        1
        for node in cluster.nodes.values()
        if node.node_id != 99 and node.protocol.membership.contains(99)
    )
    assert known_by > 0
    assert len(newcomer.protocol.dedup) > 0  # it receives traffic
