"""Integration: bit-for-bit reproducibility of simulations."""

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.workload.cluster import SimCluster


def run(seed, protocol="adaptive", trace=True):
    cluster = SimCluster(
        n_nodes=12,
        system=SystemConfig(buffer_capacity=30, dedup_capacity=500),
        protocol=protocol,
        adaptive=AdaptiveConfig(age_critical=4.5),
        seed=seed,
        trace=trace,
    )
    cluster.add_senders([0, 6], rate_each=8.0)
    cluster.run(until=40.0)
    return cluster


def fingerprint(cluster):
    m = cluster.metrics
    deliveries = tuple(
        sorted(
            (eid, rec.broadcast_time, tuple(sorted(map(repr, rec.receivers))))
            for eid, rec in m.messages.items()
        )
    )
    return (
        m.admitted.total,
        m.deliveries.total,
        m.drops_overflow.total,
        tuple(m.drop_ages),
        deliveries,
    )


def test_same_seed_same_run():
    assert fingerprint(run(7)) == fingerprint(run(7))


def test_different_seed_different_run():
    assert fingerprint(run(7)) != fingerprint(run(8))


def test_same_seed_same_event_count():
    a, b = run(3), run(3)
    assert a.sim.events_dispatched == b.sim.events_dispatched


def test_baseline_deterministic_too():
    assert fingerprint(run(5, protocol="lpbcast")) == fingerprint(
        run(5, protocol="lpbcast")
    )


def test_gauge_series_identical():
    a, b = run(9), run(9)
    for node_id in range(12):
        ga = a.metrics.gauge("allowed_rate", node_id)
        gb = b.metrics.gauge("allowed_rate", node_id)
        assert list(ga.series(0, 40)) == list(gb.series(0, 40))
