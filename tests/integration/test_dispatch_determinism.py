"""Integration: the batched dispatcher reproduces the per-node-timer path
byte for byte — same seed, same spec, either dispatch mode, same run —
the batched columnar receive path reproduces the seed's per-event
reference loop just as exactly, and every registered scenario upholds
both guarantees (plus job-count independence of the sweep runner)."""

import dataclasses

import pytest

from repro.core.config import AdaptiveConfig
from repro.experiments.harness import RunSpec, run_once, spec_for_scenario
from repro.experiments.profiles import QUICK
from repro.experiments.sweep import run_scenario_matrix
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventColumns
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import smoke_profile
from repro.workload.cluster import SimCluster


def _bind_reference_receive(cluster):
    """Route every node through the seed's per-event receive loop."""
    for node in cluster.nodes.values():
        proto = node.protocol

        def reference_batch(messages, now, proto=proto):
            replies = []
            for message in messages:
                replies.extend(proto.on_receive_reference(message, now))
            return replies

        proto.on_receive = proto.on_receive_reference
        proto.on_receive_batch = reference_batch


def run(
    dispatch,
    protocol="adaptive",
    round_phase=None,
    round_jitter=0.05,
    seed=7,
    receive_path="batched",
):
    cluster = SimCluster(
        n_nodes=12,
        system=SystemConfig(
            buffer_capacity=30,
            dedup_capacity=500,
            round_phase=round_phase,
            round_jitter=round_jitter,
        ),
        protocol=protocol,
        adaptive=AdaptiveConfig(age_critical=4.5),
        seed=seed,
        dispatch=dispatch,
    )
    if receive_path == "reference":
        _bind_reference_receive(cluster)
    cluster.add_senders([0, 6], rate_each=8.0)
    cluster.run(until=30.0)
    return cluster


def fingerprint(cluster):
    m = cluster.metrics
    deliveries = tuple(
        sorted(
            (eid, rec.broadcast_time, tuple(sorted(map(repr, rec.receivers))))
            for eid, rec in m.messages.items()
        )
    )
    gauges = tuple(
        tuple(m.gauge("allowed_rate", node).series(0, 30))
        for node in range(12)
        if m.gauge("allowed_rate", node) is not None
    )
    return (
        m.admitted.total,
        m.deliveries.total,
        m.drops_overflow.total,
        tuple(m.drop_ages),
        deliveries,
        gauges,
    )


def test_batched_matches_timers_jittered():
    assert fingerprint(run("timers")) == fingerprint(run("batched"))


def test_batched_matches_timers_baseline_protocol():
    a = run("timers", protocol="lpbcast")
    b = run("batched", protocol="lpbcast")
    assert fingerprint(a) == fingerprint(b)


def test_batched_matches_timers_round_synchronous():
    """Aligned phases + zero jitter: the one-pop-per-round fast path."""
    a = run("timers", round_phase=0.0, round_jitter=0.0)
    b = run("batched", round_phase=0.0, round_jitter=0.0)
    assert fingerprint(a) == fingerprint(b)


def test_round_synchronous_batches_heap_events():
    """The aligned bucket really does collapse round dispatch: the batched
    run gets through the same simulation in far fewer heap events."""
    a = run("timers", protocol="lpbcast", round_phase=0.0, round_jitter=0.0)
    b = run("batched", protocol="lpbcast", round_phase=0.0, round_jitter=0.0)
    assert fingerprint(a) == fingerprint(b)
    assert b.sim.events_dispatched < a.sim.events_dispatched


def test_round_messages_are_columnar():
    """The hot path really ships the columnar form on every round."""
    cluster = run("batched", protocol="lpbcast")
    node = cluster.nodes[0]
    batches = node.protocol.on_round_batch(cluster.sim.now + 1.0)
    assert batches, "round produced no emissions"
    for _targets, message in batches:
        assert isinstance(message.events, EventColumns)


def test_batched_receive_matches_reference_loop():
    """Columnar fold vs the seed's per-event loop: byte-identical runs."""
    a = run("batched", protocol="lpbcast")
    b = run("batched", protocol="lpbcast", receive_path="reference")
    assert fingerprint(a) == fingerprint(b)


def test_batched_receive_matches_reference_loop_adaptive():
    """Same equivalence with the Figure 5 machinery hooked in."""
    a = run("batched")
    b = run("batched", receive_path="reference")
    assert fingerprint(a) == fingerprint(b)


def test_reference_receive_identical_across_dispatch():
    """Reference receive under timers vs batched dispatch still matches."""
    a = run("timers", protocol="lpbcast", receive_path="reference")
    b = run("batched", protocol="lpbcast", receive_path="reference")
    assert fingerprint(a) == fingerprint(b)


def _spec(dispatch):
    return RunSpec(
        protocol="adaptive",
        system=SystemConfig(buffer_capacity=30, dedup_capacity=500),
        n_nodes=10,
        sender_ids=(0, 5),
        offered_load=16.0,
        duration=30.0,
        warmup=10.0,
        drain=5.0,
        seed=3,
        adaptive=AdaptiveConfig(age_critical=4.5),
        dispatch=dispatch,
    )


def _assert_results_identical(a, b):
    """Field-wise RunResult equality, NaN-tolerant, spec excluded
    (the spec records the dispatch mode / job provenance)."""
    for field in dataclasses.fields(a):
        if field.name == "spec":
            continue
        va = getattr(a, field.name)
        vb = getattr(b, field.name)
        assert va == vb or (va != va and vb != vb), field.name


def test_run_result_identical_across_dispatch():
    """Same RunSpec modulo dispatch mode => identical RunResult payload."""
    timers = run_once(_spec("timers"))
    batched = run_once(_spec("batched"))
    _assert_results_identical(timers, batched)


# ----------------------------------------------------------------------
# the scenario matrix upholds the same guarantees
# ----------------------------------------------------------------------
_MATRIX_PROFILE = dataclasses.replace(
    smoke_profile(QUICK),
    name="determinism-matrix",
    n_nodes=12,
    duration=24.0,
    warmup=8.0,
    drain=4.0,
    offered_load=18.0,
)


@pytest.mark.parametrize("name", scenario_names())
def test_scenario_identical_across_dispatch(name):
    """Every registered scenario — faults, churn, crash/restart, caps,
    topologies, bursty workloads — runs byte-identically under both
    round-dispatch modes."""
    spec = get_scenario(name, _MATRIX_PROFILE)
    timers = run_once(spec_for_scenario(spec, dispatch="timers"))
    batched = run_once(spec_for_scenario(spec, dispatch="batched"))
    _assert_results_identical(timers, batched)


def test_scenario_matrix_identical_across_job_counts():
    """Sharding a scenario matrix across workers reproduces the serial
    run bit for bit, in name order."""
    names = ["catastrophic-crash", "correlated-loss", "rolling-churn"]
    serial = run_scenario_matrix(names, profile=_MATRIX_PROFILE, jobs=1)
    sharded = run_scenario_matrix(names, profile=_MATRIX_PROFILE, jobs=3)
    assert [r.spec.scenario for r in serial] == names
    for a, b in zip(serial, sharded):
        assert a.spec == b.spec
        _assert_results_identical(a, b)
