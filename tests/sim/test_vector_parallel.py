"""Shard-count invariance of the multicore vector lane.

The contract: ``--dispatch vector --shards N`` is **byte-identical** to
the single-core vector lane (and therefore to the per-node batched
reference, which the vector parity suite pins) at any shard count.
Shard boundaries only decide *which worker process* replays a node's
sampling stream, so nothing about the run may change.

Four angles:

* hypothesis lanes drawing lossless and faulted configurations and
  asserting fingerprint equality across ``shards=1/2/4``;
* a deterministic crash-window + churn parity case (the emission order
  compacts and regrows mid-run, exercising the order republication);
* worker lifecycle: teardown leaks no processes (mirroring
  ``tests/runtime/test_process_cluster.py``), close is idempotent, and
  an orphaned worker exits on its own when the parent vanishes;
* shard resolution and fallback reasons: ``0`` = auto (cores − 1),
  ineligible configurations fall back to the single-core vector lane
  with a human-readable reason.

Plus the registry-wide gate: every vector-eligible library scenario is
byte-identical between ``shards=1`` and ``shards=2`` at smoke scale.
"""

import dataclasses
import multiprocessing
from multiprocessing import shared_memory

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.harness import (
    build_cluster,
    parallel_fallback_reason,
    spec_for_scenario,
    vector_fallback_reason,
)
from repro.gossip.config import SystemConfig
from repro.sim.faults import FaultScript
from repro.sim.network import BernoulliLoss, ConstantLatency
from repro.sim.vector_parallel import (
    ParallelVectorExecutor,
    ShardConfig,
    parallel_ineligible_reason,
    resolve_shards,
    shard_bounds,
    shard_worker_main,
)
from repro.workload.cluster import SimCluster

DEDUP = 2000
SHARD_COUNTS = (1, 2, 4)


def _fingerprint(cluster: SimCluster) -> tuple:
    m = cluster.metrics
    records = tuple(
        sorted(
            (
                repr(eid),
                rec.broadcast_time,
                rec.receiver_count,
                rec.duplicate_deliveries,
                rec.first_delivery,
                rec.last_delivery,
            )
            for eid, rec in m.messages.items()
        )
    )
    stats = tuple(repr(cluster.nodes[i].protocol.stats) for i in sorted(cluster.nodes))
    net = cluster.network.stats
    return (
        m.admitted.total,
        m.deliveries.total,
        m.drops_overflow.total,
        m.drops_age_out.total,
        tuple(sorted(m.drop_ages)),
        records,
        stats,
        (net.sent, net.delivered, net.lost, net.partitioned,
         net.oneway_blocked, net.link_lost, net.capped, net.no_route,
         net.payload_items),
    )


def _system(cfg: dict) -> SystemConfig:
    return SystemConfig(
        fanout=cfg["fanout"],
        gossip_period=1.0,
        buffer_capacity=cfg["buffer_capacity"],
        dedup_capacity=DEDUP,
        max_age=cfg["max_age"],
        round_jitter=0.0,
        round_phase=0.0,
    )


def _run_sharded(build, shard_counts=SHARD_COUNTS):
    """Fingerprints of the same run at several shard counts.

    ``build(shards)`` returns a ready-to-run cluster; every cluster is
    closed even on assertion failure, and any multi-shard cluster must
    genuinely engage the parallel executor.
    """
    fps = []
    for shards in shard_counts:
        cluster = build(shards)
        try:
            if shards >= 2:
                assert isinstance(cluster.vector, ParallelVectorExecutor), (
                    cluster.parallel_fallback_reason
                )
                assert cluster.shards == shards
            cluster.run(until=12.0)
            fps.append(_fingerprint(cluster))
        finally:
            cluster.close()
    return fps


# ----------------------------------------------------------------------
# hypothesis lane 1: lossless round-synchronous configs
# ----------------------------------------------------------------------
parallel_configs = st.fixed_dictionaries(
    {
        "n_nodes": st.integers(8, 32),
        "fanout": st.integers(1, 6),
        "buffer_capacity": st.integers(3, 12),
        "max_age": st.integers(2, 6),
        "delay": st.floats(0.005, 0.9),
        "rate": st.floats(2.0, 10.0),
        "n_senders": st.integers(1, 3),
        "seed": st.integers(0, 10_000),
    }
)


@settings(max_examples=6, deadline=None)
@given(cfg=parallel_configs)
def test_lossless_fingerprints_invariant_across_shards(cfg):
    def build(shards):
        cluster = SimCluster(
            n_nodes=cfg["n_nodes"],
            system=_system(cfg),
            protocol="lpbcast",
            seed=cfg["seed"],
            latency=ConstantLatency(cfg["delay"]),
            dispatch="vector",
            shards=shards,
        )
        senders = [
            i * (cfg["n_nodes"] // cfg["n_senders"] or 1) % cfg["n_nodes"]
            for i in range(cfg["n_senders"])
        ]
        cluster.add_senders(sorted(set(senders)), rate_each=cfg["rate"])
        return cluster

    fps = _run_sharded(build)
    assert fps[0] == fps[1] == fps[2]


# ----------------------------------------------------------------------
# hypothesis lane 2: faulted configs (loss windows, partitions, crashes)
# ----------------------------------------------------------------------
faulted_configs = st.fixed_dictionaries(
    {
        "n_nodes": st.integers(8, 32),
        "fanout": st.integers(2, 5),
        "buffer_capacity": st.integers(4, 12),
        "max_age": st.integers(3, 6),
        "rate": st.floats(2.0, 8.0),
        "seed": st.integers(0, 10_000),
        "loss": st.one_of(st.none(), st.floats(0.05, 0.7)),
        "loss_window": st.one_of(
            st.none(),
            st.tuples(
                st.floats(1.0, 5.0), st.floats(1.0, 4.0), st.floats(0.1, 0.9)
            ),
        ),
        "partition": st.one_of(
            st.none(), st.tuples(st.floats(1.0, 5.0), st.floats(1.0, 4.0))
        ),
        "crash": st.one_of(
            st.none(),
            st.tuples(
                st.floats(1.0, 6.0),
                st.integers(1, 3),
                st.one_of(st.none(), st.integers(7, 11)),
            ),
        ),
    }
)


@settings(max_examples=6, deadline=None)
@given(cfg=faulted_configs)
def test_faulted_fingerprints_invariant_across_shards(cfg):
    n = cfg["n_nodes"]
    loss = BernoulliLoss(cfg["loss"]) if cfg["loss"] is not None else None

    def build(shards):
        cluster = SimCluster(
            n_nodes=n,
            system=_system(cfg),
            protocol="lpbcast",
            seed=cfg["seed"],
            latency=ConstantLatency(0.01),
            loss=loss,
            dispatch="vector",
            shards=shards,
        )
        cluster.add_senders([0, n // 2], rate_each=cfg["rate"])
        script = FaultScript()
        if cfg["loss_window"] is not None:
            start, duration, p = cfg["loss_window"]
            script.loss(start, duration, p)
        if cfg["partition"] is not None:
            start, duration = cfg["partition"]
            script.partition(
                start, duration, [list(range(0, n // 2)), list(range(n // 2, n))]
            )
        if cfg["crash"] is not None:
            time, k, restart_at = cfg["crash"]
            senders = {0, n // 2}
            victims = [i for i in range(n - 1, -1, -1) if i not in senders][:k]
            script.crash(time, tuple(victims), restart_at)
        if len(script):
            cluster.apply_faults(script, baseline_loss=loss)
        return cluster

    fps = _run_sharded(build)
    assert fps[0] == fps[1] == fps[2]


# ----------------------------------------------------------------------
# deterministic crash-window / churn parity (order compacts and regrows)
# ----------------------------------------------------------------------
def test_crash_window_and_churn_parity():
    n = 16

    def build(shards):
        cluster = SimCluster(
            n_nodes=n,
            system=SystemConfig(
                fanout=3,
                gossip_period=1.0,
                buffer_capacity=8,
                dedup_capacity=DEDUP,
                max_age=5,
                round_jitter=0.0,
                round_phase=0.0,
            ),
            protocol="lpbcast",
            seed=7,
            latency=ConstantLatency(0.01),
            loss=BernoulliLoss(0.1),
            dispatch="vector",
            shards=shards,
        )
        cluster.add_senders([0, n // 2], rate_each=4.0)
        script = (
            FaultScript()
            .loss(5.0, 2.0, 0.5)
            .crash(4.0, nodes=(14, 15), restart_at=8.0)
        )
        cluster.apply_faults(script, baseline_loss=BernoulliLoss(0.1))
        return cluster

    fps = _run_sharded(build)
    assert fps[0] == fps[1] == fps[2]


# ----------------------------------------------------------------------
# registry-wide gate: every vector-eligible library scenario
# ----------------------------------------------------------------------
def test_registry_scenarios_identical_across_shard_counts():
    from repro.scenarios.registry import get_scenario, scenario_names
    from repro.scenarios.runner import smoke_profile

    checked = []
    for name in scenario_names():
        spec = spec_for_scenario(get_scenario(name, smoke_profile()), dispatch="vector")
        if vector_fallback_reason(spec) is not None:
            continue  # never reaches the vector lane; nothing to shard
        fps = []
        for shards in (1, 2):
            cluster = build_cluster(dataclasses.replace(spec, shards=shards))
            try:
                if shards == 2:
                    assert isinstance(cluster.vector, ParallelVectorExecutor), name
                cluster.run(until=spec.duration)
                fps.append(_fingerprint(cluster))
            finally:
                cluster.close()
        assert fps[0] == fps[1], f"{name} diverged between shards=1 and shards=2"
        checked.append(name)
    # the mega family plus giga-flood must all have been exercised
    assert {"mega-flood", "giga-flood"} <= set(checked)
    assert len(checked) >= 6


# ----------------------------------------------------------------------
# worker lifecycle
# ----------------------------------------------------------------------
def _parallel_cluster(shards=2, n=12):
    cluster = SimCluster(
        n_nodes=n,
        system=SystemConfig(
            fanout=3,
            gossip_period=1.0,
            buffer_capacity=8,
            dedup_capacity=DEDUP,
            max_age=5,
            round_jitter=0.0,
            round_phase=0.0,
        ),
        protocol="lpbcast",
        seed=3,
        latency=ConstantLatency(0.01),
        dispatch="vector",
        shards=shards,
    )
    cluster.add_senders([0], rate_each=4.0)
    return cluster


def test_close_leaks_no_workers_and_is_idempotent():
    before = len(multiprocessing.active_children())
    cluster = _parallel_cluster()
    assert isinstance(cluster.vector, ParallelVectorExecutor)
    cluster.run(until=6.0)
    fp = _fingerprint(cluster)
    cluster.close()
    assert len(multiprocessing.active_children()) <= before
    # metrics and stats stay readable after teardown
    assert _fingerprint(cluster) == fp
    cluster.close()  # second close is a no-op


def test_worker_exits_when_parent_vanishes():
    n, fanout = 8, 3
    shm = shared_memory.SharedMemory(create=True, size=n * 4 + n * fanout * 4)
    try:
        cfg = ShardConfig(
            worker_id=0, seed=7, lo=0, hi=4, n_nodes=n, fanout=fanout,
            shm_name=shm.name,
        )
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
        parent_conn, child_conn = ctx.Pipe()
        # mirror the executor: the forked child inherits parent_conn and
        # must close it, or its own copy would mask the parent's EOF
        proc = ctx.Process(
            target=shard_worker_main,
            args=(child_conn, cfg, [parent_conn]),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        parent_conn.close()  # the parent "crashes" — EOF on the pipe
        proc.join(timeout=10.0)
        assert proc.exitcode == 0, "orphaned sampling worker kept waiting"
    finally:
        shm.close()
        shm.unlink()


# ----------------------------------------------------------------------
# shard resolution and fallback reasons
# ----------------------------------------------------------------------
def test_resolve_shards():
    assert resolve_shards(None) == 1
    assert resolve_shards(1) == 1
    assert resolve_shards(5) == 5
    assert resolve_shards(0, cpu_count=8) == 7
    assert resolve_shards(0, cpu_count=1) == 1  # auto never resolves to 0
    with pytest.raises(ValueError):
        resolve_shards(-1)


def test_shard_bounds_partition_every_node_exactly_once():
    for n, shards in ((10, 3), (8, 2), (7, 7), (100, 4)):
        bounds = shard_bounds(n, shards)
        assert len(bounds) == shards
        flat = [i for lo, hi in bounds for i in range(lo, hi)]
        assert flat == list(range(n))
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1


def test_parallel_ineligible_reasons():
    assert parallel_ineligible_reason(shards=2, n_nodes=100) is None
    assert "n_nodes" in parallel_ineligible_reason(shards=8, n_nodes=4)
    assert "numpy" in parallel_ineligible_reason(
        shards=2, n_nodes=100, vector_numpy=False
    )


def test_cluster_falls_back_single_core_with_reason():
    # stdlib-forced vector lane: parallel refuses, run proceeds single-core
    cluster = _parallel_cluster(shards=2)
    try:
        assert cluster.parallel_fallback_reason is None
    finally:
        cluster.close()
    fallback = SimCluster(
        n_nodes=12,
        system=SystemConfig(
            fanout=3, gossip_period=1.0, buffer_capacity=8,
            dedup_capacity=DEDUP, max_age=5, round_jitter=0.0, round_phase=0.0,
        ),
        protocol="lpbcast",
        seed=3,
        latency=ConstantLatency(0.01),
        dispatch="vector",
        vector_numpy=False,
        shards=2,
    )
    try:
        assert fallback.vector is not None
        assert not isinstance(fallback.vector, ParallelVectorExecutor)
        assert fallback.shards == 1
        assert "numpy" in fallback.parallel_fallback_reason
    finally:
        fallback.close()
    # shards on a non-vector dispatch: fallback reason names the lane
    batched = SimCluster(n_nodes=6, dispatch="batched", shards=2)
    assert "vector lane" in batched.parallel_fallback_reason


def test_harness_parallel_fallback_reason():
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runner import smoke_profile

    eligible = spec_for_scenario(
        get_scenario("mega-flood", smoke_profile()), dispatch="vector", shards=2
    )
    assert parallel_fallback_reason(eligible) is None
    assert parallel_fallback_reason(dataclasses.replace(eligible, shards=1)) is None
    per_node = spec_for_scenario(
        get_scenario("flash-crowd", smoke_profile()), dispatch="vector", shards=2
    )
    assert "vector lane" in parallel_fallback_reason(per_node)
    batched = dataclasses.replace(eligible, dispatch="batched")
    assert "--dispatch vector" in parallel_fallback_reason(batched)
