"""The batched round dispatcher and the post() fast path."""

import random

import pytest

from repro.sim.engine import RoundDispatcher, SimulationError, Simulator


def test_post_fires_like_schedule():
    sim = Simulator()
    order = []
    sim.post(2.0, order.append, "b")
    sim.post(1.0, order.append, "a")
    sim.schedule(3.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.events_dispatched == 3


def test_post_rejects_past():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.post(-1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post_at(0.5, lambda: None)


def test_post_and_schedule_share_fifo_order():
    sim = Simulator()
    order = []
    sim.post(1.0, order.append, 0)
    sim.schedule(1.0, order.append, 1)
    sim.post(1.0, order.append, 2)
    sim.run()
    assert order == [0, 1, 2]


def test_aligned_members_fire_from_one_bucket():
    sim = Simulator()
    rounds = RoundDispatcher(sim)
    fired = []
    for i in range(10):
        rounds.add(lambda i=i: fired.append((sim.now, i)), period=1.0, phase=0.0)
    sim.run(until=3.0)
    # 4 rounds (t=0,1,2,3), members in registration order each round
    assert [t for t, _ in fired] == [float(r) for r in range(4) for _ in range(10)]
    assert [i for _, i in fired] == list(range(10)) * 4
    # one heap event per round, not one per member
    assert sim.events_dispatched == 4


def test_distinct_phases_get_distinct_buckets():
    sim = Simulator()
    rounds = RoundDispatcher(sim)
    fired = []
    rounds.add(lambda: fired.append(("a", sim.now)), period=1.0, phase=0.25)
    rounds.add(lambda: fired.append(("b", sim.now)), period=1.0, phase=0.75)
    sim.run(until=2.0)
    assert fired == [
        ("a", 0.25), ("b", 0.75), ("a", 1.25), ("b", 1.75),
    ]


def test_random_phase_draws_from_rng():
    sim = Simulator()
    rounds = RoundDispatcher(sim)
    rng = random.Random(5)
    expected_phase = random.Random(5).uniform(0, 2.0)
    fired = []
    rounds.add(lambda: fired.append(sim.now), period=2.0, rng=rng)
    sim.run(until=1.9 + expected_phase)
    assert fired == [pytest.approx(expected_phase)]


def test_jittered_member_matches_process_draw_pattern():
    """Per-tick delays replicate SimProcess.every: period * U(1-j, 1+j)."""
    sim = Simulator()
    rounds = RoundDispatcher(sim)
    rng = random.Random(9)
    model = random.Random(9)
    fired = []
    rounds.add(lambda: fired.append(sim.now), period=1.0, jitter=0.2, rng=rng)
    sim.run(until=5.0)
    t = model.uniform(0, 1.0)
    expected = []
    while t <= 5.0:
        expected.append(t)
        t += 1.0 * model.uniform(0.8, 1.2)
    assert fired == [pytest.approx(e) for e in expected]


def test_cancelled_member_stops_firing():
    sim = Simulator()
    rounds = RoundDispatcher(sim)
    fired = []
    keep = rounds.add(lambda: fired.append("keep"), period=1.0, phase=0.0)
    drop = rounds.add(lambda: fired.append("drop"), period=1.0, phase=0.0)
    sim.run(until=0.5)
    drop.cancel()
    assert drop.cancelled and not keep.cancelled
    sim.run(until=3.5)
    assert fired == ["keep", "drop"] + ["keep"] * 3


def test_bucket_dies_when_all_members_cancel_and_revives_on_add():
    sim = Simulator()
    rounds = RoundDispatcher(sim)
    fired = []
    member = rounds.add(lambda: fired.append("old"), period=1.0, phase=0.0)
    sim.run(until=1.5)
    member.cancel()
    sim.run(until=4.0)
    assert fired == ["old", "old"]
    rounds.add(lambda: fired.append("new"), period=1.0, phase=0.0)
    sim.run(until=6.0)  # new member fires at t=4, 5, 6
    assert fired == ["old", "old", "new", "new", "new"]


def test_add_validates_arguments():
    sim = Simulator()
    rounds = RoundDispatcher(sim)
    with pytest.raises(ValueError):
        rounds.add(lambda: None, period=0.0, phase=0.0)
    with pytest.raises(ValueError):
        rounds.add(lambda: None, period=1.0)  # random phase needs an rng
    with pytest.raises(ValueError):
        rounds.add(lambda: None, period=1.0, phase=0.0, jitter=0.1)  # jitter too
