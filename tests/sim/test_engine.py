"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_dispatched == 0


def test_schedule_and_run_until():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "b")
    sim.run(until=2.0)
    assert fired == ["a"]
    assert sim.now == 2.0  # clock advances to the horizon
    sim.run(until=4.0)
    assert fired == ["a", "b"]


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, 3)
    sim.schedule(1.0, order.append, 1)
    sim.schedule(2.0, order.append, 2)
    sim.run()
    assert order == [1, 2, 3]


def test_same_time_events_fire_fifo():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(1.0, order.append, i)
    sim.run()
    assert order == list(range(10))


def test_clock_is_event_time_during_dispatch():
    sim = Simulator()
    seen = []
    sim.schedule(2.5, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [2.5]


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_events_scheduled_during_dispatch_run():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.schedule(1.0, lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def inner():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, inner)
    sim.run()
    assert len(errors) == 1


def test_run_until_zero_events():
    sim = Simulator()
    assert sim.run(until=10.0) == 10.0
    assert sim.now == 10.0


def test_dispatched_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_dispatched == 5


def test_cancelled_events_not_counted():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    sim.run()
    assert sim.events_dispatched == 1


def test_rngs_are_named_streams():
    sim = Simulator(seed=42)
    a = sim.rngs.stream("x")
    b = sim.rngs.stream("y")
    assert a is not b
    assert a is sim.rngs.stream("x")
