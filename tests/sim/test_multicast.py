"""Network.multicast — the batched send path must mirror send() exactly."""

from repro.sim.engine import Simulator
from repro.sim.network import (
    BernoulliLoss,
    ConstantLatency,
    Network,
    UniformLatency,
)


def collect(network, address, log):
    network.attach(address, lambda msg, src, now: log.append((address, msg, src, now)))


def test_multicast_delivers_to_every_destination():
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    log = []
    for n in range(5):
        collect(net, n, log)
    assert net.multicast(0, (1, 2, 3, 4), "hello", items=3) == 4
    sim.run()
    assert [(dst, src) for dst, _m, src, _t in log] == [(d, 0) for d in (1, 2, 3, 4)]
    assert net.stats.sent == 4
    assert net.stats.delivered == 4
    assert net.stats.payload_items == 12


def test_constant_latency_collapses_to_one_event():
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    log = []
    for n in range(9):
        collect(net, n, log)
    net.multicast(0, tuple(range(1, 9)), "m")
    sim.run()
    assert len(log) == 8
    # one batched delivery event + the instant's single flush event
    assert sim.events_dispatched == 2


def test_multicast_matches_sequential_sends():
    """Same RNG stream order => same latencies, losses and deliveries."""

    def run(batched):
        sim = Simulator(seed=13)
        net = Network(
            sim, latency=UniformLatency(0.005, 0.05), loss=BernoulliLoss(0.3)
        )
        log = []
        for n in range(6):
            collect(net, n, log)
        for _round in range(20):
            if batched:
                net.multicast(0, (1, 2, 3, 4, 5), "m")
            else:
                for dst in (1, 2, 3, 4, 5):
                    net.send(0, dst, "m")
        sim.run()
        return [(d, s, round(t, 12)) for d, _m, s, t in log], (
            net.stats.sent,
            net.stats.delivered,
            net.stats.lost,
        )

    assert run(batched=True) == run(batched=False)


def test_multicast_respects_partitions_and_detach():
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    log = []
    for n in range(4):
        collect(net, n, log)
    net.partition([[0, 1], [2]])
    scheduled = net.multicast(0, (1, 2, 3, 5), "m")
    # 1 shares the partition; 2 is across it; 3 and 5 sit in the implicit
    # group -1, also across — the partition check precedes routing,
    # exactly as in send()
    assert scheduled == 1
    assert net.stats.partitioned == 3
    assert net.stats.no_route == 0
    sim.run()
    assert [d for d, *_ in log] == [1]


def test_partitioned_multicast_matches_sequential_sends():
    """RNG parity holds with a partition in force: the hoisted partition
    check must skip exactly the destinations per-send would skip, before
    any loss/latency draw is consumed."""

    def run(batched):
        sim = Simulator(seed=29)
        net = Network(
            sim, latency=UniformLatency(0.005, 0.05), loss=BernoulliLoss(0.25)
        )
        log = []
        for n in range(8):
            collect(net, n, log)
        net.partition([[0, 1, 2, 3], [4, 5, 6, 7]])
        for _round in range(25):
            if batched:
                net.multicast(0, (1, 2, 4, 3, 5, 6), "m")
            else:
                for dst in (1, 2, 4, 3, 5, 6):
                    net.send(0, dst, "m")
        sim.run()
        return [(d, s, round(t, 12)) for d, _m, s, t in log], (
            net.stats.sent,
            net.stats.delivered,
            net.stats.lost,
            net.stats.partitioned,
        )

    a, b = run(batched=True), run(batched=False)
    assert a == b
    assert a[1][3] == 75  # 3 cross-partition targets x 25 rounds


def test_multicast_to_departed_node_counts_no_route_at_delivery():
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    log = []
    for n in range(3):
        collect(net, n, log)
    net.multicast(0, (1, 2), "m")
    net.detach(1)  # leaves while the message is in flight
    sim.run()
    assert [d for d, *_ in log] == [2]
    assert net.stats.no_route == 1
    assert net.stats.delivered == 1
