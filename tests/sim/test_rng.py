"""Tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_derive_seed_differs_by_name_and_seed():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_multi_part_names():
    assert derive_seed(1, "node", 3) != derive_seed(1, "node", 4)
    assert derive_seed(1, "node", 3) == derive_seed(1, "node", 3)


def test_streams_are_memoized():
    rngs = RngRegistry(7)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(7).stream("x")
    b = RngRegistry(7).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_independent():
    rngs = RngRegistry(7)
    a = rngs.stream("a")
    _ = [a.random() for _ in range(100)]  # consuming a must not affect b
    b_fresh = RngRegistry(7).stream("b")
    b = rngs.stream("b")
    assert [b.random() for _ in range(5)] == [b_fresh.random() for _ in range(5)]


def test_creation_order_does_not_matter():
    r1 = RngRegistry(9)
    s1a = r1.stream("a")
    s1b = r1.stream("b")
    r2 = RngRegistry(9)
    s2b = r2.stream("b")
    s2a = r2.stream("a")
    assert s1a.random() == s2a.random()
    assert s1b.random() == s2b.random()


def test_fork_namespaces():
    root = RngRegistry(5)
    f1 = root.fork("component")
    f2 = root.fork("component")
    assert f1.seed == f2.seed
    assert f1.stream("x").random() == f2.stream("x").random()
    assert root.fork("other").seed != f1.seed


def test_seed_property():
    assert RngRegistry(123).seed == 123
