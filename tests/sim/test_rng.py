"""Tests for deterministic named RNG streams."""

from repro.sim.rng import RngRegistry, derive_seed


def test_derive_seed_is_stable():
    assert derive_seed(1, "a") == derive_seed(1, "a")


def test_derive_seed_differs_by_name_and_seed():
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_derive_seed_multi_part_names():
    assert derive_seed(1, "node", 3) != derive_seed(1, "node", 4)
    assert derive_seed(1, "node", 3) == derive_seed(1, "node", 3)


def test_streams_are_memoized():
    rngs = RngRegistry(7)
    assert rngs.stream("a") is rngs.stream("a")


def test_streams_reproducible_across_registries():
    a = RngRegistry(7).stream("x")
    b = RngRegistry(7).stream("x")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_independent():
    rngs = RngRegistry(7)
    a = rngs.stream("a")
    _ = [a.random() for _ in range(100)]  # consuming a must not affect b
    b_fresh = RngRegistry(7).stream("b")
    b = rngs.stream("b")
    assert [b.random() for _ in range(5)] == [b_fresh.random() for _ in range(5)]


def test_creation_order_does_not_matter():
    r1 = RngRegistry(9)
    s1a = r1.stream("a")
    s1b = r1.stream("b")
    r2 = RngRegistry(9)
    s2b = r2.stream("b")
    s2a = r2.stream("a")
    assert s1a.random() == s2a.random()
    assert s1b.random() == s2b.random()


def test_fork_namespaces():
    root = RngRegistry(5)
    f1 = root.fork("component")
    f2 = root.fork("component")
    assert f1.seed == f2.seed
    assert f1.stream("x").random() == f2.stream("x").random()
    assert root.fork("other").seed != f1.seed


def test_seed_property():
    assert RngRegistry(123).seed == 123


# ----------------------------------------------------------------------
# uniform_sample: draw-for-draw parity with random.sample
# ----------------------------------------------------------------------
def test_uniform_sample_matches_stdlib_sample_exactly():
    """Both branches (pool copy and selection set), many shapes and seeds.

    The hot path inlines CPython's sample algorithm; this pins the
    equivalence so a future stdlib change cannot silently desynchronise
    runs that were produced with different repro versions.
    """
    import random as _random

    from repro.sim.rng import uniform_sample

    for seed in range(25):
        for n, k in [(3, 2), (10, 4), (21, 5), (60, 4), (60, 21), (999, 10),
                     (500, 9), (7, 7), (40, 0)]:
            population = [f"m{i}" for i in range(n)]
            expected = _random.Random(seed).sample(population, k)
            got = uniform_sample(_random.Random(seed), population, k)
            assert got == expected, (seed, n, k)


def test_uniform_sample_consumes_stream_identically():
    """Draws after the sample line up too — the stream stays in sync."""
    import random as _random

    from repro.sim.rng import uniform_sample

    a, b = _random.Random(77), _random.Random(77)
    population = list(range(300))
    a.sample(population, 12)
    uniform_sample(b, population, 12)
    assert a.random() == b.random()
    assert a.getrandbits(31) == b.getrandbits(31)


def test_uniform_sample_validates_k():
    import random as _random

    import pytest

    from repro.sim.rng import uniform_sample

    with pytest.raises(ValueError):
        uniform_sample(_random.Random(1), [1, 2, 3], 4)
    with pytest.raises(ValueError):
        uniform_sample(_random.Random(1), [1, 2, 3], -1)
