"""Tests for declarative fault injection."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.faults import FaultScript, LossWindow, PartitionWindow
from repro.sim.network import ConstantLatency, Network


def test_fault_validation():
    with pytest.raises(ValueError):
        LossWindow(-1.0, 1.0, 0.5)
    with pytest.raises(ValueError):
        LossWindow(0.0, 0.0, 0.5)
    with pytest.raises(ValueError):
        LossWindow(0.0, 1.0, 0.0)
    with pytest.raises(ValueError):
        PartitionWindow(0.0, 1.0, (("a",),))


def test_builder():
    script = FaultScript().loss(1.0, 2.0, 0.5).partition(5.0, 1.0, [["a"], ["b"]])
    assert len(script) == 2


def wire(sim):
    net = Network(sim, latency=ConstantLatency(0.001))
    inbox = []
    net.attach("a", lambda m, s, t: None)
    net.attach("b", lambda m, s, t: inbox.append(t))
    return net, inbox


def test_loss_window_opens_and_closes():
    sim = Simulator(seed=1)
    net, inbox = wire(sim)
    FaultScript().loss(1.0, 2.0, 1.0).apply(sim, net)

    def send():
        net.send("a", "b", "x")

    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(t, send)
    sim.run()
    # messages at 1.5 and 2.5 fall inside the total-loss window
    assert len(inbox) == 2
    assert net.stats.lost == 2


def test_partition_window_heals():
    sim = Simulator(seed=1)
    net, inbox = wire(sim)
    FaultScript().partition(1.0, 2.0, [["a"], ["b"]]).apply(sim, net)

    def send():
        net.send("a", "b", "x")

    for t in (0.5, 2.0, 3.5):
        sim.schedule_at(t, send)
    sim.run()
    assert len(inbox) == 2  # the t=2.0 send was partitioned away
    assert net.stats.partitioned == 1


def test_baseline_loss_restored():
    from repro.sim.network import BernoulliLoss

    sim = Simulator(seed=1)
    net, inbox = wire(sim)
    baseline = BernoulliLoss(p=0.0)  # distinguishable sentinel
    FaultScript().loss(1.0, 1.0, 1.0).apply(sim, net, baseline_loss=baseline)
    sim.run(until=3.0)
    assert net._loss is baseline


def test_gossip_survives_partition_window():
    """Dissemination stalls across a partition and completes after heal."""
    from repro.gossip.config import SystemConfig
    from repro.metrics.delivery import analyze_delivery
    from repro.workload.cluster import SimCluster

    cluster = SimCluster(
        n_nodes=16,
        system=SystemConfig(buffer_capacity=60, dedup_capacity=800, max_age=30),
        seed=9,
    )
    left = list(range(8))
    right = list(range(8, 16))
    script = FaultScript().partition(5.0, 10.0, [left, right])
    script.apply(cluster.sim, cluster.network)
    cluster.add_sender(0, rate=2.0, stop=14.0)
    cluster.run(until=40.0)
    stats = analyze_delivery(cluster.metrics.messages_in_window(0, 15), 16)
    # everything (including messages broadcast inside the partition
    # window) eventually reached both sides once the partition healed
    assert stats.avg_receiver_fraction > 0.99
