"""Tests for declarative fault injection."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.faults import (
    AsymmetricPartitionWindow,
    BandwidthCapWindow,
    CrashWindow,
    FaultScript,
    LinkLossWindow,
    LossWindow,
    OverlappingFaultsError,
    PartitionWindow,
)
from repro.sim.network import ConstantLatency, Network


def test_fault_validation():
    with pytest.raises(ValueError):
        LossWindow(-1.0, 1.0, 0.5)
    with pytest.raises(ValueError):
        LossWindow(0.0, 0.0, 0.5)
    with pytest.raises(ValueError):
        LossWindow(0.0, 1.0, 0.0)
    with pytest.raises(ValueError):
        PartitionWindow(0.0, 1.0, (("a",),))
    with pytest.raises(ValueError):
        CrashWindow(1.0, ())
    with pytest.raises(ValueError):
        CrashWindow(1.0, (3,), restart_at=1.0)
    with pytest.raises(ValueError):
        BandwidthCapWindow(0.0, 1.0, 0.0)


def test_builder():
    script = (
        FaultScript()
        .loss(1.0, 2.0, 0.5)
        .partition(5.0, 1.0, [["a"], ["b"]])
        .crash(7.0, [3, 4], restart_at=9.0)
        .bandwidth_cap(10.0, 2.0, 50.0)
    )
    assert len(script) == 4


def test_overlapping_loss_windows_rejected():
    script = FaultScript().loss(1.0, 5.0, 0.5).loss(3.0, 1.0, 0.9)
    with pytest.raises(OverlappingFaultsError, match="overlapping LossWindow"):
        script.validate()
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.001))
    # apply() refuses the ambiguous schedule instead of compounding
    with pytest.raises(OverlappingFaultsError):
        script.apply(sim, net)


def test_overlapping_partitions_and_caps_rejected():
    with pytest.raises(OverlappingFaultsError, match="PartitionWindow"):
        (
            FaultScript()
            .partition(1.0, 5.0, [["a"], ["b"]])
            .partition(2.0, 1.0, [["a", "b"], ["c"]])
            .validate()
        )
    with pytest.raises(OverlappingFaultsError, match="BandwidthCapWindow"):
        FaultScript().bandwidth_cap(0.0, 5.0, 10.0).bandwidth_cap(4.0, 5.0, 20.0).validate()


def test_different_kinds_may_overlap():
    FaultScript().loss(1.0, 5.0, 0.5).partition(2.0, 2.0, [["a"], ["b"]]).validate()
    # back-to-back same-kind windows (touching, not overlapping) are fine
    FaultScript().loss(1.0, 2.0, 0.5).loss(3.0, 2.0, 0.9).validate()


def test_new_window_validation():
    with pytest.raises(ValueError):
        AsymmetricPartitionWindow(0.0, 1.0, (("a", "b"),))  # one group
    with pytest.raises(ValueError):
        AsymmetricPartitionWindow(0.0, 1.0, (("a",), ("b",)), blocked=())
    with pytest.raises(ValueError):
        AsymmetricPartitionWindow(0.0, 1.0, (("a",), ("b",)), blocked=((0, 2),))
    with pytest.raises(ValueError):
        AsymmetricPartitionWindow(0.0, 1.0, (("a",), ("b",)), blocked=((1, 1),))
    with pytest.raises(ValueError):
        LinkLossWindow(0.0, 1.0, {})  # empty matrix
    with pytest.raises(ValueError):
        LinkLossWindow(0.0, 1.0, {("a", "b"): 0.0})  # p out of (0, 1]
    with pytest.raises(ValueError):
        LinkLossWindow(0.0, 1.0, [("a", "b", 0.5), ("a", "b", 0.9)])  # dup pair


def test_link_loss_window_normalises_dict_and_triples():
    from_dict = LinkLossWindow(0.0, 1.0, {("a", "b"): 0.5, ("b", "a"): 0.2})
    from_triples = LinkLossWindow(0.0, 1.0, [("b", "a", 0.2), ("a", "b", 0.5)])
    assert from_dict == from_triples
    assert from_dict.matrix == {("a", "b"): 0.5, ("b", "a"): 0.2}


def test_family_split_overlap_exclusivity():
    """Each window kind is its own network knob: different kinds compose
    even when their windows overlap; only same-kind overlap is ambiguous.

    Regression: the old validator treated loss-shaped windows as one
    family, so a per-link loss window over a symmetric loss (or
    partition) window was rejected — exactly the heterogeneous
    composition chaos v2 exists to express.
    """
    links = {("a", "b"): 0.5}
    groups = [["a"], ["b"]]
    # link loss over a symmetric loss burst: legal
    FaultScript().loss(1.0, 4.0, 0.3).link_loss(2.0, 2.0, links).validate()
    # link loss over a (symmetric) partition: legal
    FaultScript().partition(1.0, 4.0, groups).link_loss(2.0, 2.0, links).validate()
    # one-way cut over a symmetric partition: legal (separate knobs)
    FaultScript().partition(1.0, 4.0, groups).oneway_partition(
        2.0, 2.0, groups
    ).validate()
    # same-kind overlap is still rejected, with the kind in the message
    with pytest.raises(OverlappingFaultsError, match="overlapping LinkLossWindow"):
        FaultScript().link_loss(1.0, 4.0, links).link_loss(2.0, 2.0, links).validate()
    with pytest.raises(
        OverlappingFaultsError, match="overlapping AsymmetricPartitionWindow"
    ):
        FaultScript().oneway_partition(1.0, 4.0, groups).oneway_partition(
            2.0, 2.0, groups
        ).validate()


def wire(sim):
    net = Network(sim, latency=ConstantLatency(0.001))
    inbox = []
    net.attach("a", lambda m, s, t: None)
    net.attach("b", lambda m, s, t: inbox.append(t))
    return net, inbox


def test_loss_window_opens_and_closes():
    sim = Simulator(seed=1)
    net, inbox = wire(sim)
    FaultScript().loss(1.0, 2.0, 1.0).apply(sim, net)

    def send():
        net.send("a", "b", "x")

    for t in (0.5, 1.5, 2.5, 3.5):
        sim.schedule_at(t, send)
    sim.run()
    # messages at 1.5 and 2.5 fall inside the total-loss window
    assert len(inbox) == 2
    assert net.stats.lost == 2


def test_partition_window_heals():
    sim = Simulator(seed=1)
    net, inbox = wire(sim)
    FaultScript().partition(1.0, 2.0, [["a"], ["b"]]).apply(sim, net)

    def send():
        net.send("a", "b", "x")

    for t in (0.5, 2.0, 3.5):
        sim.schedule_at(t, send)
    sim.run()
    assert len(inbox) == 2  # the t=2.0 send was partitioned away
    assert net.stats.partitioned == 1


def test_baseline_loss_restored():
    from repro.sim.network import BernoulliLoss

    sim = Simulator(seed=1)
    net, inbox = wire(sim)
    baseline = BernoulliLoss(p=0.0)  # distinguishable sentinel
    FaultScript().loss(1.0, 1.0, 1.0).apply(sim, net, baseline_loss=baseline)
    sim.run(until=3.0)
    assert net._loss is baseline


def test_bandwidth_cap_window_caps_and_releases():
    sim = Simulator(seed=1)
    net, inbox = wire(sim)
    FaultScript().bandwidth_cap(1.0, 2.0, 2.0).apply(sim, net)

    def send():
        net.send("a", "b", "x")

    # five sends inside one capped second, two after the window closes
    for t in (1.1, 1.2, 1.3, 1.4, 1.5, 3.5, 3.6):
        sim.schedule_at(t, send)
    sim.run()
    assert net.stats.capped == 3  # 2 of 5 fit under the 2 msg/s cap
    assert len(inbox) == 4


def test_oneway_window_blocks_one_direction_then_heals():
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.001))
    a_in, b_in = [], []
    net.attach("a", lambda m, s, t: a_in.append(t))
    net.attach("b", lambda m, s, t: b_in.append(t))
    FaultScript().oneway_partition(1.0, 2.0, [["a"], ["b"]], blocked=((0, 1),)).apply(
        sim, net
    )

    def both_ways():
        net.send("a", "b", "x")
        net.send("b", "a", "y")

    for t in (0.5, 2.0, 3.5):
        sim.schedule_at(t, both_ways)
    sim.run()
    assert len(b_in) == 2  # a->b cut at t=2.0
    assert len(a_in) == 3  # b->a always flows: the cut is directed
    assert net.stats.oneway_blocked == 1


def test_link_loss_window_is_per_pair_and_heals():
    sim = Simulator(seed=1)
    net = Network(sim, latency=ConstantLatency(0.001))
    b_in, c_in = [], []
    net.attach("a", lambda m, s, t: None)
    net.attach("b", lambda m, s, t: b_in.append(t))
    net.attach("c", lambda m, s, t: c_in.append(t))
    FaultScript().link_loss(1.0, 2.0, {("a", "b"): 1.0}).apply(sim, net)

    def fan():
        net.send("a", "b", "x")
        net.send("a", "c", "x")

    for t in (0.5, 2.0, 3.5):
        sim.schedule_at(t, fan)
    sim.run()
    assert len(b_in) == 2  # the a->b link ate the t=2.0 send
    assert len(c_in) == 3  # the a->c link was never in the matrix
    assert net.stats.link_lost == 1


def test_crash_window_requires_cluster():
    sim = Simulator(seed=1)
    net, _ = wire(sim)
    with pytest.raises(ValueError, match="crash"):
        FaultScript().crash(1.0, [3]).apply(sim, net)


def test_crash_window_crashes_and_restarts_nodes():
    from repro.gossip.config import SystemConfig
    from repro.workload.cluster import SimCluster

    cluster = SimCluster(
        n_nodes=10,
        system=SystemConfig(buffer_capacity=40, dedup_capacity=400),
        seed=3,
    )
    cluster.apply_faults(FaultScript().crash(5.0, [8, 9], restart_at=12.0))
    cluster.run(until=4.0)
    assert cluster.group_size == 10
    cluster.run(until=8.0)
    assert cluster.group_size == 8
    assert 8 not in cluster.nodes and 9 not in cluster.nodes
    cluster.run(until=15.0)
    # restarted under the old identities, as fresh processes
    assert cluster.group_size == 10
    assert cluster.protocol_of(8).stats.events_delivered == 0


def test_gossip_survives_partition_window():
    """Dissemination stalls across a partition and completes after heal."""
    from repro.gossip.config import SystemConfig
    from repro.metrics.delivery import analyze_delivery
    from repro.workload.cluster import SimCluster

    cluster = SimCluster(
        n_nodes=16,
        system=SystemConfig(buffer_capacity=60, dedup_capacity=800, max_age=30),
        seed=9,
    )
    left = list(range(8))
    right = list(range(8, 16))
    script = FaultScript().partition(5.0, 10.0, [left, right])
    script.apply(cluster.sim, cluster.network)
    cluster.add_sender(0, rate=2.0, stop=14.0)
    cluster.run(until=40.0)
    stats = analyze_delivery(cluster.metrics.messages_in_window(0, 15), 16)
    # everything (including messages broadcast inside the partition
    # window) eventually reached both sides once the partition healed
    assert stats.avg_receiver_fraction > 0.99
