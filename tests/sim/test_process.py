"""Tests for the SimProcess base class."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.process import SimProcess


def test_every_fires_periodically():
    sim = Simulator(seed=1)
    proc = SimProcess(sim, "p")
    ticks = []
    proc.every(1.0, lambda: ticks.append(sim.now), phase=0.5, jitter=0.0)
    sim.run(until=5.0)
    assert ticks == [0.5, 1.5, 2.5, 3.5, 4.5]


def test_every_random_phase_within_period():
    sim = Simulator(seed=2)
    proc = SimProcess(sim, "p")
    ticks = []
    proc.every(1.0, lambda: ticks.append(sim.now), jitter=0.0)
    sim.run(until=1.0)
    assert len(ticks) == 1
    assert 0.0 <= ticks[0] < 1.0


def test_every_validates_period():
    sim = Simulator()
    proc = SimProcess(sim, "p")
    with pytest.raises(ValueError):
        proc.every(0.0, lambda: None)


def test_jitter_desynchronises():
    sim = Simulator(seed=3)
    proc = SimProcess(sim, "p")
    ticks = []
    proc.every(1.0, lambda: ticks.append(sim.now), phase=0.0, jitter=0.2)
    sim.run(until=10.0)
    gaps = [b - a for a, b in zip(ticks, ticks[1:])]
    assert all(0.8 <= g <= 1.2 for g in gaps)
    assert len(set(round(g, 6) for g in gaps)) > 1  # not constant


def test_stop_cancels_timers():
    sim = Simulator(seed=1)
    proc = SimProcess(sim, "p")
    ticks = []
    proc.every(1.0, lambda: ticks.append(sim.now), phase=0.5, jitter=0.0)
    sim.run(until=2.0)
    proc.stop()
    sim.run(until=10.0)
    assert len(ticks) == 2
    assert proc.stopped


def test_stop_is_idempotent():
    sim = Simulator(seed=1)
    proc = SimProcess(sim, "p")
    proc.stop()
    proc.stop()


def test_after_one_shot():
    sim = Simulator(seed=1)
    proc = SimProcess(sim, "p")
    fired = []
    proc.after(2.0, fired.append, "x")
    sim.run(until=5.0)
    assert fired == ["x"]


def test_after_suppressed_by_stop():
    sim = Simulator(seed=1)
    proc = SimProcess(sim, "p")
    fired = []
    proc.after(2.0, fired.append, "x")
    proc.stop()
    sim.run(until=5.0)
    assert fired == []


def test_rng_is_deterministic_per_name():
    a = SimProcess(Simulator(seed=5), "p")
    b = SimProcess(Simulator(seed=5), "p")
    assert a.rng.random() == b.rng.random()
    c = SimProcess(Simulator(seed=5), "q")
    assert a.rng.random() != c.rng.random()


def test_trace_helper():
    sim = Simulator(seed=1)
    sim.trace.enabled = True
    proc = SimProcess(sim, "p")
    proc.trace("custom", value=3)
    assert sim.trace.records[0].category == "custom"
    assert sim.trace.records[0].node == "p"
