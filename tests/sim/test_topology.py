"""Tests for latency topologies."""

import random

import pytest

from repro.sim.topology import ClusteredTopology, GraphTopology, UniformTopology


@pytest.fixture
def rng():
    return random.Random(7)


def test_uniform_validation():
    with pytest.raises(ValueError):
        UniformTopology(base=-1)
    with pytest.raises(ValueError):
        UniformTopology(jitter=1.0)


def test_uniform_no_jitter_is_constant(rng):
    topo = UniformTopology(base=0.02, jitter=0.0)
    assert topo.sample("a", "b", rng) == 0.02


def test_uniform_jitter_bounds(rng):
    topo = UniformTopology(base=0.02, jitter=0.5)
    for _ in range(200):
        assert 0.01 <= topo.sample("a", "b", rng) <= 0.03


def test_clustered_intra_vs_inter(rng):
    topo = ClusteredTopology(
        {"a": 0, "b": 0, "c": 1}, intra=0.001, inter=0.1, jitter=0.0
    )
    assert topo.sample("a", "b", rng) == 0.001
    assert topo.sample("a", "c", rng) == 0.1


def test_clustered_unknown_nodes_are_singletons(rng):
    topo = ClusteredTopology({"a": 0}, intra=0.001, inter=0.1, jitter=0.0)
    # two unknown nodes are *different* singleton clusters
    assert topo.sample("x", "y", rng) == 0.1
    # a node is in its own cluster
    assert topo.sample("x", "x", rng) == 0.001


def test_graph_topology_hop_distances(rng):
    # path graph a-b-c-d as adjacency dict
    graph = {"a": ["b"], "b": ["a", "c"], "c": ["b", "d"], "d": ["c"]}
    topo = GraphTopology(graph, per_hop=0.01, jitter=0.0)
    assert topo.hops("a", "b") == 1
    assert topo.hops("a", "d") == 3
    assert topo.hops("a", "a") == 0
    assert topo.sample("a", "d", rng) == pytest.approx(0.03)


def test_graph_topology_disconnected_default(rng):
    graph = {"a": ["b"], "b": ["a"], "z": []}
    topo = GraphTopology(graph, per_hop=0.01, default=0.5, jitter=0.0)
    assert topo.hops("a", "z") is None
    assert topo.sample("a", "z", rng) == 0.5


def test_graph_topology_with_networkx(rng):
    networkx = pytest.importorskip("networkx")
    g = networkx.cycle_graph(6)
    topo = GraphTopology(g, per_hop=0.01, jitter=0.0)
    assert topo.hops(0, 3) == 3
    assert topo.sample(0, 1, rng) == pytest.approx(0.01)


def test_graph_topology_drives_network():
    from repro.sim.engine import Simulator
    from repro.sim.network import Network

    graph = {"a": ["b"], "b": ["a", "c"], "c": ["b"]}
    sim = Simulator(seed=1)
    net = Network(sim, latency=GraphTopology(graph, per_hop=0.1, jitter=0.0))
    arrivals = []
    net.attach("a", lambda m, s, t: None)
    net.attach("c", lambda m, s, t: arrivals.append(t))
    net.send("a", "c", "x")
    sim.run()
    assert arrivals == [pytest.approx(0.2)]
