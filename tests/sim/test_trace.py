"""Tests for the structured trace log."""

from repro.sim.trace import TraceLog, TraceRecord


def test_disabled_log_records_nothing():
    log = TraceLog(enabled=False)
    log.record(1.0, "cat", "node", a=1)
    assert log.records == []


def test_enabled_log_records():
    log = TraceLog(enabled=True)
    log.record(1.0, "cat", "n1", value=3)
    assert len(log.records) == 1
    rec = log.records[0]
    assert rec.time == 1.0
    assert rec.category == "cat"
    assert rec.get("value") == 3
    assert rec.get("missing", "d") == "d"


def test_category_filter():
    log = TraceLog(enabled=True, categories=frozenset({"keep"}))
    log.record(1.0, "keep", "n")
    log.record(2.0, "drop", "n")
    assert [r.category for r in log.records] == ["keep"]


def test_capacity_bound_evicts_oldest():
    log = TraceLog(enabled=True, capacity=3)
    for i in range(5):
        log.record(float(i), "c", "n", i=i)
    assert len(log.records) == 3
    assert [r.get("i") for r in log.records] == [2, 3, 4]
    assert log.dropped == 2


def test_select_filters():
    log = TraceLog(enabled=True)
    log.record(1.0, "a", "n1", v=1)
    log.record(2.0, "b", "n1", v=2)
    log.record(3.0, "a", "n2", v=3)
    assert [r.get("v") for r in log.select(category="a")] == [1, 3]
    assert [r.get("v") for r in log.select(node="n1")] == [1, 2]
    assert [r.get("v") for r in log.select(since=2.0)] == [2, 3]
    assert [r.get("v") for r in log.select(until=2.0)] == [1, 2]
    assert [r.get("v") for r in log.select(where=lambda r: r.get("v") > 2)] == [3]


def test_count():
    log = TraceLog(enabled=True)
    log.record(1.0, "a", "n")
    log.record(2.0, "a", "n")
    assert log.count("a") == 2
    assert log.count("b") == 0


def test_fingerprint_stable_and_sensitive():
    log1 = TraceLog(enabled=True)
    log2 = TraceLog(enabled=True)
    for log in (log1, log2):
        log.record(1.0, "a", "n", v=1)
    assert log1.fingerprint() == log2.fingerprint()
    log2.record(2.0, "a", "n", v=2)
    assert log1.fingerprint() != log2.fingerprint()


def test_merge_sorts_by_time():
    a = TraceLog(enabled=True)
    b = TraceLog(enabled=True)
    a.record(2.0, "x", "n")
    b.record(1.0, "y", "n")
    merged = TraceLog.merge([a, b])
    assert [r.category for r in merged.records] == ["y", "x"]


def test_record_as_dict():
    rec = TraceRecord(1.0, "c", "n", (("k", "v"),))
    assert rec.as_dict() == {"time": 1.0, "category": "c", "node": "n", "k": "v"}


def test_clear():
    log = TraceLog(enabled=True)
    log.record(1.0, "a", "n")
    log.clear()
    assert log.records == []
    assert log.dropped == 0
