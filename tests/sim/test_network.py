"""Tests for the simulated network."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import (
    BernoulliLoss,
    BurstLoss,
    ConstantLatency,
    LogNormalLatency,
    Network,
    NoLoss,
    UniformLatency,
)


@pytest.fixture
def sim():
    return Simulator(seed=1)


def collect(inbox):
    def handler(message, src, now):
        inbox.append((message, src, now))

    return handler


def test_send_and_deliver(sim):
    net = Network(sim, latency=ConstantLatency(0.5))
    inbox = []
    net.attach("a", collect([]))
    net.attach("b", collect(inbox))
    assert net.send("a", "b", "hello")
    sim.run()
    assert inbox == [("hello", "a", 0.5)]
    assert net.stats.sent == 1
    assert net.stats.delivered == 1


def test_unknown_destination_dropped(sim):
    net = Network(sim)
    net.attach("a", collect([]))
    assert not net.send("a", "ghost", "x")
    assert net.stats.no_route == 1


def test_duplicate_attach_rejected(sim):
    net = Network(sim)
    net.attach("a", collect([]))
    with pytest.raises(ValueError):
        net.attach("a", collect([]))


def test_detach_drops_in_flight(sim):
    net = Network(sim, latency=ConstantLatency(1.0))
    inbox = []
    net.attach("a", collect([]))
    net.attach("b", collect(inbox))
    net.send("a", "b", "x")
    net.detach("b")
    sim.run()
    assert inbox == []
    assert net.stats.no_route == 1


def test_bernoulli_loss_drops_messages(sim):
    net = Network(sim, latency=ConstantLatency(0.01), loss=BernoulliLoss(p=1.0))
    inbox = []
    net.attach("a", collect([]))
    net.attach("b", collect(inbox))
    assert not net.send("a", "b", "x")
    sim.run()
    assert inbox == []
    assert net.stats.lost == 1


def test_no_loss_never_drops(sim):
    model = NoLoss()
    assert not model.is_lost("a", "b", None)


def test_partition_blocks_cross_groups(sim):
    net = Network(sim, latency=ConstantLatency(0.01))
    boxes = {n: [] for n in "abc"}
    for n in "abc":
        net.attach(n, collect(boxes[n]))
    net.partition([["a"], ["b", "c"]])
    assert not net.send("a", "b", "x")
    assert net.send("b", "c", "y")
    sim.run()
    assert boxes["b"] == []
    assert len(boxes["c"]) == 1
    assert net.stats.partitioned == 1


def test_heal_restores_connectivity(sim):
    net = Network(sim, latency=ConstantLatency(0.01))
    inbox = []
    net.attach("a", collect([]))
    net.attach("b", collect(inbox))
    net.partition([["a"], ["b"]])
    net.heal()
    assert net.send("a", "b", "x")
    sim.run()
    assert len(inbox) == 1


def test_unlisted_addresses_share_default_partition(sim):
    net = Network(sim, latency=ConstantLatency(0.01))
    inbox = []
    net.attach("x", collect([]))
    net.attach("y", collect(inbox))
    net.partition([["a"]])  # x and y are both in the implicit group
    assert net.send("x", "y", "m")


def test_latency_models_sample_within_bounds(sim):
    rng = sim.rngs.stream("t")
    uni = UniformLatency(0.01, 0.05)
    for _ in range(100):
        assert 0.01 <= uni.sample("a", "b", rng) <= 0.05
    logn = LogNormalLatency(median=0.02, sigma=0.5, cap=1.0)
    for _ in range(100):
        assert 0.0 < logn.sample("a", "b", rng) <= 1.0
    assert ConstantLatency(0.3).sample("a", "b", rng) == 0.3


def test_burst_loss_correlates(sim):
    rng = sim.rngs.stream("burst")
    model = BurstLoss(p_enter=1.0, p_exit=0.0, p_bad=1.0)
    # First message flips to the bad state and every message is lost.
    results = [model.is_lost("a", "b", rng) for _ in range(20)]
    assert all(results)


def test_payload_items_accounting(sim):
    net = Network(sim, latency=ConstantLatency(0.01))
    net.attach("a", collect([]))
    net.attach("b", collect([]))
    net.send("a", "b", "x", items=17)
    assert net.stats.payload_items == 17


def test_delivery_order_follows_latency(sim):
    net = Network(sim, latency=ConstantLatency(0.1))
    inbox = []
    net.attach("a", collect([]))
    net.attach("b", collect(inbox))
    net.send("a", "b", "first")
    sim.run(until=0.05)
    net.send("a", "b", "second")
    sim.run()
    assert [m for m, _, _ in inbox] == ["first", "second"]


def test_oneway_partition_is_directed(sim):
    net = Network(sim, latency=ConstantLatency(0.01))
    a_in, b_in = [], []
    net.attach("a", collect(a_in))
    net.attach("b", collect(b_in))
    net.partition_oneway([["a"], ["b"]], blocked=[(0, 1)])
    assert net.send("a", "b", "x") is False  # blocked direction
    assert net.send("b", "a", "y") is True  # reverse flows
    sim.run()
    assert b_in == [] and len(a_in) == 1
    assert net.stats.oneway_blocked == 1
    net.heal_oneway()
    assert net.send("a", "b", "x") is True


def test_crosses_oneway_helper():
    from repro.sim.network import crosses_oneway

    oneway_of = {"a": 0, "b": 1}
    blocked = frozenset({(0, 1)})
    assert crosses_oneway(oneway_of, blocked, "a", "b") is True
    assert crosses_oneway(oneway_of, blocked, "b", "a") is False
    # unmentioned nodes share group -1, never a blocked pair here
    assert crosses_oneway(oneway_of, blocked, "a", "zzz") is False
    assert crosses_oneway({}, frozenset(), "a", "b") is False


def test_link_loss_only_touches_matrix_pairs(sim):
    net = Network(sim, latency=ConstantLatency(0.01))
    b_in, c_in = [], []
    net.attach("a", collect([]))
    net.attach("b", collect(b_in))
    net.attach("c", collect(c_in))
    net.set_link_loss({("a", "b"): 1.0})
    for _ in range(5):
        net.send("a", "b", "x")
        net.send("a", "c", "x")
    sim.run()
    assert b_in == [] and len(c_in) == 5
    assert net.stats.link_lost == 5
    net.set_link_loss(None)
    assert net.send("a", "b", "x") is True


def test_link_loss_draws_rng_only_for_matrix_pairs(sim):
    """Determinism discipline: a pair outside the matrix must not consume
    the network RNG — otherwise installing a link-loss window would shift
    every later random draw and change unrelated traffic."""
    net = Network(sim, latency=ConstantLatency(0.01))
    for addr in ("a", "b", "c"):
        net.attach(addr, collect([]))
    net.set_link_loss({("a", "b"): 0.5})
    state_before = net._rng.getstate()
    net.send("a", "c", "x")  # not in the matrix
    assert net._rng.getstate() == state_before
    net.send("a", "b", "x")  # in the matrix: exactly this consumes RNG
    assert net._rng.getstate() != state_before


def test_multicast_respects_oneway_and_link_loss(sim):
    net = Network(sim, latency=ConstantLatency(0.01))
    inboxes = {addr: [] for addr in ("a", "b", "c", "d")}
    for addr, box in inboxes.items():
        net.attach(addr, collect(box))
    net.partition_oneway([["a"], ["b"]], blocked=[(0, 1)])
    net.set_link_loss({("a", "c"): 1.0})
    delivered = net.multicast("a", ["b", "c", "d"], "x")
    sim.run()
    assert delivered == 1  # only d: b is cut one-way, c's link always loses
    assert [len(inboxes[x]) for x in ("b", "c", "d")] == [0, 0, 1]
    assert net.stats.oneway_blocked == 1
    assert net.stats.link_lost == 1
