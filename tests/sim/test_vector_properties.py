"""Property-based equivalence of the columnar vector executor.

Hypothesis draws small gossip configurations and checks that
``dispatch="vector"`` reproduces ``dispatch="batched"`` byte for byte,
on the vector mode's lanes:

* the round-synchronous regime routes onto the columnar mega lane
  (:class:`repro.sim.vector.VectorRoundExecutor`), which must replicate
  the per-node protocol exactly — same RNG draws, same buffer
  evictions, same metrics — with and without numpy;
* the chaos lane: fuzzed (loss rate, partition window, crash window)
  triples stay on the mega lane and must replay the per-node path's
  network RNG stream draw for draw, through window edges, crash-time
  column resets and round-aligned restarts;
* genuinely ineligible configurations (adaptive protocol, jittered
  rounds, non-constant latency) fall back to real per-node protocols
  and must be identical by construction.

Drop *ages* are compared as multisets: within one delivery instant the
per-node path evicts per message while the mega lane evicts once at
the end of the instant — provably the same drop set, but possibly a
different recording order.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AdaptiveConfig
from repro.experiments.harness import RunSpec, run_once
from repro.gossip.config import SystemConfig
from repro.membership.churn import ChurnScript
from repro.sim.faults import FaultScript
from repro.sim.network import BernoulliLoss, ConstantLatency, UniformLatency
from repro.workload.cluster import SimCluster

# ample dedup relative to the event rate: an undersized dedup table can
# re-admit a still-buffered event (a known artefact of the real protocol,
# not the executor), which is outside the equivalence under test
DEDUP = 2000


def _fingerprint(cluster: SimCluster) -> tuple:
    m = cluster.metrics
    records = tuple(
        sorted(
            (
                repr(eid),
                rec.broadcast_time,
                rec.receiver_count,
                rec.duplicate_deliveries,
                rec.first_delivery,
                rec.last_delivery,
            )
            for eid, rec in m.messages.items()
        )
    )
    stats = tuple(repr(cluster.nodes[i].protocol.stats) for i in sorted(cluster.nodes))
    net = cluster.network.stats
    return (
        m.admitted.total,
        m.deliveries.total,
        m.drops_overflow.total,
        m.drops_age_out.total,
        tuple(sorted(m.drop_ages)),
        records,
        stats,
        (net.sent, net.delivered, net.lost, net.partitioned,
         net.oneway_blocked, net.link_lost, net.capped, net.no_route,
         net.payload_items),
    )


# ----------------------------------------------------------------------
# lane 1: the columnar mega lane vs the real per-node protocols
# ----------------------------------------------------------------------
mega_configs = st.fixed_dictionaries(
    {
        "n_nodes": st.integers(2, 32),
        "fanout": st.integers(1, 6),
        "buffer_capacity": st.integers(3, 12),
        "max_age": st.integers(2, 6),
        "delay": st.floats(0.005, 0.9),
        "rate": st.floats(2.0, 10.0),
        "n_senders": st.integers(1, 3),
        "seed": st.integers(0, 10_000),
    }
)


def _mega_cluster(cfg: dict, dispatch: str, vector_numpy=None) -> SimCluster:
    system = SystemConfig(
        fanout=cfg["fanout"],
        gossip_period=1.0,
        buffer_capacity=cfg["buffer_capacity"],
        dedup_capacity=DEDUP,
        max_age=cfg["max_age"],
        round_jitter=0.0,
        round_phase=0.0,
    )
    cluster = SimCluster(
        n_nodes=cfg["n_nodes"],
        system=system,
        protocol="lpbcast",
        seed=cfg["seed"],
        latency=ConstantLatency(cfg["delay"]),
        dispatch=dispatch,
        vector_numpy=vector_numpy,
    )
    senders = [i * (cfg["n_nodes"] // cfg["n_senders"] or 1) % cfg["n_nodes"]
               for i in range(cfg["n_senders"])]
    cluster.add_senders(sorted(set(senders)), rate_each=cfg["rate"])
    cluster.run(until=12.0)
    return cluster


@settings(max_examples=12, deadline=None)
@given(cfg=mega_configs)
def test_mega_lane_matches_batched(cfg):
    batched = _mega_cluster(cfg, "batched")
    vector = _mega_cluster(cfg, "vector")
    assert vector.vector is not None, "config should route onto the mega lane"
    assert _fingerprint(batched) == _fingerprint(vector)


@settings(max_examples=8, deadline=None)
@given(cfg=mega_configs)
def test_mega_lane_numpy_matches_stdlib(cfg):
    auto = _mega_cluster(cfg, "vector", vector_numpy=None)
    stdlib = _mega_cluster(cfg, "vector", vector_numpy=False)
    assert auto.vector is not None and stdlib.vector is not None
    assert _fingerprint(auto) == _fingerprint(stdlib)


# ----------------------------------------------------------------------
# lane 2: the chaos lane — fuzzed loss/partition/crash triples stay on
# the mega lane and replay the per-node network RNG draw for draw
# ----------------------------------------------------------------------
chaos_configs = st.fixed_dictionaries(
    {
        "n_nodes": st.integers(6, 32),
        "fanout": st.integers(2, 5),
        "buffer_capacity": st.integers(4, 12),
        "max_age": st.integers(3, 6),
        "rate": st.floats(2.0, 8.0),
        "seed": st.integers(0, 10_000),
        # baseline Bernoulli loss on every delivery
        "loss": st.one_of(st.none(), st.floats(0.05, 0.7)),
        # (start, duration, p): a harsher loss window mid-run
        "loss_window": st.one_of(
            st.none(),
            st.tuples(
                st.floats(1.0, 5.0), st.floats(1.0, 4.0), st.floats(0.1, 0.9)
            ),
        ),
        # (start, duration): split the group in two, then heal
        "partition": st.one_of(
            st.none(), st.tuples(st.floats(1.0, 5.0), st.floats(1.0, 4.0))
        ),
        # (crash time, victims, round-aligned restart tick or None)
        "crash": st.one_of(
            st.none(),
            st.tuples(
                st.floats(1.0, 6.0),
                st.integers(1, 3),
                st.one_of(st.none(), st.integers(7, 11)),
            ),
        ),
    }
)


def _chaos_cluster(cfg: dict, dispatch: str, vector_numpy=None) -> SimCluster:
    system = SystemConfig(
        fanout=cfg["fanout"],
        gossip_period=1.0,
        buffer_capacity=cfg["buffer_capacity"],
        dedup_capacity=DEDUP,
        max_age=cfg["max_age"],
        round_jitter=0.0,
        round_phase=0.0,
    )
    n = cfg["n_nodes"]
    loss = BernoulliLoss(cfg["loss"]) if cfg["loss"] is not None else None
    cluster = SimCluster(
        n_nodes=n,
        system=system,
        protocol="lpbcast",
        seed=cfg["seed"],
        latency=ConstantLatency(0.01),
        loss=loss,
        dispatch=dispatch,
        vector_numpy=vector_numpy,
    )
    cluster.add_senders([0, n // 2], rate_each=cfg["rate"])
    script = FaultScript()
    if cfg["loss_window"] is not None:
        start, duration, p = cfg["loss_window"]
        script.loss(start, duration, p)
    if cfg["partition"] is not None:
        start, duration = cfg["partition"]
        script.partition(
            start, duration, [list(range(0, n // 2)), list(range(n // 2, n))]
        )
    if cfg["crash"] is not None:
        time, k, restart_at = cfg["crash"]
        senders = {0, n // 2}
        victims = [i for i in range(n - 1, -1, -1) if i not in senders][:k]
        script.crash(time, tuple(victims), restart_at)
    if len(script):
        cluster.apply_faults(script, baseline_loss=loss)
    cluster.run(until=12.0)
    return cluster


@settings(max_examples=12, deadline=None)
@given(cfg=chaos_configs)
def test_chaos_lane_matches_batched(cfg):
    batched = _chaos_cluster(cfg, "batched")
    vector = _chaos_cluster(cfg, "vector")
    assert vector.vector is not None, "faulted config should stay on the mega lane"
    assert _fingerprint(batched) == _fingerprint(vector)


@settings(max_examples=8, deadline=None)
@given(cfg=chaos_configs)
def test_chaos_lane_numpy_matches_stdlib(cfg):
    auto = _chaos_cluster(cfg, "vector", vector_numpy=None)
    stdlib = _chaos_cluster(cfg, "vector", vector_numpy=False)
    assert auto.vector is not None and stdlib.vector is not None
    assert _fingerprint(auto) == _fingerprint(stdlib)


# ----------------------------------------------------------------------
# lane 3: ineligible configs fall back to per-node protocols
# ----------------------------------------------------------------------
fallback_specs = st.fixed_dictionaries(
    {
        "n_nodes": st.integers(4, 64),
        "protocol": st.sampled_from(["lpbcast", "adaptive"]),
        "loss_p": st.one_of(st.none(), st.floats(0.01, 0.25)),
        "jittered": st.booleans(),
        "churn": st.booleans(),
        "uniform_latency": st.booleans(),
        "seed": st.integers(0, 10_000),
    }
)


def _fallback_spec(cfg: dict, dispatch: str) -> RunSpec:
    # at least one genuinely ineligible feature is always present (the
    # adaptive protocol, round jitter, or a non-constant latency model);
    # loss and non-sender churn are mega-eligible since vector lane v2,
    # so they ride along as extras rather than acting as the veto
    system = SystemConfig(
        buffer_capacity=8,
        dedup_capacity=DEDUP,
        max_age=5,
        round_jitter=0.05 if cfg["jittered"] else 0.0,
        round_phase=None if cfg["jittered"] else 0.0,
    )
    latency = (
        UniformLatency(0.005, 0.05)
        if cfg["uniform_latency"]
        else ConstantLatency(0.01)
    )
    if not (cfg["protocol"] != "lpbcast" or cfg["jittered"] or cfg["uniform_latency"]):
        cfg = dict(cfg, protocol="adaptive")
    churn = None
    if cfg["churn"]:
        churn = ChurnScript().crash(5.0, cfg["n_nodes"] - 1)
    return RunSpec(
        protocol=cfg["protocol"],
        system=system,
        n_nodes=cfg["n_nodes"],
        sender_ids=(0,),
        offered_load=6.0,
        duration=18.0,
        warmup=6.0,
        drain=4.0,
        seed=cfg["seed"],
        adaptive=AdaptiveConfig(age_critical=4.5),
        loss=BernoulliLoss(cfg["loss_p"]) if cfg["loss_p"] is not None else None,
        latency=latency,
        churn=churn,
        dispatch=dispatch,
    )


def _assert_results_identical(a, b):
    for field in dataclasses.fields(a):
        if field.name == "spec":
            continue
        va = getattr(a, field.name)
        vb = getattr(b, field.name)
        assert va == vb or (va != va and vb != vb), field.name


@settings(max_examples=10, deadline=None)
@given(cfg=fallback_specs)
def test_fallback_lane_matches_batched(cfg):
    batched = run_once(_fallback_spec(cfg, "batched"))
    vector = run_once(_fallback_spec(cfg, "vector"))
    _assert_results_identical(batched, vector)


def test_chaos_vector_specs_jobs_invariant():
    """Sharding faulted vector specs across workers reproduces the
    serial run bit for bit (the chaos lane keeps the sweep contract)."""
    from repro.experiments.sweep import run_specs

    def spec(seed: int) -> RunSpec:
        n = 16
        return RunSpec(
            protocol="lpbcast",
            system=SystemConfig(
                buffer_capacity=8,
                dedup_capacity=DEDUP,
                max_age=5,
                round_jitter=0.0,
                round_phase=0.0,
            ),
            n_nodes=n,
            sender_ids=(0, 8),
            offered_load=8.0,
            duration=18.0,
            warmup=6.0,
            drain=4.0,
            seed=seed,
            loss=BernoulliLoss(0.1),
            latency=ConstantLatency(0.01),
            faults=FaultScript()
            .loss(7.0, 3.0, 0.5)
            .partition(11.0, 2.0, [list(range(0, 8)), list(range(8, 16))])
            .crash(8.0, nodes=(14, 15), restart_at=12.0),
            dispatch="vector",
        )

    specs = [spec(seed) for seed in (1, 2, 3, 4)]
    serial = run_specs(specs, jobs=1)
    sharded = run_specs(specs, jobs=2)
    for a, b in zip(serial, sharded):
        assert a.spec == b.spec
        _assert_results_identical(a, b)
