"""Driver parity: every library scenario fully lowers onto worker processes.

The process-driver mirror of ``test_threaded_parity``: the coverage
audit (:func:`repro.scenarios.runner.process_coverage`) is the same
classification ``run_scenario_process`` derives its report's
``injected``/``skipped`` tuples from, so asserting it over the whole
registry pins ``skipped_count == 0`` for every shipped scenario without
paying for a dozen multi-process runs; two representative scenarios
(one fault-scripted, one churn-over-partial-views) then run end to end
over real UDP sockets to prove the lowering actually executes.
"""

import pytest

from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import (
    process_coverage,
    run_scenario_process,
    smoke_profile,
    threaded_coverage,
)


@pytest.mark.parametrize("name", scenario_names())
def test_process_driver_skips_nothing_in_the_library(name):
    spec = get_scenario(name, smoke_profile())
    injected, skipped = process_coverage(spec)
    assert skipped == (), (
        f"scenario {name!r} has conditions the process driver cannot "
        f"lower: {skipped}"
    )


def test_every_condition_kind_appears_injected_somewhere():
    # the library collectively exercises every lowering path
    seen = set()
    for name in scenario_names():
        injected, _ = process_coverage(get_scenario(name, smoke_profile()))
        seen.update(injected)
    text = " | ".join(seen)
    for marker in (
        "loss window",
        "per-link loss window",
        "partition window",
        "one-way partition window",
        "bandwidth cap window",
        "crash window",
        "churn event",
        "topology/latency",
        "baseline loss",
        "partial membership",
    ):
        assert marker in text, f"no library scenario injects {marker!r}"


def test_process_coverage_matches_threaded_condition_labels():
    # the two live drivers classify the *same* conditions; only the
    # lowering wording after ": " may differ — so a scenario can never
    # be covered on one live driver and silently uncovered on the other
    for name in scenario_names():
        spec = get_scenario(name, smoke_profile())
        t_injected, t_skipped = threaded_coverage(spec)
        p_injected, p_skipped = process_coverage(spec)
        t_labels = [item.split(": ")[0] for item in t_injected]
        p_labels = [item.split(": ")[0] for item in p_injected]
        assert t_labels == p_labels, name
        assert len(t_skipped) == len(p_skipped), name


def test_fault_scripted_scenario_runs_process_with_zero_skips():
    spec = get_scenario("partition-heal", smoke_profile()).with_horizon(8.0)
    report = run_scenario_process(spec)
    assert report.skipped_count == 0
    assert any("partition window" in item for item in report.injected)
    assert report.n_workers >= 2
    assert report.delivered_total > 0


def test_churn_scenario_runs_process_with_zero_skips():
    spec = get_scenario("rolling-churn", smoke_profile()).with_horizon(8.0)
    report = run_scenario_process(spec)
    assert report.skipped_count == 0
    assert any("churn event" in item for item in report.injected)
    assert any("partial membership" in item for item in report.injected)
    assert report.delivered_total > 0
