"""Unit tests for the expectation layer: pass/fail/skip/tolerance edges."""

import math
import pickle

import pytest

from repro.scenarios.expectations import (
    AdaptiveBeatsStatic,
    ConvergenceWithin,
    MetricValue,
    NoDroppedSenders,
    RedundancyAtMost,
    ReliabilityAtLeast,
    ScenarioResult,
    evaluate_expectations,
    needs_companion,
)


def result(**metrics) -> ScenarioResult:
    return ScenarioResult(
        scenario="fabricated",
        driver="sim",
        profile="test",
        n_nodes=16,
        metrics={name: MetricValue(value, "test") for name, value in metrics.items()},
    )


# ----------------------------------------------------------------------
# bound checks: pass, fail, and the exact-threshold edge
# ----------------------------------------------------------------------
def test_reliability_pass_fail_and_edge():
    exp = ReliabilityAtLeast(0.95)
    assert exp.check(result(atomicity=0.96)).passed
    assert not exp.check(result(atomicity=0.94)).passed
    # the bound is inclusive: exactly at the threshold passes
    assert exp.check(result(atomicity=0.95)).passed


def test_reliability_alternate_metric():
    exp = ReliabilityAtLeast(0.9, metric="avg_receiver_fraction")
    check = exp.check(result(avg_receiver_fraction=0.93, atomicity=0.1))
    assert check.passed
    assert check.metric == "avg_receiver_fraction"


def test_redundancy_and_convergence_are_upper_bounds():
    assert RedundancyAtMost(5.0).check(result(redundancy=5.0)).passed
    assert not RedundancyAtMost(5.0).check(result(redundancy=5.01)).passed
    assert ConvergenceWithin(3.0).check(result(convergence_rounds=2.9)).passed
    assert not ConvergenceWithin(3.0).check(result(convergence_rounds=3.1)).passed


def test_missing_metric_skips_instead_of_failing():
    check = ReliabilityAtLeast(0.95).check(result(redundancy=1.0))
    assert check.skipped
    assert check.passed  # a skip never turns a run red
    assert check.verdict == "SKIP"


def test_nan_metric_fails_not_skips():
    check = ReliabilityAtLeast(0.95).check(result(atomicity=math.nan))
    assert not check.passed
    assert not check.skipped
    assert "NaN" in check.detail


def test_no_dropped_senders():
    ok = NoDroppedSenders().check(result(senders_total=3.0, senders_reached=3.0))
    assert ok.passed
    bad = NoDroppedSenders().check(result(senders_total=3.0, senders_reached=2.0))
    assert not bad.passed
    missing = NoDroppedSenders().check(result(atomicity=1.0))
    assert missing.skipped


# ----------------------------------------------------------------------
# the cross-run expectation
# ----------------------------------------------------------------------
def test_adaptive_beats_static_margin_edges():
    exp = AdaptiveBeatsStatic(0.1)
    adaptive = result(atomicity=0.95)
    assert exp.check(adaptive, result(atomicity=0.80)).passed
    assert exp.check(adaptive, result(atomicity=0.85)).passed  # inclusive edge
    assert not exp.check(adaptive, result(atomicity=0.86)).passed


def test_adaptive_beats_static_skips_without_companion():
    check = AdaptiveBeatsStatic(0.1).check(result(atomicity=0.99), companion=None)
    assert check.skipped and check.passed


def test_needs_companion():
    assert needs_companion((ReliabilityAtLeast(0.9),)) is None
    assert needs_companion((ReliabilityAtLeast(0.9), AdaptiveBeatsStatic())) == "lpbcast"


def test_evaluate_expectations_preserves_order():
    exps = (ReliabilityAtLeast(0.5), RedundancyAtMost(2.0), NoDroppedSenders())
    checks = evaluate_expectations(
        exps, result(atomicity=0.9, redundancy=3.0, senders_total=2.0, senders_reached=2.0)
    )
    assert [c.passed for c in checks] == [True, False, True]
    assert [c.expectation for c in checks] == [repr(e) for e in exps]


# ----------------------------------------------------------------------
# result construction from the drivers
# ----------------------------------------------------------------------
def test_from_sim_carries_provenance():
    from repro.experiments.harness import run_once, spec_for_scenario
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.runner import smoke_profile

    prof = smoke_profile()
    run = run_once(
        spec_for_scenario(get_scenario("slow-receivers", prof), horizon=12.0)
    )
    res = ScenarioResult.from_sim(run, profile=prof.name)
    assert res.scenario == "slow-receivers"
    assert res.driver == "sim"
    assert res.source("atomicity") == "sim:delivery"
    assert res.source("redundancy") == "sim:gossip"
    assert 0.0 <= res.get("atomicity") <= 1.0
    assert res.get("senders_total") == len(prof.sender_ids())
    # picklable: shards ship these across process boundaries
    assert pickle.loads(pickle.dumps(res)) == res


def test_from_threaded_carries_skips_and_redundancy():
    from repro.scenarios.runner import ThreadedScenarioReport

    report = ThreadedScenarioReport(
        scenario="fab",
        n_nodes=8,
        wall_seconds=1.0,
        time_scale=0.1,
        offers=100,
        admitted=90,
        delivered_total=700,
        delivered_min=80,
        delivered_max=95,
        skipped=("topology/latency model: transport has real timing",),
        skipped_count=1,
        duplicates_seen=1400,
    )
    res = ScenarioResult.from_threaded(report, profile="test")
    assert res.driver == "threaded"
    assert res.get("redundancy") == pytest.approx(2.0)
    assert res.get("admit_fraction") == pytest.approx(0.9)
    assert res.skipped == report.skipped
    # wall-clock quantities must never become baseline metrics
    assert res.get("wall_seconds") is None
    # and the sim-only expectations skip rather than fail on this driver
    checks = evaluate_expectations(
        (ReliabilityAtLeast(0.95), NoDroppedSenders(), RedundancyAtMost(3.0)), res
    )
    assert [c.verdict for c in checks] == ["SKIP", "SKIP", "PASS"]
