"""Tests for the scenario registry and the shipped library."""


import pytest

from repro.experiments.profiles import QUICK
from repro.scenarios import registry
from repro.scenarios.registry import (
    get_scenario,
    list_scenarios,
    scenario,
    scenario_names,
)
from repro.scenarios.runner import smoke_profile
from repro.scenarios.spec import ScenarioSpec


def test_library_ships_at_least_eight_scenarios():
    names = scenario_names()
    assert len(names) >= 8
    for required in (
        "wan-clustered",
        "flash-crowd",
        "correlated-loss",
        "rolling-churn",
        "partition-heal",
        "slow-receivers",
        "pubsub-hotspot",
        "catastrophic-crash",
    ):
        assert required in names


def test_every_scenario_builds_at_any_scale():
    for profile in (QUICK, smoke_profile(QUICK)):
        for name in scenario_names():
            spec = get_scenario(name, profile)
            assert isinstance(spec, ScenarioSpec)
            assert spec.name == name
            assert spec.n_nodes == profile.n_nodes
            # every schedule event fires inside the run
            for fault in spec.faults.faults:
                assert fault.time < spec.duration
            for event in spec.churn.events:
                assert event.time < spec.duration
            for change in spec.resources.changes:
                assert change.time < spec.duration


def test_summaries_are_listed():
    listed = dict(list_scenarios())
    for name in scenario_names():
        assert listed[name], f"{name} has no summary"


def test_unknown_scenario_names_the_choices():
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("no-such-thing")


def test_builders_are_deterministic():
    assert get_scenario("flash-crowd", QUICK) == get_scenario("flash-crowd", QUICK)


def test_registration_guards(monkeypatch):
    monkeypatch.setattr(registry, "_REGISTRY", dict(registry._REGISTRY))

    @scenario("test-duplicate", summary="x")
    def build(profile):
        return get_scenario("flash-crowd", profile)

    with pytest.raises(ValueError, match="already registered"):
        scenario("test-duplicate")(build)
    # a builder whose spec name disagrees with its registered name is a bug
    with pytest.raises(ValueError, match="named"):
        get_scenario("test-duplicate", QUICK)


def test_smoke_profile_shrinks():
    smoke = smoke_profile(QUICK)
    assert smoke.n_nodes <= QUICK.n_nodes
    assert smoke.duration < QUICK.duration
    assert smoke.name.endswith("-smoke")
    # profile-fraction event times still fire inside the smoke horizon
    spec = get_scenario("correlated-loss", smoke)
    burst = spec.faults.faults[0]
    assert burst.time + burst.duration < spec.duration
