"""Tests for the declarative ScenarioSpec value."""

import pickle

import pytest

from repro.gossip.config import SystemConfig
from repro.scenarios.spec import (
    FixedLinks,
    HeavyTailLinks,
    LanLinks,
    ScenarioSpec,
    SenderSpec,
    WanClusters,
)
from repro.sim.network import ConstantLatency, LogNormalLatency, UniformLatency
from repro.sim.topology import ClusteredTopology


def tiny(**kw):
    params = dict(
        name="t",
        n_nodes=10,
        system=SystemConfig(buffer_capacity=20, dedup_capacity=200),
        senders=(SenderSpec(0, 4.0), SenderSpec(5, 4.0)),
        duration=40.0,
        warmup=10.0,
        drain=5.0,
    )
    params.update(kw)
    return ScenarioSpec(**params)


def test_validation():
    with pytest.raises(ValueError):
        tiny(name="")
    with pytest.raises(ValueError):
        tiny(n_nodes=1)
    with pytest.raises(ValueError):
        tiny(senders=())
    with pytest.raises(ValueError):
        tiny(warmup=50.0)
    with pytest.raises(ValueError):
        tiny(drain=40.0)
    with pytest.raises(ValueError):
        tiny(membership="gossip")
    # a sender outside the initial group is a spec bug, not a run bug
    with pytest.raises(ValueError):
        tiny(senders=(SenderSpec(99, 1.0),))


def test_sender_spec_validation_and_arrivals():
    with pytest.raises(ValueError):
        SenderSpec(0, 0.0)
    with pytest.raises(ValueError):
        SenderSpec(0, 1.0, arrivals="bursty")
    with pytest.raises(ValueError):
        SenderSpec(0, 1.0, start=5.0, stop=5.0)
    assert SenderSpec(0, 2.0).build_arrivals().rate == 2.0
    assert SenderSpec(0, 2.0, arrivals="poisson").build_arrivals().rate == 2.0
    onoff = SenderSpec(0, 2.0, arrivals="onoff", on=3.0, off=1.0).build_arrivals()
    assert (onoff.on, onoff.off) == (3.0, 1.0)


def test_derived_views():
    spec = tiny()
    assert spec.sender_ids == (0, 5)
    assert spec.offered_load == 8.0
    assert spec.window == (10.0, 35.0)


def test_with_horizon_scales_window():
    spec = tiny().with_horizon(10.0)
    assert spec.duration == 10.0
    assert spec.warmup == pytest.approx(2.5)
    assert spec.drain == pytest.approx(1.25)
    with pytest.raises(ValueError):
        tiny().with_horizon(0.0)


def test_with_horizon_scales_the_whole_timeline():
    """A shrunk scenario must still *fire* its condition: every schedule
    (faults, churn, resources, sender intervals) scales with the run."""
    from repro.scenarios.conditions import (
        BufferSqueeze,
        CorrelatedLoss,
        CrashGroup,
        RollingChurn,
    )

    spec = tiny(
        senders=(SenderSpec(0, 4.0, arrivals="onoff", on=8.0, off=4.0,
                            start=2.0, stop=38.0),)
    ).stressed(
        CorrelatedLoss(time=20.0, duration=8.0, p=0.5),
        CrashGroup(time=24.0, nodes=(9,), restart_after=8.0),
        RollingChurn(start=10.0, interval=4.0, nodes=(8,), rejoin_after=6.0),
        BufferSqueeze(time=16.0, capacity=5, nodes=(7,)),
    )
    half = spec.with_horizon(20.0)
    loss, crash = half.faults.faults
    assert (loss.time, loss.duration, loss.p) == (10.0, 4.0, 0.5)
    assert (crash.time, crash.restart_at) == (12.0, 16.0)
    assert [(e.time, e.action) for e in half.churn.sorted_events()] == [
        (5.0, "leave"),
        (8.0, "join"),
    ]
    assert half.resources.changes[0].time == 8.0
    (sender,) = half.senders
    assert (sender.start, sender.stop) == (1.0, 19.0)
    assert (sender.on, sender.off) == (4.0, 2.0)
    assert sender.rate == 4.0  # the load regime is the scenario's identity


def test_replace_and_with_protocol():
    spec = tiny()
    assert spec.with_protocol("lpbcast").protocol == "lpbcast"
    assert spec.replace(seed=9).seed == 9
    # the original is untouched (frozen value semantics)
    assert spec.protocol == "adaptive"


def test_topologies_build_latency_models():
    assert isinstance(LanLinks().build(10), UniformLatency)
    assert isinstance(FixedLinks(0.02).build(10), ConstantLatency)
    assert isinstance(HeavyTailLinks().build(10), LogNormalLatency)
    wan = WanClusters(n_clusters=3).build(9)
    assert isinstance(wan, ClusteredTopology)
    # contiguous blocks of three nodes per site
    assert wan.cluster_of[0] == wan.cluster_of[2] == 0
    assert wan.cluster_of[3] == 1
    assert wan.cluster_of[8] == 2
    with pytest.raises(ValueError):
        WanClusters(n_clusters=1)


def test_build_latency_passthrough():
    assert tiny().build_latency() is None
    spec = tiny(topology=FixedLinks(0.03))
    assert isinstance(spec.build_latency(), ConstantLatency)
    model = ConstantLatency(0.05)
    assert tiny(topology=model).build_latency() is model


def test_pickle_round_trip():
    spec = tiny(topology=WanClusters())
    assert pickle.loads(pickle.dumps(spec)) == spec
