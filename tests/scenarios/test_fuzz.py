"""Tests for the seeded scenario fuzzer."""

import dataclasses
import pickle

import pytest

from repro.experiments import profiles
from repro.scenarios.conditions import OneWayPartition, Partition
from repro.scenarios.fuzz import ScenarioFuzzer, run_fuzz
from repro.sim.faults import CrashWindow


@pytest.fixture
def tiny_profile():
    """A small, short frame so fuzz runs answer in well under a second."""
    return dataclasses.replace(
        profiles.QUICK,
        name="tiny-fuzz",
        n_nodes=12,
        n_senders=3,
        duration=24.0,
        warmup=8.0,
        drain=4.0,
        offered_load=20.0,
    )


def test_cases_are_deterministic_in_seed_and_index(tiny_profile):
    a = ScenarioFuzzer(7, profile=tiny_profile)
    b = ScenarioFuzzer(7, profile=tiny_profile)
    for i in range(20):
        assert a.case(i).spec == b.case(i).spec
        assert a.case(i).conditions == b.case(i).conditions
    # a different seed gives a different composition stream
    c = ScenarioFuzzer(8, profile=tiny_profile)
    assert any(a.case(i).spec != c.case(i).spec for i in range(20))


def test_case_depends_only_on_its_own_index(tiny_profile):
    # --only N must reproduce case N without generating 0..N-1
    direct = ScenarioFuzzer(7, profile=tiny_profile).case(17)
    fuzzer = ScenarioFuzzer(7, profile=tiny_profile)
    for i in range(17):
        fuzzer.case(i)
    assert fuzzer.case(17).spec == direct.spec


def test_every_generated_spec_is_valid_and_picklable(tiny_profile):
    # ScenarioSpec.__post_init__ validates (incl. faults.validate());
    # surviving construction IS the validity property
    fuzzer = ScenarioFuzzer(123, profile=tiny_profile)
    for case in fuzzer.cases(40):
        assert case.spec.n_nodes == tiny_profile.n_nodes
        pickle.loads(pickle.dumps(case.spec))
        case.spec.faults.validate()


def test_property_expectations_follow_the_recipe(tiny_profile):
    fuzzer = ScenarioFuzzer(99, profile=tiny_profile)
    saw_no_dropped, saw_without = False, False
    for case in fuzzer.cases(40):
        names = [type(e).__name__ for e in case.spec.expectations]
        # the reliability floor and redundancy ceiling are unconditional
        assert "ReliabilityAtLeast" in names
        assert "RedundancyAtMost" in names
        crashy = any(isinstance(f, CrashWindow) for f in case.spec.faults.faults)
        churny = len(case.spec.churn) > 0
        if crashy or churny:
            assert "NoDroppedSenders" not in names
            saw_without = True
        else:
            assert "NoDroppedSenders" in names
            saw_no_dropped = True
        cut = any(
            isinstance(c, (Partition, OneWayPartition)) for c in case.conditions
        )
        if "ConvergenceWithin" in names:
            assert not (cut or crashy or churny)
    assert saw_no_dropped and saw_without  # both branches exercised


def test_more_injected_adversity_lowers_the_floor(tiny_profile):
    # the tuneable-robustness property: the reliability floor is a
    # monotone function of the injected loss exposure
    fuzzer = ScenarioFuzzer(5, profile=tiny_profile)
    cases = fuzzer.cases(40)
    floors = {}
    for case in cases:
        rel = next(
            e for e in case.spec.expectations
            if type(e).__name__ == "ReliabilityAtLeast"
        )
        floors[case.index] = (case.loss_exposure, rel.threshold)
    pairs = sorted(floors.values())
    for (e1, f1), (e2, f2) in zip(pairs, pairs[1:]):
        assert e1 <= e2
        assert f1 >= f2 - 1e-9  # higher exposure never raises the floor


def test_repro_command_carries_seed_index_and_driver(tiny_profile):
    case = ScenarioFuzzer(42, profile=tiny_profile).case(3)
    cmd = case.repro_command("threaded", "quick")
    assert "fuzz-scenarios" in cmd
    assert "--seed 42" in cmd and "--only 3" in cmd
    assert "--driver threaded" in cmd and "--profile quick" in cmd
    assert "--profile" not in case.repro_command("sim", None)


def test_run_fuzz_sim_batch_and_indices(tiny_profile):
    report = run_fuzz(7, count=4, profile=tiny_profile, driver="sim", jobs=1)
    assert report.count == 4
    assert len(report.outcomes) == 4
    assert all(o.driver == "sim" for o in report.outcomes)
    # the --only path: exactly the named indices, same verdicts
    only = run_fuzz(7, count=4, profile=tiny_profile, driver="sim", indices=[2])
    assert [o.index for o in only.outcomes] == [2]
    assert only.outcomes[0].passed == report.outcomes[2].passed


def test_run_fuzz_rejects_unknown_driver(tiny_profile):
    with pytest.raises(ValueError, match="driver"):
        run_fuzz(7, count=1, profile=tiny_profile, driver="udp")


def test_fuzzed_asymmetric_spec_is_dispatch_and_jobs_invariant(tiny_profile):
    """The acceptance property: a fuzzed spec carrying the new asymmetric
    faults produces byte-identical results across every sim dispatch mode
    and any job count."""
    from repro.experiments.sweep import run_spec_checks

    fuzzer = ScenarioFuzzer(7, profile=tiny_profile)
    case = next(
        c
        for c in (fuzzer.case(i) for i in range(60))
        if any(type(k).__name__ in ("OneWayPartition", "LossyLinks")
               for k in c.conditions)
    )
    reference = None
    for dispatch in ("batched", "timers", "vector"):
        for jobs in (1, 2):
            check = run_spec_checks(
                [case.spec], "t", jobs=jobs, dispatch=dispatch
            )[0]
            if reference is None:
                reference = check.result.metrics
            assert check.result.metrics == reference, (dispatch, jobs)


def test_threaded_fuzz_outcome_reports_parity(tiny_profile):
    report = run_fuzz(
        7, count=1, profile=tiny_profile, driver="threaded", horizon=4.0
    )
    (outcome,) = report.outcomes
    assert outcome.driver == "threaded"
    assert "PARITY" not in outcome.summary  # everything lowered
