"""Tests for scenario execution on both drivers."""

import pytest

from repro.gossip.config import SystemConfig
from repro.scenarios.conditions import BufferSqueeze, CorrelatedLoss
from repro.scenarios.runner import (
    ThreadedScenarioReport,
    run_scenario,
    run_scenario_threaded,
    smoke_profile,
)
from repro.scenarios.spec import ScenarioSpec, SenderSpec
from repro.workload.cluster import SimCluster


def tiny_spec(**kw):
    params = dict(
        name="tiny",
        n_nodes=8,
        system=SystemConfig(buffer_capacity=30, dedup_capacity=300),
        senders=(SenderSpec(0, 5.0), SenderSpec(4, 5.0)),
        duration=30.0,
        warmup=10.0,
        drain=5.0,
        seed=5,
    )
    params.update(kw)
    return ScenarioSpec(**params)


def test_run_scenario_sim_by_name():
    result = run_scenario("flash-crowd", profile=smoke_profile(), horizon=15.0)
    assert result.spec.scenario == "flash-crowd"
    assert result.delivery.messages > 0


def test_run_scenario_rejects_unknown_driver():
    with pytest.raises(ValueError, match="unknown driver"):
        run_scenario(tiny_spec(), driver="quantum")


def test_sim_cluster_from_scenario_applies_schedules():
    spec = tiny_spec().stressed(
        CorrelatedLoss(time=5.0, duration=3.0, p=1.0),
        BufferSqueeze(time=0.0, capacity=7, nodes=(7,)),
    )
    cluster = SimCluster.from_scenario(spec)
    cluster.run(until=1.0)
    # the t=0 squeeze has been applied...
    assert cluster.protocol_of(7).buffer.capacity == 7
    # ...and the loss window engages on schedule
    cluster.run(until=6.0)
    assert type(cluster.network._loss).__name__ == "BernoulliLoss"
    cluster.run(until=10.0)
    assert type(cluster.network._loss).__name__ == "NoLoss"


def test_threaded_run_delivers_and_reports():
    spec = tiny_spec()
    report = run_scenario_threaded(spec, wall_seconds=1.2)
    assert isinstance(report, ThreadedScenarioReport)
    assert report.scenario == "tiny"
    assert report.offers > 0
    assert report.admitted > 0
    assert report.delivered_total > 0
    assert report.skipped == ()


def test_threaded_run_injects_former_sim_only_conditions():
    # loss windows and partial membership used to be reported as skipped;
    # the chaos transport and live views now lower both
    spec = tiny_spec(membership="partial", view_size=4).stressed(
        CorrelatedLoss(time=5.0, duration=3.0, p=0.5)
    )
    report = run_scenario_threaded(spec, wall_seconds=0.4)
    assert report.skipped == () and report.skipped_count == 0
    assert any("loss window" in item for item in report.injected)
    assert any("partial membership" in item for item in report.injected)
    # the count is surfaced structurally, not by string-matching reasons
    assert report.injected_count == len(report.injected) == 2


def test_threaded_path_rejects_overlapping_windows_like_sim():
    # specs validate at construction, but FaultScript is mutable: the
    # threaded lowering must re-validate just as FaultScript.apply does
    from repro.sim.faults import OverlappingFaultsError

    spec = tiny_spec().stressed(CorrelatedLoss(time=5.0, duration=10.0, p=0.5))
    spec.faults.loss(8.0, 2.0, 0.9)  # sneak in an overlap post-validation
    with pytest.raises(OverlappingFaultsError):
        run_scenario_threaded(spec, wall_seconds=0.2)


def test_threaded_run_still_reports_unknown_conditions_as_skipped():
    from dataclasses import dataclass

    from repro.sim.faults import FaultScript

    @dataclass(frozen=True)
    class AlienWindow:  # a fault kind no driver lowering knows about
        time: float = 1.0
        duration: float = 1.0

    spec = tiny_spec().replace(faults=FaultScript([AlienWindow()]))
    report = run_scenario_threaded(spec, wall_seconds=0.3)
    assert report.skipped_count == 1
    assert "unrecognised fault" in report.skipped[0]


def test_threaded_full_coverage_reports_zero_skips():
    report = run_scenario_threaded(tiny_spec(), wall_seconds=0.3)
    assert report.skipped_count == 0


def test_threaded_run_applies_timed_capacity_changes():
    # squeeze early enough (in scaled time) that the run observes it
    spec = tiny_spec().stressed(BufferSqueeze(time=2.0, capacity=9, nodes=(7,)))
    scale = 0.1 / spec.system.gossip_period
    report = run_scenario_threaded(spec, wall_seconds=max(1.0, 2.0 * scale + 0.8))
    assert report.offers > 0


def test_run_scenario_threaded_by_name():
    report = run_scenario(
        "slow-receivers", driver="threaded", profile=smoke_profile(), horizon=6.0
    )
    assert report.scenario == "slow-receivers"
    assert report.delivered_total > 0
