"""Baseline capture/compare: exactness, tolerance bands, round trips."""

import json
import math

import pytest

from repro.scenarios.baselines import (
    MetricDrift,
    baseline_key,
    baseline_path,
    compare_to_baseline,
    load_baseline,
    render_report,
    update_baseline,
)
from repro.scenarios.expectations import (
    ExpectationCheck,
    MetricValue,
    ScenarioResult,
)


# kinds for the fabricated metrics (mirrors what from_sim/from_threaded
# declare for the real ones); anything else defaults to "ratio"
KINDS = {
    "offers": "count",
    "delivered_total": "count",
    "delivered_min": "count",
    "admit_fraction": "fraction",
    "atomicity": "fraction",
}


def result(scenario="fab", driver="sim", profile="test", **metrics) -> ScenarioResult:
    return ScenarioResult(
        scenario=scenario,
        driver=driver,
        profile=profile,
        n_nodes=8,
        metrics={
            name: MetricValue(value, "test", KINDS.get(name, "ratio"))
            for name, value in metrics.items()
        },
    )


def test_update_then_compare_is_clean(tmp_path):
    res = result(atomicity=0.987654321012345, redundancy=5.25, drop_age=math.nan)
    path, changed = update_baseline(res, tmp_path)
    assert changed and path == baseline_path("fab", tmp_path)
    diff = compare_to_baseline(res, tmp_path)
    assert diff.clean
    assert diff.compared == 3  # NaN == NaN through the null round trip
    # identical re-capture leaves the file untouched (clean git tree)
    _, changed_again = update_baseline(res, tmp_path)
    assert not changed_again


def test_exact_compare_catches_tiny_drift(tmp_path):
    update_baseline(result(atomicity=0.95), tmp_path)
    drifted = result(atomicity=0.95 + 1e-12)
    diff = compare_to_baseline(drifted, tmp_path)
    assert not diff.clean
    assert diff.drifts[0].metric == "atomicity"


def test_missing_baseline_is_reported(tmp_path):
    diff = compare_to_baseline(result(atomicity=1.0), tmp_path)
    assert diff.missing and not diff.clean
    assert "--update-baselines" in diff.describe()


def test_entries_key_by_profile_and_driver(tmp_path):
    update_baseline(result(profile="smoke", atomicity=1.0), tmp_path)
    update_baseline(result(profile="paper", atomicity=0.9), tmp_path)
    update_baseline(result(profile="smoke", driver="threaded", offers=100.0), tmp_path)
    doc = load_baseline("fab", tmp_path)
    assert set(doc["entries"]) == {"smoke/sim", "paper/sim", "smoke/threaded"}
    # a result at one scale is never judged against another scale's entry
    assert compare_to_baseline(result(profile="quick", atomicity=1.0), tmp_path).missing


def test_horizon_is_part_of_the_key(tmp_path):
    res = result(atomicity=1.0)
    update_baseline(res, tmp_path, horizon=12.0)
    assert baseline_key(res, 12.0) == "test/sim@12"
    assert compare_to_baseline(res, tmp_path, horizon=12.0).clean
    assert compare_to_baseline(res, tmp_path).missing


# ----------------------------------------------------------------------
# tolerance banding (the threaded driver's comparison mode)
# ----------------------------------------------------------------------
def test_tolerance_band_edges(tmp_path):
    update_baseline(result(driver="threaded", delivered_total=1000.0), tmp_path)

    def diff_at(value):
        return compare_to_baseline(
            result(driver="threaded", delivered_total=value), tmp_path
        )

    # default threaded tolerance is 0.5 relative + 5 absolute slack
    assert diff_at(1000.0).clean
    assert diff_at(1400.0).clean
    assert not diff_at(3500.0).clean
    assert not diff_at(100.0).clean
    assert diff_at(1400.0).tolerance == 0.5


def test_fraction_metrics_use_an_absolute_band(tmp_path):
    # a relative band + count slack would make drift on [0, 1] metrics
    # undetectable; bounded metrics compare inside |delta| <= tol/2
    update_baseline(result(driver="threaded", admit_fraction=0.95), tmp_path)
    near = compare_to_baseline(
        result(driver="threaded", admit_fraction=0.75), tmp_path
    )
    assert near.clean  # |0.20| <= 0.25
    collapsed = compare_to_baseline(
        result(driver="threaded", admit_fraction=0.50), tmp_path
    )
    assert not collapsed.clean  # |0.45| > 0.25: an admission collapse is caught


def test_ratio_metrics_above_one_get_no_slack(tmp_path):
    update_baseline(result(driver="threaded", redundancy=3.0), tmp_path)
    assert compare_to_baseline(result(driver="threaded", redundancy=4.0), tmp_path).clean
    assert not compare_to_baseline(
        result(driver="threaded", redundancy=7.9), tmp_path
    ).clean
    # the count slack must not swallow a small-magnitude ratio regression
    update_baseline(result(scenario="r2", driver="threaded", redundancy=1.5), tmp_path)
    assert not compare_to_baseline(
        result(scenario="r2", driver="threaded", redundancy=4.9), tmp_path
    ).clean


def test_absolute_slack_covers_near_zero_counts(tmp_path):
    update_baseline(result(driver="threaded", delivered_min=0.0), tmp_path)
    assert compare_to_baseline(
        result(driver="threaded", delivered_min=3.0), tmp_path
    ).clean
    assert not compare_to_baseline(
        result(driver="threaded", delivered_min=20.0), tmp_path
    ).clean
    # 1 -> 0 is the most common near-zero wobble and must not flap
    update_baseline(result(scenario="c2", driver="threaded", delivered_min=1.0), tmp_path)
    assert compare_to_baseline(
        result(scenario="c2", driver="threaded", delivered_min=0.0), tmp_path
    ).clean
    # ...while the same 1 -> 0 move on a *fraction* is a total collapse
    update_baseline(result(scenario="f2", driver="threaded", admit_fraction=1.0), tmp_path)
    assert not compare_to_baseline(
        result(scenario="f2", driver="threaded", admit_fraction=0.0), tmp_path
    ).clean


def test_integer_json_values_compare_without_crashing(tmp_path):
    # hand-edited snapshots naturally write counts as JSON ints
    update_baseline(result(driver="threaded", delivered_total=1000.0), tmp_path)
    path = baseline_path("fab", tmp_path)
    doc = json.loads(path.read_text())
    doc["entries"]["test/threaded"]["metrics"]["delivered_total"]["value"] = 1000
    path.write_text(json.dumps(doc))
    assert compare_to_baseline(
        result(driver="threaded", delivered_total=1100.0), tmp_path
    ).clean


def test_explicit_tolerance_overrides_driver_default(tmp_path):
    update_baseline(result(atomicity=1.0), tmp_path)
    near = result(atomicity=0.99)
    assert not compare_to_baseline(near, tmp_path).clean  # sim default: exact
    assert compare_to_baseline(near, tmp_path, tolerance=0.05).clean


def test_metric_set_changes_are_drift(tmp_path):
    update_baseline(result(atomicity=1.0, redundancy=2.0), tmp_path)
    gone = compare_to_baseline(result(atomicity=1.0), tmp_path)
    assert [d.metric for d in gone.drifts] == ["redundancy"]
    assert "absent from current run" in gone.drifts[0].describe()
    added = compare_to_baseline(
        result(atomicity=1.0, redundancy=2.0, brand_new=7.0), tmp_path
    )
    assert [d.metric for d in added.drifts] == ["brand_new"]
    # absence reads as a schema change, not as a recorded NaN
    assert "not in baseline" in added.drifts[0].describe()
    assert "NaN ->" not in added.drifts[0].describe()


def test_schema_mismatch_demands_recapture(tmp_path):
    update_baseline(result(atomicity=1.0), tmp_path)
    path = baseline_path("fab", tmp_path)
    doc = json.loads(path.read_text())
    doc["schema"] = 99
    path.write_text(json.dumps(doc))
    with pytest.raises(ValueError, match="re-capture"):
        load_baseline("fab", tmp_path)
    # the compare path reports it as a gate failure, not a traceback
    diff = compare_to_baseline(result(atomicity=1.0), tmp_path)
    assert not diff.clean and diff.missing
    assert "re-capture" in diff.describe()
    # ...and the recommended remedy must actually work: re-capture
    # replaces the stale-schema file instead of re-raising
    _, changed = update_baseline(result(atomicity=1.0), tmp_path)
    assert changed
    assert load_baseline("fab", tmp_path)["schema"] == 1
    assert compare_to_baseline(result(atomicity=1.0), tmp_path).clean


def test_render_report_counts_verdicts(tmp_path):
    update_baseline(result(atomicity=1.0), tmp_path)
    diff = compare_to_baseline(result(atomicity=0.5), tmp_path)
    checks = (
        ExpectationCheck("ReliabilityAtLeast(0.95)", "atomicity", passed=False,
                         observed=0.5, bound=0.95, detail="atomicity=0.5 >= 0.95"),
        ExpectationCheck("RedundancyAtMost(5)", "redundancy", passed=True,
                         skipped=True, detail="driver does not report it"),
    )
    text = render_report("Report", [("fab", checks, diff)])
    assert "FAIL ReliabilityAtLeast(0.95)" in text
    assert "SKIP RedundancyAtMost(5)" in text
    assert "DRIFT" in text
    assert "baseline 0.5" not in text  # drift line shows baseline 1 -> current 0.5
    assert "expectations 0 pass, 1 fail, 1 skipped" in text
    assert "0 clean, 1 drifted, 0 missing" in text


def test_drift_describe_handles_nan():
    drift = MetricDrift(metric="m", baseline=None, current=2.0)
    assert "NaN" in drift.describe()
