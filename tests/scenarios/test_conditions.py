"""Tests for composable stress conditions."""

import pytest

from repro.gossip.config import SystemConfig
from repro.scenarios.conditions import (
    BandwidthCap,
    BufferSqueeze,
    CorrelatedLoss,
    CrashGroup,
    LoadSpike,
    Partition,
    RollingChurn,
    SlowReceivers,
)
from repro.scenarios.spec import ScenarioSpec, SenderSpec
from repro.sim.faults import (
    BandwidthCapWindow,
    CrashWindow,
    LossWindow,
    OverlappingFaultsError,
    PartitionWindow,
)
from repro.workload.dynamics import CapacityChange, OfferedRateChange


def base(**kw):
    params = dict(
        name="b",
        n_nodes=10,
        system=SystemConfig(buffer_capacity=20, dedup_capacity=200),
        senders=(SenderSpec(0, 4.0), SenderSpec(5, 6.0)),
        duration=100.0,
        warmup=20.0,
        drain=10.0,
    )
    params.update(kw)
    return ScenarioSpec(**params)


def test_correlated_loss_folds_a_window():
    spec = base().stressed(CorrelatedLoss(time=10.0, duration=5.0, p=0.5))
    (window,) = spec.faults.faults
    assert isinstance(window, LossWindow)
    assert (window.time, window.duration, window.p) == (10.0, 5.0, 0.5)


def test_conditions_do_not_mutate_the_base():
    spec = base()
    spec.stressed(
        CorrelatedLoss(time=10.0, duration=5.0, p=0.5),
        BufferSqueeze(time=20.0, capacity=5, fraction=0.2),
        RollingChurn(start=30.0, interval=5.0, fraction=0.2),
    )
    assert len(spec.faults) == 0
    assert len(spec.resources) == 0
    assert len(spec.churn) == 0


def test_partition_splits_contiguously():
    spec = base().stressed(Partition(time=10.0, duration=5.0, n_groups=2))
    (window,) = spec.faults.faults
    assert isinstance(window, PartitionWindow)
    assert window.groups == (tuple(range(5)), tuple(range(5, 10)))


def test_bandwidth_cap_folds_a_window():
    spec = base().stressed(BandwidthCap(time=10.0, duration=5.0, rate=200.0))
    (window,) = spec.faults.faults
    assert isinstance(window, BandwidthCapWindow)
    assert window.rate == 200.0


def test_crash_group_resolves_fraction_and_protects_senders():
    spec = base().stressed(CrashGroup(time=10.0, fraction=0.2, restart_after=5.0))
    (window,) = spec.faults.faults
    assert isinstance(window, CrashWindow)
    assert window.nodes == (8, 9)
    assert window.restart_at == 15.0
    with pytest.raises(ValueError, match="sender"):
        base().stressed(CrashGroup(time=10.0, nodes=(5,)))


def test_rolling_churn_schedules_cadence():
    spec = base().stressed(
        RollingChurn(start=10.0, interval=2.0, nodes=(8, 9), rejoin_after=3.0,
                     action="crash")
    )
    events = spec.churn.sorted_events()
    assert [(e.time, e.action, e.node) for e in events] == [
        (10.0, "crash", 8),
        (12.0, "crash", 9),
        (13.0, "join", 8),
        (15.0, "join", 9),
    ]


def test_buffer_squeeze_and_slow_receivers():
    spec = base().stressed(
        SlowReceivers(capacity=5, nodes=(9,)),
        BufferSqueeze(time=40.0, capacity=10, nodes=(8,), restore_at=60.0,
                      restore_to=15),
    )
    changes = spec.resources.changes
    assert isinstance(changes[0], CapacityChange)
    assert (changes[0].time, changes[0].nodes, changes[0].capacity) == (0.0, (9,), 5)
    assert [(c.time, c.capacity) for c in changes[1:]] == [(40.0, 10), (60.0, 15)]


def test_load_spike_scales_every_sender():
    spec = base().stressed(LoadSpike(time=40.0, duration=10.0, factor=3.0))
    changes = [c for c in spec.resources.changes if isinstance(c, OfferedRateChange)]
    by_node = {(c.nodes[0], c.time): c.rate for c in changes}
    assert by_node[(0, 40.0)] == 12.0 and by_node[(0, 50.0)] == 4.0
    assert by_node[(5, 40.0)] == 18.0 and by_node[(5, 50.0)] == 6.0


def test_overlapping_same_kind_windows_are_rejected():
    stressed = base().stressed(CorrelatedLoss(time=10.0, duration=20.0, p=0.5))
    with pytest.raises(OverlappingFaultsError, match="overlapping LossWindow"):
        stressed.stressed(CorrelatedLoss(time=15.0, duration=5.0, p=0.9))
    # different kinds may overlap freely
    stressed.stressed(Partition(time=12.0, duration=5.0))


def test_fraction_validation():
    with pytest.raises(ValueError):
        base().stressed(SlowReceivers(capacity=5, fraction=1.5))
    with pytest.raises(ValueError):
        base().stressed(SlowReceivers(capacity=5))


def test_fraction_resolution_skips_senders_in_the_tail():
    # senders at 0 and 9: a naive "last 30% of ids" would squeeze sender
    # 9's buffer; resolution must take the highest *non-sender* ids
    spec = base(senders=(SenderSpec(0, 4.0), SenderSpec(9, 6.0))).stressed(
        SlowReceivers(capacity=5, fraction=0.3)
    )
    (change,) = spec.resources.changes
    assert change.nodes == (6, 7, 8)


def test_fraction_larger_than_non_sender_pool_is_rejected():
    spec = base(
        n_nodes=3, senders=(SenderSpec(0, 4.0), SenderSpec(1, 6.0))
    )
    with pytest.raises(ValueError, match="non-sender"):
        spec.stressed(SlowReceivers(capacity=5, fraction=1.0))


def test_rolling_churn_protects_senders_like_crash_group():
    with pytest.raises(ValueError, match="sender"):
        base().stressed(RollingChurn(start=10.0, interval=2.0, nodes=(5, 8)))
    # fraction resolution never lands on a sender in the first place
    spec = base(senders=(SenderSpec(0, 4.0), SenderSpec(9, 6.0))).stressed(
        RollingChurn(start=10.0, interval=2.0, fraction=0.2)
    )
    assert {e.node for e in spec.churn.events} == {7, 8}


def test_oneway_partition_folds_a_directed_window():
    from repro.scenarios.conditions import OneWayPartition
    from repro.sim.faults import AsymmetricPartitionWindow

    spec = base().stressed(OneWayPartition(time=30.0, duration=20.0, blocked=((1, 0),)))
    (window,) = spec.faults.faults
    assert isinstance(window, AsymmetricPartitionWindow)
    assert window.blocked == ((1, 0),)
    # contiguous halves, like Partition
    assert window.groups == ((0, 1, 2, 3, 4), (5, 6, 7, 8, 9))


def test_lossy_links_explicit_pairs():
    from repro.scenarios.conditions import LossyLinks
    from repro.sim.faults import LinkLossWindow

    spec = base().stressed(
        LossyLinks(time=30.0, duration=20.0, p=0.5, pairs=((1, 2), (2, 1)))
    )
    (window,) = spec.faults.faults
    assert isinstance(window, LinkLossWindow)
    assert window.matrix == {(1, 2): 0.5, (2, 1): 0.5}


def test_lossy_links_fraction_marks_flaky_non_senders():
    from repro.scenarios.conditions import LossyLinks

    spec = base().stressed(LossyLinks(time=30.0, duration=20.0, p=0.4, fraction=0.2))
    (window,) = spec.faults.faults
    # 20% of 10 nodes = 2 flaky nodes: the highest non-sender ids (9, 8);
    # every directed link touching one of them, both directions
    flaky = {9, 8}
    assert set() == {
        pair for pair in window.matrix if pair[0] not in flaky and pair[1] not in flaky
    }
    assert all(p == 0.4 for p in window.matrix.values())
    assert ((9, 0) in window.matrix) and ((0, 9) in window.matrix)


def test_new_conditions_compose_with_symmetric_knobs():
    from repro.scenarios.conditions import LossyLinks, OneWayPartition

    # overlapping windows across families: legal by the family split
    spec = base().stressed(
        Partition(time=30.0, duration=20.0),
        OneWayPartition(time=35.0, duration=20.0),
        LossyLinks(time=32.0, duration=20.0, p=0.5, fraction=0.2),
        CorrelatedLoss(time=31.0, duration=10.0, p=0.2),
    )
    spec.faults.validate()
    assert len(spec.faults) == 4
