"""Tests for drift bisection (ddmin over scenario units)."""

import pytest

from repro.gossip.config import SystemConfig
from repro.scenarios.bisect import (
    apply_units,
    bisect_spec,
    expectation_predicate,
    git_bisect_command,
    spec_units,
    strip_spec,
)
from repro.scenarios.conditions import (
    BandwidthCap,
    CorrelatedLoss,
    OneWayPartition,
    SlowReceivers,
)
from repro.scenarios.expectations import ReliabilityAtLeast
from repro.scenarios.spec import ScenarioSpec, SenderSpec


def base(**kw):
    params = dict(
        name="bisect-fixture",
        n_nodes=10,
        system=SystemConfig(buffer_capacity=30, dedup_capacity=300, max_age=20),
        senders=(SenderSpec(0, 4.0), SenderSpec(5, 6.0)),
        duration=100.0,
        warmup=20.0,
        drain=10.0,
    )
    params.update(kw)
    return ScenarioSpec(**params)


# ----------------------------------------------------------------------
# decomposition / recomposition
# ----------------------------------------------------------------------
def test_script_units_split_items_and_group_churn_per_node():
    spec = (
        base()
        .stressed(
            CorrelatedLoss(time=30.0, duration=10.0, p=0.5),
            SlowReceivers(capacity=5, fraction=0.2),
        )
        .replace(churn=base().churn.leave(40.0, 9).join(55.0, 9).leave(60.0, 8))
    )
    units = spec_units(spec)
    kinds = sorted(u.kind for u in units)
    assert kinds == ["churn", "churn", "fault", "resource"]
    # node 9's leave and join travel together: a rejoin without the
    # departure would respawn a live node
    churn_9 = next(u for u in units if u.kind == "churn" and "node 9" in u.label)
    assert [e.action for e in churn_9.payload] == ["leave", "join"]
    churn_8 = next(u for u in units if u.kind == "churn" and "node 8" in u.label)
    assert [e.action for e in churn_8.payload] == ["leave"]


def test_condition_units_use_the_composition_recipe():
    conditions = [
        CorrelatedLoss(time=30.0, duration=10.0, p=0.5),
        OneWayPartition(time=50.0, duration=10.0),
    ]
    units = spec_units(base().stressed(*conditions), conditions=conditions)
    assert [u.kind for u in units] == ["condition", "condition"]
    assert "CorrelatedLoss" in units[0].label
    assert "OneWayPartition" in units[1].label


def test_apply_units_round_trips_the_full_set():
    conditions = [
        CorrelatedLoss(time=30.0, duration=10.0, p=0.5),
        BandwidthCap(time=60.0, duration=10.0, rate=20.0),
    ]
    spec = base().stressed(*conditions)
    units = spec_units(spec, conditions=conditions)
    assert apply_units(spec, units) == spec
    assert apply_units(spec, []) == strip_spec(spec)
    # every subset of a valid spec's units is itself a valid spec
    for unit in units:
        apply_units(spec, [unit]).faults.validate()


def test_strip_spec_keeps_everything_but_the_scripts():
    spec = base().stressed(CorrelatedLoss(time=30.0, duration=10.0, p=0.5))
    stripped = strip_spec(spec)
    assert len(stripped.faults) == 0
    assert stripped.n_nodes == spec.n_nodes
    assert stripped.senders == spec.senders


# ----------------------------------------------------------------------
# ddmin (synthetic predicates)
# ----------------------------------------------------------------------
def _many_conditions():
    return [
        CorrelatedLoss(time=20.0, duration=5.0, p=0.3),
        OneWayPartition(time=30.0, duration=5.0),
        BandwidthCap(time=40.0, duration=5.0, rate=20.0),
        SlowReceivers(capacity=5, fraction=0.2),
        CorrelatedLoss(time=50.0, duration=5.0, p=0.6),
    ]


def test_ddmin_finds_a_single_culprit():
    from repro.sim.faults import BandwidthCapWindow

    conditions = _many_conditions()
    spec = base().stressed(*conditions)

    # culprit: the bandwidth cap — failure iff its window is present
    def failing(candidate):
        return any(isinstance(w, BandwidthCapWindow) for w in candidate.faults.faults)

    result = bisect_spec(spec, failing, conditions=conditions)
    assert len(result.minimal) == 1
    assert "BandwidthCap" in result.labels[0]
    assert not result.base_fails
    assert failing(result.spec)


def test_ddmin_finds_an_interacting_pair_and_is_1_minimal():
    conditions = _many_conditions()
    spec = base().stressed(*conditions)

    def failing(candidate):
        # fails only when BOTH the one-way cut and the stragglers are in
        has_oneway = any(
            type(w).__name__ == "AsymmetricPartitionWindow"
            for w in candidate.faults.faults
        )
        has_slow = len(candidate.resources) > 0
        return has_oneway and has_slow

    result = bisect_spec(spec, failing, conditions=conditions)
    labels = " | ".join(result.labels)
    assert len(result.minimal) == 2
    assert "OneWayPartition" in labels and "SlowReceivers" in labels
    # 1-minimality: dropping either survivor makes the failure vanish
    for i in range(len(result.minimal)):
        kept = [u for j, u in enumerate(result.minimal) if j != i]
        assert not failing(apply_units(spec, kept))


def test_ddmin_caches_repeat_subsets():
    conditions = _many_conditions()
    spec = base().stressed(*conditions)
    calls = []

    def failing(candidate):
        calls.append(1)
        return any(
            type(w).__name__ == "AsymmetricPartitionWindow"
            for w in candidate.faults.faults
        )

    result = bisect_spec(spec, failing, conditions=conditions)
    assert result.tests == len(calls)  # tests counts cache misses only
    assert result.tests <= 2 ** len(conditions)  # sanity: bounded search


def test_nothing_to_bisect_raises():
    conditions = _many_conditions()
    spec = base().stressed(*conditions)
    with pytest.raises(ValueError, match="nothing to bisect"):
        bisect_spec(spec, lambda s: False, conditions=conditions)


def test_base_failure_is_reported_not_chased():
    conditions = _many_conditions()
    spec = base().stressed(*conditions)
    result = bisect_spec(spec, lambda s: True, conditions=conditions)
    assert result.base_fails
    assert result.minimal == ()


def test_a_crashing_run_counts_as_failing(monkeypatch):
    # an unrunnable composition (driver crash, bad interaction, ...) must
    # register as drift, not blow up the search
    from repro.experiments import sweep

    def boom(*args, **kwargs):
        raise RuntimeError("driver crashed")

    monkeypatch.setattr(sweep, "run_spec_checks", boom)
    assert expectation_predicate("tiny")(base()) is True


def test_git_bisect_command_wraps_the_repro():
    cmd = git_bisect_command("PYTHONPATH=src python -m repro.experiments x", "abc123")
    assert cmd.startswith("git bisect start HEAD abc123")
    assert "git bisect run sh -c" in cmd
    assert cmd.endswith("git bisect reset")


# ----------------------------------------------------------------------
# the real thing: a seeded multi-condition failing spec reduces to the
# offending subset under the expectation predicate (acceptance)
# ----------------------------------------------------------------------
def test_expectation_bisection_isolates_the_heavy_loss():
    conditions = [
        SlowReceivers(capacity=25, fraction=0.2),  # benign: near-full buffers
        CorrelatedLoss(time=10.0, duration=14.0, p=0.97),  # drowns the window
    ]
    spec = (
        base(
            name="drifted",
            n_nodes=12,
            duration=30.0,
            warmup=6.0,
            drain=4.0,
            senders=(SenderSpec(0, 6.0), SenderSpec(4, 6.0)),
            seed=11,
        )
        .stressed(*conditions)
        .expecting(ReliabilityAtLeast(0.9, metric="avg_receiver_fraction"))
    )
    failing = expectation_predicate("tiny")
    result = bisect_spec(spec, failing, conditions=conditions)
    assert len(result.minimal) == 1
    assert "CorrelatedLoss" in result.labels[0]
    assert failing(result.spec)  # the reduced spec still reproduces
    assert not failing(apply_units(spec, []))  # and the base is healthy
