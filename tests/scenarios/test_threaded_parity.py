"""Driver parity: every library scenario fully lowers onto real threads.

The coverage audit (:func:`repro.scenarios.runner.threaded_coverage`)
is the same classification ``run_scenario_threaded`` derives its
report's ``injected``/``skipped`` tuples from, so asserting it over the
whole registry pins ``skipped_count == 0`` for every shipped scenario
without paying for twelve wall-clock runs; two representative scenarios
(one fault-scripted, one churn-over-partial-views) then run end to end
to prove the lowering actually executes.
"""

import pytest

from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.runner import (
    run_scenario_threaded,
    smoke_profile,
    threaded_coverage,
)


@pytest.mark.parametrize("name", scenario_names())
def test_threaded_driver_skips_nothing_in_the_library(name):
    spec = get_scenario(name, smoke_profile())
    injected, skipped = threaded_coverage(spec)
    assert skipped == (), (
        f"scenario {name!r} has conditions the threaded driver cannot "
        f"lower: {skipped}"
    )


def test_every_condition_kind_appears_injected_somewhere():
    # the library collectively exercises every lowering path
    seen = set()
    for name in scenario_names():
        injected, _ = threaded_coverage(get_scenario(name, smoke_profile()))
        seen.update(injected)
    text = " | ".join(seen)
    for marker in (
        "loss window",
        "per-link loss window",
        "partition window",
        "one-way partition window",
        "bandwidth cap window",
        "crash window",
        "churn event",
        "topology/latency",
        "baseline loss",
        "partial membership",
    ):
        assert marker in text, f"no library scenario injects {marker!r}"


def test_fault_scripted_scenario_runs_threaded_with_zero_skips():
    spec = get_scenario("partition-heal", smoke_profile()).with_horizon(8.0)
    report = run_scenario_threaded(spec)
    assert report.skipped_count == 0
    assert any("partition window" in item for item in report.injected)
    assert report.delivered_total > 0


def test_asymmetric_scenario_runs_threaded_with_zero_skips():
    spec = get_scenario("asymmetric-uplink", smoke_profile()).with_horizon(8.0)
    report = run_scenario_threaded(spec)
    assert report.skipped_count == 0
    assert any("one-way partition window" in item for item in report.injected)
    assert report.chaos_oneway_dropped > 0  # the directed cut really bit
    assert report.delivered_total > 0


def test_churn_scenario_runs_threaded_with_zero_skips():
    spec = get_scenario("rolling-churn", smoke_profile()).with_horizon(8.0)
    report = run_scenario_threaded(spec)
    assert report.skipped_count == 0
    assert any("churn event" in item for item in report.injected)
    assert any("partial membership" in item for item in report.injected)
    assert report.delivered_total > 0
