"""Tests for churn scripts."""

import pytest

from repro.membership.churn import ChurnEvent, ChurnScript


def test_builder_api():
    script = ChurnScript().join(1.0, "a").leave(2.0, "b").crash(3.0, "c")
    assert len(script) == 3
    actions = [(e.time, e.action, e.node) for e in script.sorted_events()]
    assert actions == [(1.0, "join", "a"), (2.0, "leave", "b"), (3.0, "crash", "c")]


def test_sorted_events_orders_by_time():
    script = ChurnScript().leave(5.0, "x").join(1.0, "y")
    assert [e.node for e in script.sorted_events()] == ["y", "x"]


def test_sorted_is_stable_for_equal_times():
    script = ChurnScript().join(1.0, "a").join(1.0, "b")
    assert [e.node for e in script.sorted_events()] == ["a", "b"]


def test_validation():
    with pytest.raises(ValueError):
        ChurnEvent(-1.0, "join", "a")
    with pytest.raises(ValueError):
        ChurnEvent(1.0, "explode", "a")


def test_extend():
    script = ChurnScript().extend([ChurnEvent(1.0, "join", "a")])
    assert len(script) == 1
