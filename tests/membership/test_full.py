"""Tests for the full-membership directory and views."""

import random

from repro.membership.full import Directory, FullMembershipView


def test_directory_join_leave():
    d = Directory()
    d.join("a")
    d.join("b")
    assert len(d) == 2
    assert d.is_alive("a")
    d.leave("a")
    assert not d.is_alive("a")
    assert d.alive() == ["b"]


def test_directory_version_bumps_on_change_only():
    d = Directory(["a"])
    v = d.version
    d.join("a")  # no-op
    assert d.version == v
    d.join("b")
    assert d.version == v + 1
    d.leave("missing")  # no-op
    assert d.version == v + 1


def test_view_excludes_owner():
    d = Directory(range(5))
    view = FullMembershipView(d, 2)
    assert view.size() == 4
    assert not view.contains(2)
    assert view.contains(3)
    picked = view.sample_targets(10, random.Random(1))
    assert 2 not in picked
    assert len(picked) == 4


def test_view_tracks_directory_changes():
    d = Directory(range(3))
    view = FullMembershipView(d, 0)
    assert view.size() == 2
    d.join(99)
    assert view.size() == 3
    d.leave(1)
    assert view.size() == 2
    assert not view.contains(1)


def test_sample_without_replacement():
    d = Directory(range(10))
    view = FullMembershipView(d, 0)
    picked = view.sample_targets(5, random.Random(2))
    assert len(picked) == len(set(picked)) == 5


def test_gossip_hooks_are_noops():
    d = Directory(range(3))
    view = FullMembershipView(d, 0)
    assert view.on_gossip_emit(random.Random(1)) is None
    view.on_gossip_receive(None, 1, random.Random(1))  # must not raise
