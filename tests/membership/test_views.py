"""Tests for lpbcast-style partial membership views."""

import random

import pytest

from repro.gossip.protocol import MembershipHeader
from repro.membership.views import PartialViewMembership, ViewConfig


def test_view_config_validation():
    with pytest.raises(ValueError):
        ViewConfig(view_size=0)
    with pytest.raises(ValueError):
        ViewConfig(subs_size=0)
    with pytest.raises(ValueError):
        ViewConfig(subs_per_gossip=-1)


def test_initial_view_excludes_owner():
    m = PartialViewMembership("me", initial_view=["me", "a", "b"])
    assert set(m.view()) == {"a", "b"}


def test_view_bounded():
    cfg = ViewConfig(view_size=3)
    m = PartialViewMembership("me", cfg, initial_view=["a", "b", "c"])
    rng = random.Random(1)
    m.on_gossip_receive(MembershipHeader(subs=("d", "e"), unsubs=()), "x", rng)
    assert m.size() <= 3
    # evicted members become subs so knowledge keeps circulating
    header = m.on_gossip_emit(rng)
    assert header.subs  # at least ourselves


def test_sender_joins_view_on_receive():
    m = PartialViewMembership("me", initial_view=["a"])
    m.on_gossip_receive(None, "sender", random.Random(1))
    assert m.contains("sender")


def test_unsubs_remove_from_view():
    m = PartialViewMembership("me", initial_view=["a", "b"])
    m.on_gossip_receive(
        MembershipHeader(subs=(), unsubs=("a",)), "b", random.Random(1)
    )
    assert not m.contains("a")
    # and the unsub keeps circulating
    header = m.on_gossip_emit(random.Random(2))
    assert "a" in header.unsubs


def test_unsubscribed_nodes_not_readded():
    m = PartialViewMembership("me", initial_view=["b"])
    rng = random.Random(1)
    m.on_gossip_receive(MembershipHeader(subs=(), unsubs=("a",)), "b", rng)
    m.on_gossip_receive(MembershipHeader(subs=("a",), unsubs=()), "b", rng)
    assert not m.contains("a")


def test_own_unsubscription_gossiped():
    m = PartialViewMembership("me", initial_view=["a"])
    m.unsubscribe()
    header = m.on_gossip_emit(random.Random(1))
    assert "me" in header.unsubs
    assert "me" not in header.subs


def test_self_subscription_gossiped_by_default():
    m = PartialViewMembership("me", initial_view=["a"])
    header = m.on_gossip_emit(random.Random(1))
    assert "me" in header.subs


def test_sample_targets_within_view():
    m = PartialViewMembership("me", initial_view=list("abcdef"))
    picked = m.sample_targets(3, random.Random(1))
    assert len(picked) == 3
    assert set(picked) <= set("abcdef")
    everything = m.sample_targets(100, random.Random(1))
    assert set(everything) == set("abcdef")


def test_own_unsub_ignores_self_removal():
    m = PartialViewMembership("me", initial_view=["a"])
    m.on_gossip_receive(
        MembershipHeader(subs=(), unsubs=("me",)), "a", random.Random(1)
    )
    # hearing our own unsub (e.g. stale) must not corrupt the view
    assert m.contains("a")


def test_subs_buffers_bounded():
    cfg = ViewConfig(view_size=2, subs_size=3, unsubs_size=2)
    m = PartialViewMembership("me", cfg)
    rng = random.Random(5)
    for i in range(20):
        m.on_gossip_receive(
            MembershipHeader(subs=(f"s{i}",), unsubs=(f"u{i}",)), f"peer{i}", rng
        )
    assert m.size() <= 2
    assert len(m._subs) <= 3
    assert len(m._unsubs) <= 2
