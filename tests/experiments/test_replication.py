"""Tests for seed replication and confidence intervals."""


import pytest

from repro.experiments.harness import RunSpec
from repro.experiments.replication import (
    replicate,
    summarize_metric,
    t_interval,
)
from repro.gossip.config import SystemConfig


def tiny_spec():
    return RunSpec(
        protocol="lpbcast",
        system=SystemConfig(buffer_capacity=30, dedup_capacity=300),
        n_nodes=10,
        sender_ids=(0, 5),
        offered_load=6.0,
        duration=30.0,
        warmup=10.0,
        drain=8.0,
    )


def test_t_interval_contains_mean():
    values = [10.0, 11.0, 9.0, 10.5, 9.5]
    lo, hi = t_interval(values)
    assert lo < 10.0 < hi


def test_t_interval_narrows_with_n():
    wide = t_interval([9.0, 11.0])
    narrow = t_interval([9.0, 11.0] * 10)
    assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])


def test_t_interval_validation():
    with pytest.raises(ValueError):
        t_interval([1.0])
    with pytest.raises(ValueError):
        t_interval([1.0, 2.0], confidence=1.0)


def test_t_interval_zero_variance():
    lo, hi = t_interval([5.0, 5.0, 5.0])
    assert lo == hi == 5.0


def test_replicate_varies_only_seed():
    runs = replicate(tiny_spec(), seeds=[1, 2, 3])
    assert len(runs) == 3
    assert {r.spec.seed for r in runs} == {1, 2, 3}
    assert len({r.spec.protocol for r in runs}) == 1
    # seeds genuinely vary the runs
    latencies = {round(r.delivery.mean_latency, 9) for r in runs}
    assert len(latencies) > 1


def test_replicate_empty_rejected():
    with pytest.raises(ValueError):
        replicate(tiny_spec(), seeds=[])


def test_summarize_metric():
    runs = replicate(tiny_spec(), seeds=range(4))
    summary = summarize_metric(runs, lambda r: r.delivery.avg_receiver_fraction)
    assert summary.n == 4
    assert 0.9 <= summary.mean <= 1.0
    assert summary.ci_low <= summary.mean <= summary.ci_high


def test_summarize_metric_rejects_all_nan():
    runs = replicate(tiny_spec(), seeds=[1, 2])
    with pytest.raises(ValueError):
        summarize_metric(runs, lambda r: float("nan"))
