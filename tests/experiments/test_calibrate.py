"""Tests for the calibration machinery (coarse, small scale)."""

import dataclasses

import pytest

from repro.experiments.calibrate import (
    CalibrationPoint,
    CalibrationResult,
    max_sustainable_rate,
)
from repro.experiments.profiles import QUICK


@pytest.fixture(scope="module")
def tiny_profile():
    """A very small profile so bisection stays cheap in unit tests."""
    return dataclasses.replace(
        QUICK,
        n_nodes=16,
        n_senders=4,
        duration=60.0,
        warmup=25.0,
        drain=10.0,
    )


def test_interpolation_between_points():
    result = CalibrationResult(
        points=(
            CalibrationPoint(30, 30.0, 4.5, 0.95),
            CalibrationPoint(60, 60.0, 4.5, 0.95),
        ),
        tau=4.5,
    )
    assert result.max_rate_for(45) == pytest.approx(45.0)
    assert result.max_rate_for(30) == 30.0
    # below the sweep: extrapolate through the origin
    assert result.max_rate_for(15) == pytest.approx(15.0)
    # above the sweep: clamp to the last point
    assert result.max_rate_for(600) == 60.0


def test_empty_calibration_rejected():
    with pytest.raises(ValueError):
        CalibrationResult(points=(), tau=4.5).max_rate_for(30)


def test_max_sustainable_rate_brackets(tiny_profile):
    point = max_sustainable_rate(tiny_profile, 30, iterations=3)
    assert point.buffer_capacity == 30
    assert point.max_rate > 2.0
    assert point.reliability_at_max >= 0.95
    assert point.drop_age_at_max > 0


def test_larger_buffer_sustains_more(tiny_profile):
    small = max_sustainable_rate(tiny_profile, 20, iterations=3)
    large = max_sustainable_rate(tiny_profile, 60, iterations=3)
    assert large.max_rate > small.max_rate
