"""Function-level tests of the figure experiments on a tiny profile."""

import dataclasses
import math

import pytest

from repro.experiments import figures
from repro.experiments.calibrate import CalibrationPoint, CalibrationResult
from repro.experiments.profiles import QUICK
from repro.experiments.scalability import scale_sweep


@pytest.fixture(scope="module")
def tiny():
    return dataclasses.replace(
        QUICK,
        name="tiny-fig",
        n_nodes=12,
        n_senders=3,
        duration=50.0,
        warmup=20.0,
        drain=10.0,
        buffer_sizes=(15, 45),
        input_rates=(5.0, 60.0),
        fig2_buffer=15,
        offered_load=40.0,
        fig9_duration=90.0,
        fig9_t1=30.0,
        fig9_t2=60.0,
        fig9_base_buffer=60,
        fig9_low_buffer=20,
        fig9_mid_buffer=30,
        fig9_offered=40.0,
        max_rate_hints={15: 22.0, 20: 29.0, 30: 43.0, 45: 64.0, 60: 85.0},
    )


@pytest.fixture(scope="module")
def sweep(tiny):
    return figures.buffer_sweep_comparison(tiny)


def test_figure2_shape(tiny):
    result = figures.figure2(tiny)
    assert result.buffer_capacity == 15
    assert len(result.rows) == 2
    low, high = result.rows
    assert low.atomicity_pct > high.atomicity_pct
    assert low.input_rate == 5.0


def test_sweep_pairs_protocols(sweep, tiny):
    assert [p.buffer_capacity for p in sweep] == list(tiny.buffer_sizes)
    for pair in sweep:
        assert pair.lpbcast.spec.protocol == "lpbcast"
        assert pair.adaptive.spec.protocol == "adaptive"
        assert pair.lpbcast.spec.system.buffer_capacity == pair.buffer_capacity


def test_figure6_views_sweep(sweep, tiny):
    result = figures.figure6(tiny, sweep)
    assert len(result.rows) == len(sweep)
    for row in result.rows:
        assert row.offered == pytest.approx(40.0, rel=0.2)
        assert not math.isnan(row.maximum)  # hints cover the sweep


def test_figure6_with_calibration_object(sweep, tiny):
    calib = CalibrationResult(
        points=(
            CalibrationPoint(15, 21.0, 4.4, 0.95),
            CalibrationPoint(45, 63.0, 4.4, 0.95),
        ),
        tau=4.4,
    )
    result = figures.figure6(tiny, sweep, calibration=calib)
    assert result.rows[0].maximum == 21.0
    assert result.rows[1].maximum == 63.0


def test_figure7_and_8_consistent_with_sweep(sweep, tiny):
    f7 = figures.figure7(tiny, sweep)
    f8 = figures.figure8(tiny, sweep)
    assert len(f7.rows) == len(f8.rows) == len(sweep)
    smallest7, smallest8 = f7.rows[0], f8.rows[0]
    # baseline pushes the whole offered load even at the small buffer
    assert smallest7.input_lpbcast == pytest.approx(40.0, rel=0.15)
    # adaptive throttles there
    assert smallest7.input_adaptive < 35.0
    # figure8's reliability ordering matches figure7's loss ordering
    assert smallest8.atomicity_pct_adaptive > smallest8.atomicity_pct_lpbcast


def test_figure9_structure(tiny):
    result = figures.figure9(tiny)
    assert result.t1 == 30.0 and result.t2 == 60.0
    assert len(result.allowed_by_phase) == 3
    assert len(result.atomicity_adaptive_by_phase) == 3
    assert result.allowed_series[0][0] == 0.0
    # the low phase grant sits below the base phase grant
    assert result.allowed_by_phase[1] < result.allowed_by_phase[0]
    # homogeneous control run produced a number
    assert 0.0 <= result.atomicity_homogeneous_low <= 1.0


def test_scale_sweep_validation():
    with pytest.raises(ValueError):
        scale_sweep([2])
