"""The sharded sweep runner: parallelism must not change a single bit."""

import json
import math
import pickle

import pytest

from repro.experiments.harness import RunSpec, run_once
from repro.experiments.sweep import (
    merged_metrics,
    results_to_jsonable,
    run_specs,
    to_jsonable,
)
from repro.gossip.config import SystemConfig
from repro.metrics.collector import MetricsCollector


def make_spec(seed=0, buffer_capacity=25, sender=0, offered_load=6.0):
    return RunSpec(
        protocol="lpbcast",
        system=SystemConfig(buffer_capacity=buffer_capacity, dedup_capacity=400),
        n_nodes=8,
        sender_ids=(sender,),
        offered_load=offered_load,
        duration=20.0,
        warmup=5.0,
        drain=5.0,
        seed=seed,
    )


SPECS = [make_spec(seed=s, buffer_capacity=20 + 5 * s) for s in range(4)]


# RunResult fields may legitimately be NaN (e.g. drop_age_mean when no
# drops happened), and NaN != NaN; compare through the jsonable form,
# which maps non-finite floats to None.
def same(a, b):
    return results_to_jsonable(a) == results_to_jsonable(b)


def test_serial_matches_run_once():
    assert same(run_specs(SPECS, jobs=1), [run_once(s) for s in SPECS])


def test_jobs_do_not_change_results():
    serial = run_specs(SPECS, jobs=1)
    sharded = run_specs(SPECS, jobs=4)
    assert same(serial, sharded)  # same values, same order


def test_single_spec_short_circuits():
    assert same(run_specs([SPECS[0]], jobs=8), [run_once(SPECS[0])])


def test_merged_metrics_across_shards():
    # one sender per shard on distinct origins => disjoint event ids
    specs = [make_spec(seed=5, sender=i) for i in range(3)]
    merged = merged_metrics(specs, jobs=3)
    serial = merged_metrics(specs, jobs=1)
    assert merged.admitted.total == serial.admitted.total
    assert merged.deliveries.total == serial.deliveries.total
    assert set(merged.messages) == set(serial.messages)
    # merged totals are the sum of the individual runs
    singles = [merged_metrics([s], jobs=1) for s in specs]
    assert merged.admitted.total == sum(m.admitted.total for m in singles)


def test_collector_is_picklable():
    collector = merged_metrics([make_spec(seed=1)], jobs=1)
    clone = pickle.loads(pickle.dumps(collector))
    assert clone.deliveries.total == collector.deliveries.total
    assert set(clone.messages) == set(collector.messages)
    some_id = next(iter(collector.messages))
    assert clone.messages[some_id].receivers == collector.messages[some_id].receivers


def test_merge_rejects_colliding_event_ids():
    # independent runs with the SAME sender reuse EventIds for different
    # broadcasts; with differing schedules the collision is detectable
    # and the merge must refuse rather than union unrelated messages
    a = merged_metrics([make_spec(seed=1, sender=0, offered_load=6.0)], jobs=1)
    b = merged_metrics([make_spec(seed=2, sender=0, offered_load=7.3)], jobs=1)
    with pytest.raises(ValueError, match="different broadcasts"):
        a.merge(b)


def test_merge_reconciles_receiver_only_shards():
    # admission observed in one shard, deliveries (parked early) in another
    origin_shard = MetricsCollector(bucket_width=1.0)
    receiver_shard = MetricsCollector(bucket_width=1.0)
    event_id = ("node0", 1)
    origin_shard.on_admitted("node0", event_id, 1.0)
    receiver_shard.on_deliver("node3", event_id, 1.4)
    receiver_shard.on_deliver("node4", event_id, 1.6)
    assert receiver_shard.unknown_deliveries == 2  # parked, not recorded
    origin_shard.merge(receiver_shard)
    record = origin_shard.messages[event_id]
    assert record.receivers == {"node3", "node4"}
    assert origin_shard.deliveries.total == 2
    assert origin_shard.unknown_deliveries == 0


def test_collector_merge_sums_series():
    a = MetricsCollector(bucket_width=1.0)
    b = MetricsCollector(bucket_width=1.0)
    a.on_offered(0, 1.0)
    b.on_offered(1, 1.2)
    b.on_offered(1, 7.5)
    a.merge(b)
    assert a.offered.total == 3
    assert a.offered.count(0.0, 2.0) == 2


def test_jsonable_results_round_trip():
    results = run_specs(SPECS[:2], jobs=1)
    doc = results_to_jsonable(results)
    text = json.dumps(doc)  # must be strictly serialisable
    parsed = json.loads(text)
    assert parsed[0]["spec"]["n_nodes"] == 8
    assert parsed[0]["output_rate"] == results[0].output_rate


def test_jsonable_sanitises_nan():
    assert to_jsonable(math.nan) is None
    assert to_jsonable({"x": (1, math.inf)}) == {"x": [1, None]}


# ----------------------------------------------------------------------
# per-shard expectation evaluation
# ----------------------------------------------------------------------
def test_run_scenario_checks_sharded_matches_serial():
    from repro.experiments.sweep import run_scenario_checks
    from repro.scenarios.runner import smoke_profile

    names = ["flash-crowd", "slow-receivers", "wan-clustered"]
    profile = smoke_profile()
    serial = run_scenario_checks(names, profile=profile, jobs=1, horizon=12.0)
    sharded = run_scenario_checks(names, profile=profile, jobs=3, horizon=12.0)
    assert [c.scenario for c in serial] == names  # name order preserved
    assert to_jsonable(serial) == to_jsonable(sharded)
    # expectations came from the registry and were evaluated in-shard
    assert all(c.checks for c in serial)
    # flash-crowd's AdaptiveBeatsStatic ran its static companion in-shard
    flash = serial[0]
    assert flash.companion is not None
    assert flash.companion.get("atomicity") is not None
    others = [c for c in serial[1:]]
    assert all(c.companion is None for c in others)
    # capture-only mode (baseline updates) skips companions and checks
    # but distils the identical result
    captured = run_scenario_checks(
        ["flash-crowd"], profile=profile, jobs=1, horizon=12.0, evaluate=False
    )[0]
    assert captured.checks == () and captured.companion is None
    assert to_jsonable(captured.result) == to_jsonable(flash.result)
