"""Tests for experiment profiles and report rendering."""


import pytest

from repro.experiments.profiles import PAPER, QUICK, get_profile
from repro.experiments.report import fmt, render_series, render_table


def test_get_profile_default(monkeypatch):
    monkeypatch.delenv("REPRO_PROFILE", raising=False)
    assert get_profile().name == "quick"


def test_get_profile_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "paper")
    assert get_profile().name == "paper"


def test_get_profile_explicit_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE", "paper")
    assert get_profile("quick").name == "quick"


def test_get_profile_unknown():
    with pytest.raises(ValueError):
        get_profile("gigantic")


def test_paper_profile_matches_paper_setting():
    assert PAPER.n_nodes == 60
    assert PAPER.fanout == 4
    assert PAPER.buffer_sizes == (30, 60, 90, 120, 150, 180)


def test_profile_system_config():
    cfg = QUICK.system()
    assert cfg.fanout == QUICK.fanout
    assert cfg.buffer_capacity == QUICK.fig2_buffer
    assert QUICK.system(77).buffer_capacity == 77


def test_measure_window():
    w0, w1 = QUICK.measure_window
    assert 0 < w0 < w1 < QUICK.duration


def test_sender_ids_distinct_and_in_range():
    ids = QUICK.sender_ids()
    assert len(ids) == QUICK.n_senders
    assert len(set(ids)) == len(ids)
    assert all(0 <= i < QUICK.n_nodes for i in ids)


def test_fmt():
    assert fmt(1.234, 1) == "1.2"
    assert fmt(float("nan")) == "-"
    assert fmt("x") == "x"
    assert fmt(7) == "7"


def test_render_table_alignment():
    out = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T", digits=2)
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5
    # fixed-width: every row renders to the same total width
    assert len({len(line) for line in lines[1:]}) == 1


def test_render_series_subsampling():
    series = [(float(i), float(i * 2)) for i in range(10)]
    out = render_series(series, every=5)
    data_lines = out.splitlines()[2:]
    assert len(data_lines) == 2


def test_render_table_handles_nan():
    out = render_table(["x"], [[float("nan")]])
    assert "-" in out.splitlines()[-1]


def test_sparkline_basic():
    from repro.experiments.report import render_sparkline

    series = [(float(t), float(t)) for t in range(10)]
    out = render_sparkline(series, title="ramp")
    assert out.startswith("ramp\n")
    assert "[0.0..9.0]" in out
    assert "▁" in out and "█" in out


def test_sparkline_flat_and_nan():
    from repro.experiments.report import render_sparkline

    flat = render_sparkline([(0.0, 5.0), (1.0, 5.0)])
    assert "▁▁" in flat
    gappy = render_sparkline([(0.0, 1.0), (1.0, float("nan")), (2.0, 2.0)])
    assert " " in gappy.split("] ")[1]


def test_sparkline_empty():
    from repro.experiments.report import render_sparkline

    assert "(no samples)" in render_sparkline([])
    assert "(no samples)" in render_sparkline([(0.0, float("nan"))])


def test_sparkline_subsamples_to_width():
    from repro.experiments.report import render_sparkline

    series = [(float(t), float(t % 7)) for t in range(500)]
    out = render_sparkline(series, width=40)
    bar = out.split("] ")[1].split(" (")[0]
    assert len(bar) == 40
