"""Tests for the experiment harness (fast, tiny runs)."""

import math

import pytest

from repro.core.config import AdaptiveConfig
from repro.experiments.harness import RunSpec, run_once, spec_for_profile
from repro.experiments.profiles import QUICK
from repro.gossip.config import SystemConfig


def tiny_spec(protocol="lpbcast", **kw):
    params = dict(
        protocol=protocol,
        system=SystemConfig(buffer_capacity=40, dedup_capacity=400),
        n_nodes=12,
        sender_ids=(0, 4),
        offered_load=6.0,
        duration=40.0,
        warmup=15.0,
        drain=10.0,
        seed=11,
    )
    params.update(kw)
    return RunSpec(**params)


def test_spec_validation():
    with pytest.raises(ValueError):
        tiny_spec(sender_ids=())
    with pytest.raises(ValueError):
        tiny_spec(offered_load=0)
    with pytest.raises(ValueError):
        tiny_spec(warmup=50.0)
    with pytest.raises(ValueError):
        tiny_spec(drain=30.0)


def test_spec_helpers():
    spec = tiny_spec()
    assert spec.rate_per_sender == 3.0
    assert spec.window == (15.0, 30.0)
    assert spec.with_protocol("adaptive").protocol == "adaptive"
    assert spec.with_buffer(99).system.buffer_capacity == 99


def test_run_once_baseline_lowload():
    result = run_once(tiny_spec())
    assert result.delivery.messages > 0
    assert result.delivery.avg_receiver_fraction > 0.95
    assert result.input_rate == pytest.approx(6.0, rel=0.25)
    assert result.output_rate == pytest.approx(result.input_rate, rel=0.15)
    # baseline exposes no adaptive gauges
    assert math.isnan(result.allowed_rate_total)
    assert math.isnan(result.avg_age_mean)


def test_run_once_adaptive_has_gauges():
    result = run_once(
        tiny_spec(protocol="adaptive", adaptive=AdaptiveConfig(age_critical=4.5))
    )
    assert not math.isnan(result.allowed_rate_total)
    assert not math.isnan(result.min_buff_mean)
    assert result.min_buff_mean == pytest.approx(40.0)


def test_run_once_is_deterministic():
    a = run_once(tiny_spec())
    b = run_once(tiny_spec())
    assert a.input_rate == b.input_rate
    assert a.delivery.avg_receiver_fraction == b.delivery.avg_receiver_fraction
    assert a.drops_overflow == b.drops_overflow


def test_seed_changes_run():
    a = run_once(tiny_spec())
    b = run_once(tiny_spec(seed=99))
    # some observable difference (timing of deliveries, drops, ...)
    assert (
        a.delivery.mean_latency != b.delivery.mean_latency
        or a.drops_age_out != b.drops_age_out
    )


def test_spec_for_profile_defaults():
    spec = spec_for_profile(QUICK, "adaptive", buffer_capacity=45)
    assert spec.system.buffer_capacity == 45
    assert spec.n_nodes == QUICK.n_nodes
    assert spec.adaptive is not None
    assert spec.adaptive.age_critical == QUICK.tau_hint
    assert spec.offered_load == QUICK.offered_load


def test_spec_for_profile_override_load():
    spec = spec_for_profile(QUICK, "lpbcast", offered_load=12.5)
    assert spec.offered_load == 12.5
    assert spec.adaptive is None


def test_loss_rate_definition():
    result = run_once(tiny_spec())
    assert result.loss_rate == pytest.approx(
        result.input_rate - result.output_rate
    )
