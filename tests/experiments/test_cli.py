"""Tests for the experiment CLI (run against a tiny profile via env)."""

import dataclasses

import pytest

import repro.experiments.cli as cli
from repro.experiments import profiles


@pytest.fixture
def tiny_profile(monkeypatch):
    """Shrink the quick profile so CLI tests stay fast."""
    tiny = dataclasses.replace(
        profiles.QUICK,
        name="tiny",
        n_nodes=12,
        n_senders=3,
        duration=40.0,
        warmup=15.0,
        drain=10.0,
        buffer_sizes=(20, 40),
        input_rates=(5.0, 40.0),
        offered_load=30.0,
        fig9_duration=60.0,
        fig9_t1=20.0,
        fig9_t2=40.0,
    )
    monkeypatch.setitem(profiles._PROFILES, "tiny", tiny)
    cli._SWEEP_CACHE.clear()
    return tiny


def run_cli(capsys, *argv):
    code = cli.main(list(argv))
    assert code == 0
    return capsys.readouterr().out


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        cli.build_parser().parse_args(["figure99"])


def test_figure2_output(tiny_profile, capsys):
    out = run_cli(capsys, "figure2", "--profile", "tiny")
    assert "Figure 2" in out
    assert "drop age" in out
    # one data row per swept rate
    data_lines = [l for l in out.splitlines() if l and l[0].isspace() or l[:1].isdigit()]
    assert len(out.splitlines()) >= 2 + len(tiny_profile.input_rates)


def test_figures_6_7_8_share_sweep(tiny_profile, capsys, monkeypatch):
    calls = []
    original = cli.figures.buffer_sweep_comparison

    def counting(profile, *a, **kw):
        calls.append(profile.name)
        return original(profile, *a, **kw)

    monkeypatch.setattr(cli.figures, "buffer_sweep_comparison", counting)
    out6 = run_cli(capsys, "figure6", "--profile", "tiny")
    out7 = run_cli(capsys, "figure7", "--profile", "tiny")
    assert "Figure 6" in out6
    assert "Figure 7" in out7
    assert calls == ["tiny"]  # second figure reused the cache


def test_calibrate_command(tiny_profile, capsys):
    out = run_cli(
        capsys, "calibrate", "--profile", "tiny", "--buffers", "25",
        "--iterations", "2",
    )
    assert "tau =" in out
    assert "buffer=25" in out


def test_output_file(tiny_profile, capsys, tmp_path):
    target = tmp_path / "fig2.txt"
    run_cli(capsys, "figure2", "--profile", "tiny", "-o", str(target))
    assert "Figure 2" in target.read_text()


def test_list_scenarios_command(capsys):
    out = run_cli(capsys, "list-scenarios")
    for name in ("correlated-loss", "flash-crowd", "rolling-churn"):
        assert name in out


def test_run_scenario_requires_names():
    with pytest.raises(SystemExit):
        cli.main(["run-scenario"])


def test_run_scenario_sim(tiny_profile, capsys, tmp_path):
    target = tmp_path / "scenarios.json"
    out = run_cli(
        capsys,
        "run-scenario",
        "flash-crowd",
        "--profile",
        "tiny",
        "--horizon",
        "16",
        "--json",
        str(target),
    )
    assert "Scenario matrix" in out
    assert "flash-crowd" in out
    doc = target.read_text()
    assert '"scenario": "flash-crowd"' in doc


def test_run_scenario_both_drivers(tiny_profile, capsys):
    out = run_cli(
        capsys,
        "run-scenario",
        "slow-receivers",
        "--profile",
        "tiny",
        "--horizon",
        "12",
        "--driver",
        "both",
    )
    assert "sim driver" in out
    assert "threaded driver" in out


def test_run_scenario_threaded_prints_condition_coverage(tiny_profile, capsys):
    # wan-clustered has a topology, which the chaos transport now lowers
    # onto real sends: the summary line must surface injected coverage
    out = run_cli(
        capsys, "run-scenario", "wan-clustered", "--profile", "tiny",
        "--horizon", "8", "--driver", "threaded",
    )
    assert "injected=1 skipped=0" in out
    assert "injected: topology/latency model" in out


# ----------------------------------------------------------------------
# check-scenarios: the regression gate
# ----------------------------------------------------------------------
def check_cli(capsys, tmp_path, *argv, scenario="slow-receivers", horizon="12"):
    code = cli.main([
        "check-scenarios", scenario, "--profile", "tiny",
        "--horizon", horizon, "--baseline-dir", str(tmp_path / "baselines"),
        *argv,
    ])
    return code, capsys.readouterr().out


def test_check_scenarios_baseline_round_trip(tiny_profile, capsys, tmp_path):
    # no baseline yet: missing counts as a failure
    code, out = check_cli(capsys, tmp_path)
    assert code == 1
    assert "no baseline recorded" in out
    # capture, then check — clean on the capturing dispatch mode...
    code, out = check_cli(capsys, tmp_path, "--update-baselines")
    assert code == 0
    assert "updated" in out
    code, out = check_cli(capsys, tmp_path)
    assert code == 0
    assert "clean" in out and "exact" in out
    # ...and byte-identical on the other dispatch mode (PR 1's guarantee
    # carried through the baseline layer)
    code, out = check_cli(capsys, tmp_path, "--dispatch", "timers")
    assert code == 0
    assert "clean" in out


def test_check_scenarios_detects_drift(tiny_profile, capsys, tmp_path):
    import json

    check_cli(capsys, tmp_path, "--update-baselines")
    path = tmp_path / "baselines" / "slow-receivers.json"
    doc = json.loads(path.read_text())
    doc["entries"]["tiny/sim@12"]["metrics"]["atomicity"]["value"] = 0.123
    path.write_text(json.dumps(doc))
    code, out = check_cli(capsys, tmp_path)
    assert code == 1
    assert "DRIFT" in out
    assert "atomicity: baseline 0.123" in out


def test_check_scenarios_fails_on_violated_expectation(tiny_profile, capsys, tmp_path):
    # at tiny scale the static companion barely degrades, so flash-crowd's
    # AdaptiveBeatsStatic margin is a genuinely violated expectation
    check_cli(capsys, tmp_path, "--update-baselines", scenario="flash-crowd")
    code, out = check_cli(capsys, tmp_path, scenario="flash-crowd")
    assert code == 1
    assert "FAIL AdaptiveBeatsStatic" in out
    assert "baseline" in out and "clean" in out  # baselines clean, gate still red


def test_check_scenarios_tolerance_never_loosens_sim(tiny_profile, capsys, tmp_path):
    import json

    check_cli(capsys, tmp_path, "--update-baselines")
    path = tmp_path / "baselines" / "slow-receivers.json"
    doc = json.loads(path.read_text())
    entry = doc["entries"]["tiny/sim@12"]["metrics"]["atomicity"]
    entry["value"] = entry["value"] * 0.99  # within any reasonable band
    path.write_text(json.dumps(doc))
    # a huge --tolerance must not relax the sim driver's exact contract
    code, out = check_cli(capsys, tmp_path, "--tolerance", "10.0")
    assert code == 1
    assert "DRIFT" in out


def test_check_scenarios_json_payload(tiny_profile, capsys, tmp_path):
    check_cli(capsys, tmp_path, "--update-baselines")
    target = tmp_path / "check.json"
    code, _ = check_cli(capsys, tmp_path, "--json", str(target))
    assert code == 0
    import json

    doc = json.loads(target.read_text())
    payload = doc["results"]["check-scenarios"]
    assert payload["violations"] == 0
    assert payload["baseline_failures"] == 0
    run = payload["runs"][0]
    assert run["scenario"] == "slow-receivers"
    assert run["baseline"]["missing"] is False
    assert run["checks"][0]["passed"] is True


def test_all_command_runs_every_figure(tiny_profile, capsys, monkeypatch):
    # stub the slow calibration-based figure to keep the test quick
    monkeypatch.setattr(
        cli, "_run_figure4", lambda profile, args: "Figure 4 (stubbed)"
    )
    monkeypatch.setattr(
        cli, "_run_calibrate", lambda profile, args: "tau = stubbed"
    )
    out = run_cli(capsys, "all", "--profile", "tiny")
    for marker in ("Figure 2", "Figure 4", "Figure 6", "Figure 7",
                   "Figure 8", "Figure 9", "tau ="):
        assert marker in out


def test_fuzz_scenarios_cli(tiny_profile, capsys):
    out = run_cli(
        capsys, "fuzz-scenarios", "--seed", "7", "--count", "3",
        "--profile", "tiny",
    )
    assert "Fuzz sweep — seed 7, 3 case(s), sim driver" in out
    assert "3/3 passed" in out


def test_fuzz_scenarios_only_and_json(tiny_profile, capsys, tmp_path):
    import json

    target = tmp_path / "fuzz.json"
    out = run_cli(
        capsys, "fuzz-scenarios", "--seed", "7", "--only", "1",
        "--profile", "tiny", "--json", str(target),
    )
    assert "1 case(s)" in out
    doc = json.loads(target.read_text())
    payload = doc["results"]["fuzz-scenarios"]
    assert payload["seed"] == 7
    assert payload["failures"] == 0
    (report,) = payload["reports"]
    (outcome,) = report["outcomes"]
    assert outcome["index"] == 1
    assert outcome["passed"] is True
    assert outcome["repro"] == ""  # repro commands only accompany failures


def test_bisect_scenario_nothing_to_bisect_exits_2(tiny_profile, capsys):
    # a healthy fuzz case has nothing to shrink: distinct exit code, so
    # scripts can tell "already passing" from "bisection ran"
    code = cli.main([
        "bisect-scenario", "--fuzz-seed", "7", "--index", "0",
        "--profile", "tiny",
    ])
    out = capsys.readouterr().out
    assert code == 2
    assert "does not fail under the predicate" in out


def test_bisect_scenario_requires_a_subject(tiny_profile):
    with pytest.raises(SystemExit):
        cli.main(["bisect-scenario", "--profile", "tiny"])
    with pytest.raises(SystemExit):
        cli.main(["bisect-scenario", "--fuzz-seed", "7", "--profile", "tiny"])
