"""Tests for numeric helpers."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import mean, percentile, stdev, summarize


def test_mean_basic():
    assert mean([1, 2, 3]) == 2.0
    assert mean(iter([4.0])) == 4.0


def test_mean_empty_is_nan():
    assert math.isnan(mean([]))


def test_stdev():
    assert stdev([2, 2, 2]) == 0.0
    assert stdev([0, 2]) == pytest.approx(1.0)
    assert math.isnan(stdev([]))


def test_percentile_bounds():
    values = [1.0, 2.0, 3.0, 4.0]
    assert percentile(values, 0) == 1.0
    assert percentile(values, 100) == 4.0
    assert percentile(values, 50) == pytest.approx(2.5)


def test_percentile_interpolates():
    assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)


def test_percentile_single_value():
    assert percentile([7.0], 90) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([1.0], 101)
    assert math.isnan(percentile([], 50))


def test_summarize():
    s = summarize([1.0, 2.0, 3.0])
    assert s.count == 3
    assert s.mean == 2.0
    assert s.min == 1.0
    assert s.max == 3.0
    assert s.p50 == 2.0


def test_summarize_empty():
    s = summarize([])
    assert s.count == 0
    assert math.isnan(s.mean)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_percentile_within_range(values):
    for q in (0, 25, 50, 75, 100):
        p = percentile(values, q)
        assert min(values) <= p <= max(values)


@settings(max_examples=100, deadline=None)
@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_percentile_monotone_in_q(values):
    ps = [percentile(values, q) for q in (0, 10, 50, 90, 100)]
    # monotone up to interpolation round-off (one ulp-ish tolerance)
    for lo, hi in zip(ps, ps[1:]):
        assert lo <= hi + 1e-6 * max(1.0, abs(lo))
