"""Tests for reliability/atomicity analysis."""

import math

import pytest

from repro.gossip.events import EventId
from repro.metrics.collector import MessageRecord, MetricsCollector
from repro.metrics.delivery import analyze_delivery, atomicity_series


def record(origin, t, receivers, last=None):
    rec = MessageRecord(origin=origin, broadcast_time=t)
    for i, node in enumerate(receivers):
        rec.note_delivery(node, t + 0.1 * (i + 1))
    if last is not None:
        rec.last_delivery = last
    return rec


def test_group_size_validated():
    with pytest.raises(ValueError):
        analyze_delivery([], 0)


def test_empty_records_give_nan():
    stats = analyze_delivery([], 10)
    assert stats.messages == 0
    assert math.isnan(stats.atomicity)


def test_full_delivery():
    recs = [record("s", 0.0, [f"n{i}" for i in range(10)])]
    stats = analyze_delivery(recs, 10)
    assert stats.avg_receiver_fraction == 1.0
    assert stats.atomicity == 1.0
    assert stats.complete_fraction == 1.0
    assert stats.avg_receiver_pct == 100.0


def test_atomicity_threshold_is_strict():
    # exactly 95% of 20 = 19 receivers: NOT > 0.95
    recs = [record("s", 0.0, [f"n{i}" for i in range(19)])]
    stats = analyze_delivery(recs, 20)
    assert stats.atomicity == 0.0
    recs = [record("s", 0.0, [f"n{i}" for i in range(20)])]
    stats = analyze_delivery(recs, 20)
    assert stats.atomicity == 1.0


def test_mixed_messages():
    recs = [
        record("s", 0.0, [f"n{i}" for i in range(10)]),
        record("s", 1.0, ["n0"]),
    ]
    stats = analyze_delivery(recs, 10)
    assert stats.avg_receiver_fraction == pytest.approx(0.55)
    assert stats.atomicity == 0.5
    assert stats.messages == 2


def test_latency_mean():
    recs = [record("s", 0.0, ["a", "b"])]  # last delivery at 0.2
    stats = analyze_delivery(recs, 2)
    assert stats.mean_latency == pytest.approx(0.2)


def test_custom_threshold():
    recs = [record("s", 0.0, ["a", "b", "c"])]
    assert analyze_delivery(recs, 6, threshold=0.4).atomicity == 1.0
    assert analyze_delivery(recs, 6, threshold=0.6).atomicity == 0.0


def test_atomicity_series_buckets_by_broadcast_time():
    m = MetricsCollector()
    e1, e2, e3 = EventId("s", 1), EventId("s", 2), EventId("s", 3)
    m.on_admitted("s", e1, 0.5)
    m.on_admitted("s", e2, 1.5)
    m.on_admitted("s", e3, 1.6)
    for node in range(10):
        m.on_deliver(f"n{node}", e1, 0.7)
    m.on_deliver("n0", e2, 1.7)
    for node in range(10):
        m.on_deliver(f"n{node}", e3, 1.8)
    series = atomicity_series(m, 10, 1.0, 0.0, 3.0)
    assert series[0] == (0.0, 1.0)
    assert series[1] == (1.0, 0.5)
    assert math.isnan(series[2][1])


def test_atomicity_series_validation():
    with pytest.raises(ValueError):
        atomicity_series(MetricsCollector(), 10, 0.0, 0.0, 1.0)
