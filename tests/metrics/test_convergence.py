"""Tests for step-response analysis."""


import pytest

from repro.metrics.convergence import settling_time, step_response


def ramp_then_flat(change=10.0, end=50.0, flat=20.0):
    series = []
    for t in range(0, int(end) + 1):
        if t < change:
            v = 40.0
        elif t < change + 10:
            v = 40.0 - 2.0 * (t - change)  # ramp down to 20
        else:
            v = flat
        series.append((float(t), v))
    return series


def test_settling_time_basic():
    series = ramp_then_flat()
    t = settling_time(series, target=20.0, band=1.0, after=10.0)
    assert t == pytest.approx(20.0)


def test_settling_time_never_settles():
    series = [(float(t), 100.0) for t in range(10)]
    assert settling_time(series, target=0.0, band=1.0) is None


def test_settling_time_reentry_resets():
    series = [(0.0, 0.0), (1.0, 0.0), (2.0, 10.0), (3.0, 0.0), (4.0, 0.0)]
    assert settling_time(series, target=0.0, band=1.0) == 3.0


def test_settling_time_validation():
    with pytest.raises(ValueError):
        settling_time([(0.0, 1.0)], target=1.0, band=0.0)


def test_settling_time_ignores_nan():
    series = [(0.0, float("nan")), (1.0, 5.0), (2.0, 5.0)]
    assert settling_time(series, target=5.0, band=0.5) == 1.0


def test_settling_time_empty_range():
    assert settling_time([], target=1.0, band=1.0) is None


def test_step_response_characterises_transient():
    series = ramp_then_flat(change=10.0, end=50.0, flat=20.0)
    resp = step_response(series, change_time=10.0, window_end=50.0)
    assert resp.steady_value == pytest.approx(20.0)
    assert resp.settled
    assert resp.settle_delay == pytest.approx(10.0, abs=1.5)
    assert resp.peak_deviation == pytest.approx(20.0)  # starts at 40


def test_step_response_validation():
    series = ramp_then_flat()
    with pytest.raises(ValueError):
        step_response(series, change_time=50.0, window_end=10.0)
    with pytest.raises(ValueError):
        step_response(series, change_time=10.0, window_end=50.0, band_frac=0.0)
    with pytest.raises(ValueError):
        step_response([(0.0, 1.0)], change_time=10.0, window_end=50.0)


def test_step_response_on_fig9_like_run():
    """End to end: the adaptive grant settles after a capacity step."""
    from repro.core.config import AdaptiveConfig
    from repro.gossip.config import SystemConfig
    from repro.workload.cluster import SimCluster

    senders = [0, 4, 8]
    cluster = SimCluster(
        n_nodes=16,
        system=SystemConfig(buffer_capacity=60, dedup_capacity=1500),
        protocol="adaptive",
        adaptive=AdaptiveConfig(age_critical=4.46, initial_rate=15.0),
        seed=6,
    )
    cluster.add_senders(senders, rate_each=20.0)  # offered 60
    cluster.at(60.0, lambda: [cluster.set_capacity(n, 20) for n in (14, 15)])
    cluster.run(until=180.0)
    series = []
    for t in range(0, 180, 5):
        v = cluster.metrics.gauge_mean_over("allowed_rate", senders, t, t + 5)
        series.append((float(t), v * len(senders)))
    resp = step_response(series, change_time=60.0, window_end=180.0)
    assert resp.settled
    assert resp.steady_value < 45.0  # throttled after the step
