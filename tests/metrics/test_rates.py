"""Tests for bucketed time series."""

import math

import pytest

from repro.metrics.rates import BucketSeries, GaugeSeries


def test_bucket_width_validated():
    with pytest.raises(ValueError):
        BucketSeries(0)
    with pytest.raises(ValueError):
        GaugeSeries(-1)


def test_bucket_counts():
    s = BucketSeries(1.0)
    s.add(0.2)
    s.add(0.9)
    s.add(1.1)
    assert s.total == 3
    assert s.count(0, 1) == 2
    assert s.count(1, 2) == 1
    assert s.count() == 3


def test_bucket_weights():
    s = BucketSeries(1.0)
    s.add(0.5, weight=2.5)
    assert s.total == 2.5
    assert s.count(0, 1) == 2.5


def test_rate():
    s = BucketSeries(1.0)
    for t in (0.1, 0.5, 1.5, 2.5):
        s.add(t)
    assert s.rate(0, 4) == pytest.approx(1.0)
    with pytest.raises(ValueError):
        s.rate(2, 2)


def test_series_includes_empty_buckets():
    s = BucketSeries(1.0)
    s.add(0.5)
    s.add(2.5)
    series = list(s.series(0, 3))
    assert series == [(0.0, 1.0), (1.0, 0.0), (2.0, 1.0)]


def test_series_rate_scaled_by_width():
    s = BucketSeries(0.5)
    s.add(0.1)
    s.add(0.2)
    series = dict(s.series(0, 0.5))
    assert series[0.0] == pytest.approx(4.0)  # 2 events in 0.5s


def test_empty_series_iteration():
    s = BucketSeries(1.0)
    assert list(s.series()) == []


def test_gauge_mean_per_bucket():
    g = GaugeSeries(1.0)
    g.sample(0.1, 10.0)
    g.sample(0.9, 20.0)
    g.sample(1.5, 30.0)
    series = dict(g.series(0, 2))
    assert series[0.0] == pytest.approx(15.0)
    assert series[1.0] == pytest.approx(30.0)


def test_gauge_mean_window():
    g = GaugeSeries(1.0)
    g.sample(0.5, 10.0)
    g.sample(5.5, 50.0)
    assert g.mean(0, 1) == pytest.approx(10.0)
    assert g.mean() == pytest.approx(30.0)
    assert math.isnan(g.mean(2, 3))


def test_gauge_empty_bucket_is_nan():
    g = GaugeSeries(1.0)
    g.sample(0.5, 1.0)
    series = dict(g.series(0, 2))
    assert math.isnan(series[1.0])


def test_gauge_empty_series():
    assert list(GaugeSeries(1.0).series()) == []
