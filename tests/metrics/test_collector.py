"""Tests for the metrics collector."""

import math

from repro.gossip.events import EventId
from repro.metrics.collector import MetricsCollector


def eid(n):
    return EventId("s", n)


def test_admission_creates_record():
    m = MetricsCollector()
    m.on_admitted("s", eid(1), 1.0)
    rec = m.messages[eid(1)]
    assert rec.origin == "s"
    assert rec.broadcast_time == 1.0
    assert m.admitted.total == 1


def test_delivery_counts_unique_receivers():
    m = MetricsCollector()
    m.on_admitted("s", eid(1), 1.0)
    m.on_deliver("a", eid(1), 1.5)
    m.on_deliver("b", eid(1), 1.6)
    m.on_deliver("a", eid(1), 1.7)  # duplicate
    rec = m.messages[eid(1)]
    assert rec.receivers == {"a", "b"}
    assert rec.duplicate_deliveries == 1
    assert m.duplicate_deliveries == 1
    assert m.deliveries.total == 2
    assert rec.first_delivery == 1.5
    assert rec.last_delivery == 1.6


def test_early_delivery_replayed_on_admission():
    """The sender's own in-broadcast delivery precedes on_admitted."""
    m = MetricsCollector()
    m.on_deliver("s", eid(1), 0.9)
    assert m.unknown_deliveries == 1
    m.on_admitted("s", eid(1), 1.0)
    assert m.unknown_deliveries == 0
    assert "s" in m.messages[eid(1)].receivers


def test_never_admitted_delivery_stays_unknown():
    m = MetricsCollector()
    m.on_deliver("a", eid(9), 1.0)
    assert m.unknown_deliveries == 1
    assert eid(9) not in m.messages


def test_drop_classification():
    m = MetricsCollector()
    m.on_drop("a", eid(1), 7, "overflow", 1.0)
    m.on_drop("a", eid(2), 9, "age_out", 1.1)
    m.on_drop("a", eid(3), 3, "resize", 1.2)
    assert m.drops_overflow.total == 2  # overflow + resize
    assert m.drops_age_out.total == 1
    assert m.drop_ages == [7, 3]
    assert m.mean_drop_age() == 5.0


def test_offered_rejected_counters():
    m = MetricsCollector()
    m.on_offered("s", 1.0)
    m.on_offered("s", 1.5)
    m.on_rejected("s", 1.5)
    assert m.offered.total == 2
    assert m.rejected.total == 1


def test_gauges_per_node():
    m = MetricsCollector()
    m.sample_gauge("rate", "a", 1.0, 10.0)
    m.sample_gauge("rate", "b", 1.0, 20.0)
    m.sample_gauge("other", "a", 1.0, 99.0)
    assert m.gauge("rate", "a").mean() == 10.0
    assert m.gauge("rate", "missing") is None
    assert set(m.gauge_nodes("rate")) == {"a", "b"}
    assert m.gauge_mean("rate") == 15.0
    assert m.gauge_mean_over("rate", ["a"]) == 10.0
    assert m.gauge_mean_over("rate", ["a", "b"]) == 15.0
    assert math.isnan(m.gauge_mean_over("rate", ["zz"]))
    assert math.isnan(m.gauge_mean("nope"))


def test_messages_in_window():
    m = MetricsCollector()
    m.on_admitted("s", eid(1), 1.0)
    m.on_admitted("s", eid(2), 5.0)
    m.on_admitted("s", eid(3), 9.0)
    window = m.messages_in_window(2.0, 8.0)
    assert [r.broadcast_time for r in window] == [5.0]


def test_mean_drop_age_windowed():
    m = MetricsCollector()
    m.on_drop("a", eid(1), 4, "overflow", 1.0)
    m.on_drop("a", eid(2), 8, "overflow", 10.0)
    assert m.mean_drop_age(0, 5) == 4.0
    assert m.mean_drop_age() == 6.0


def test_gauges_indexed_per_name():
    """Per-name gauge lookups touch only that name's bucket."""
    c = MetricsCollector()
    for node in range(4):
        c.sample_gauge("allowed_rate", node, 1.0, float(node))
        c.sample_gauge("buffer_len", node, 1.0, 10.0 + node)
    assert c.gauge_nodes("allowed_rate") == [0, 1, 2, 3]
    assert c.gauge_nodes("buffer_len") == [0, 1, 2, 3]
    assert c.gauge_nodes("missing") == []
    assert c.gauge("allowed_rate", 2).mean(0, 2) == 2.0
    assert c.gauge("allowed_rate", 99) is None
    assert c.gauge("missing", 0) is None
    assert c.gauge_mean("allowed_rate", 0, 2) == 1.5
    assert c.gauge_mean_over("buffer_len", [1, 3], 0, 2) == 12.0


def test_gauge_index_survives_pickle_and_merge():
    import pickle

    a = MetricsCollector()
    a.sample_gauge("avg_age", "n1", 0.5, 3.0)
    a.sample_gauge("avg_age", "n2", 0.5, 5.0)
    b = pickle.loads(pickle.dumps(MetricsCollector()))
    b.sample_gauge("avg_age", "n2", 1.5, 7.0)
    b.sample_gauge("min_buff", "n3", 1.5, 40.0)
    a.merge(pickle.loads(pickle.dumps(b)))
    assert set(a.gauge_nodes("avg_age")) == {"n1", "n2"}
    assert a.gauge_nodes("min_buff") == ["n3"]
    # n2's series holds samples from both shards
    series = a.gauge("avg_age", "n2")
    assert series.mean(0.0, 1.0) == 5.0
    assert series.mean(1.0, 2.0) == 7.0
