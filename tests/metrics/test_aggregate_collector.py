"""The collector's aggregate-only mode: the memory shape for 10k+ nodes.

Aggregate mode swaps per-message receiver *sets* for receiver *counts*
(:class:`CountingMessageRecord`), turns ``sample_gauge`` into a no-op,
and accepts bulk delivery folds — while keeping the time-bucketed
series, pickling, and shard merging contracts intact. The memory-guard
test runs a real 10k-node vector simulation and checks nothing
per-node leaked into the collector.
"""

import pickle

import pytest

from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId
from repro.metrics.collector import (
    CountingMessageRecord,
    MessageRecord,
    MetricsCollector,
)
from repro.metrics.delivery import analyze_delivery
from repro.sim.network import ConstantLatency
from repro.workload.cluster import SimCluster

E = EventId(0, 0)


def test_aggregate_records_count_receivers():
    m = MetricsCollector(aggregate=True)
    m.on_admitted(0, E, 1.0)
    record = m.messages[E]
    assert isinstance(record, CountingMessageRecord)
    m.on_deliver(3, E, 1.5)
    m.on_deliver(3, E, 1.6)  # aggregate mode cannot dedup — counts both
    m.on_deliver_bulk(E, 40, 2.0)
    assert record.receiver_count == 42
    assert record.first_delivery == 1.5
    assert record.last_delivery == 2.0
    assert m.deliveries.total == 42.0


def test_aggregate_bulk_deliveries_park_until_admission():
    """Bulk counts arriving before the admission record must survive,
    exactly like early per-node deliveries in the full mode."""
    m = MetricsCollector(aggregate=True)
    m.on_deliver_bulk(E, 7, 0.5)
    m.on_admitted(0, E, 1.0)
    assert m.messages[E].receiver_count == 7


def test_aggregate_gauges_are_not_recorded():
    m = MetricsCollector(aggregate=True)
    m.sample_gauge("buffer_len", 3, 1.0, 12.0)
    assert m.gauge("buffer_len", 3) is None
    assert m.gauge_nodes("buffer_len") == []


def test_aggregate_records_feed_delivery_analysis():
    m = MetricsCollector(aggregate=True)
    m.on_admitted(0, E, 1.0)
    m.on_deliver_bulk(E, 9, 2.0)
    stats = analyze_delivery(m.messages.values(), group_size=10)
    assert stats.avg_receiver_fraction == pytest.approx(0.9)
    assert stats.complete_fraction == 0.0
    assert stats.unique_deliveries == 9


def test_aggregate_shards_merge():
    a = MetricsCollector(aggregate=True)
    b = MetricsCollector(aggregate=True)
    a.on_admitted(0, E, 1.0)
    a.on_deliver_bulk(E, 5, 2.0)
    b.on_admitted(0, E, 1.0)
    b.on_deliver_bulk(E, 3, 1.5)
    other = EventId(1, 0)
    b.on_admitted(1, other, 2.5)
    b.on_deliver(4, other, 3.0)
    a.merge(b)
    assert a.messages[E].receiver_count == 8
    assert a.messages[E].first_delivery == 1.5
    assert a.messages[other].receiver_count == 1
    # merged-in records are copies: mutating the shard afterwards must
    # not corrupt the merged collector
    b.messages[other].note_bulk(10, 4.0)
    assert a.messages[other].receiver_count == 1


def test_merge_refuses_mixed_modes():
    """Receiver sets and receiver counts are not reconcilable."""
    full = MetricsCollector()
    aggregate = MetricsCollector(aggregate=True)
    with pytest.raises(ValueError, match="aggregate"):
        full.merge(aggregate)
    with pytest.raises(ValueError, match="aggregate"):
        aggregate.merge(full)


def test_aggregate_collector_pickles():
    m = MetricsCollector(aggregate=True)
    m.on_admitted(0, E, 1.0)
    m.on_deliver_bulk(E, 5, 2.0)
    clone = pickle.loads(pickle.dumps(m))
    assert clone.aggregate is True
    assert clone.messages[E].receiver_count == 5
    clone.on_deliver_bulk(E, 2, 3.0)
    assert clone.messages[E].receiver_count == 7


def test_full_mode_record_exposes_receiver_count():
    """The shared accessor the analysis layer uses in both modes."""
    record = MessageRecord(origin=0, broadcast_time=1.0)
    record.note_delivery(3, 2.0)
    record.note_delivery(4, 2.5)
    assert record.receiver_count == 2


def test_ten_thousand_node_run_keeps_collector_aggregate():
    """The memory guard: a real 10k-node vector run must leave no
    per-node structure in the collector — counting records only, no
    gauges, no receiver sets."""
    cluster = SimCluster(
        n_nodes=10_000,
        system=SystemConfig(
            fanout=4,
            buffer_capacity=30,
            dedup_capacity=80_000,
            max_age=8,
            round_phase=0.0,
            round_jitter=0.0,
        ),
        protocol="lpbcast",
        seed=2003,
        latency=ConstantLatency(0.01),
        dispatch="vector",
        sample_gauges=False,
        aggregate_metrics=True,
    )
    cluster.add_senders([0, 5000], rate_each=0.5)
    cluster.run(until=8.0)
    m = cluster.metrics
    assert cluster.vector is not None
    assert m.deliveries.total > 0
    assert m._gauges == {}
    for record in m.messages.values():
        assert isinstance(record, CountingMessageRecord)
        assert not hasattr(record, "receivers")
