"""The shared-nothing multi-process UDP driver's parent coordinator.

:class:`ProcessCluster` runs a scenario across N worker processes, each
hosting a shard of the group on its own asyncio event loop over real UDP
sockets (:mod:`repro.runtime.worker`). The parent:

1. derives a **seeded port map** — every identity the scenario can ever
   name (initial members, churn joiners, crash-window nodes) gets a
   deterministic ``(host, port)`` drawn from
   ``derive_seed(seed, "portmap", attempt)``, with a bind probe per
   candidate so occupied ports are skipped (the collision retry);
2. spawns the workers (``spawn`` context — no inherited state, true
   shared-nothing), ships each its :class:`WorkerConfig` over a control
   pipe, and waits for every ``ready``; a ``bind_failed`` (a port taken
   between probe and bind) tears everything down and retries with a
   fresh map under the next attempt salt;
3. releases the **start barrier** and waits out the scaled run;
4. collects one picklable :class:`WorkerReport` per worker — the
   metrics shard, per-node deliveries, chaos statistics — merges the
   :class:`~repro.metrics.collector.MetricsCollector` shards (the
   collector's early-delivery parking reconciles cross-shard
   deliveries against their origin shard's admission records), and
   tears the workers down, escalating join → terminate → kill so no
   process ever outlives the run.

Scenario lowering itself (chaos windows, churn, crash/restart, feeder
pacing) happens *inside* the workers: each carries the full schedule
and the same seeded chaos vocabulary, so every existing
:class:`~repro.scenarios.spec.ScenarioSpec` condition applies unchanged
across process boundaries. See
:func:`repro.scenarios.runner.run_scenario_process` for the report
surface and ``process_coverage`` for the injected/skipped audit.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import socket
import time
from dataclasses import dataclass, field
from random import Random
from typing import Optional, Sequence

from repro.metrics.collector import MetricsCollector
from repro.runtime.transport import ChaosStats
from repro.runtime.worker import WorkerConfig, WorkerReport, worker_main
from repro.sim.faults import CrashWindow
from repro.sim.rng import derive_seed

__all__ = [
    "PORT_RANGE",
    "default_worker_count",
    "seeded_port_map",
    "scenario_identities",
    "ProcessRunResult",
    "ProcessCluster",
]

#: Candidate UDP ports (inclusive-exclusive); high enough to dodge
#: well-known services, low enough to stay inside common ephemeral
#: ranges' floor on Linux (net.ipv4.ip_local_port_range starts at 32768,
#: so the lower half of this window rarely collides at all).
PORT_RANGE = (20000, 56000)


def default_worker_count(n_nodes: Optional[int] = None) -> int:
    """Worker processes to use when the caller does not say: at least 2
    (cross-process UDP must be real even on one core), at most 4 or the
    core count, never more than the group size."""
    workers = min(4, max(2, os.cpu_count() or 1))
    if n_nodes is not None:
        workers = max(1, min(workers, n_nodes))
    return workers


def _port_free(host: str, port: int) -> bool:
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        probe.bind((host, port))
        return True
    except OSError:
        return False
    finally:
        probe.close()


def seeded_port_map(
    node_ids: Sequence,
    seed: int,
    host: str = "127.0.0.1",
    attempt: int = 0,
    probe: bool = True,
    port_range: tuple[int, int] = PORT_RANGE,
) -> dict:
    """Deterministically assign every identity a ``(host, port)`` address.

    Candidates are drawn from one RNG seeded by
    ``derive_seed(seed, "portmap", attempt)`` — the same seed and free
    ports always produce the same map, which is what makes worker-side
    address books reproducible. A candidate already assigned, or (with
    ``probe``) currently bound by someone else, is skipped and the next
    draw taken — the port-collision retry. ``attempt`` salts the whole
    stream, so a parent that lost a probe-to-bind race can re-derive a
    completely fresh map rather than replaying the contested one.
    """
    lo, hi = port_range
    if hi - lo < len(node_ids):
        raise ValueError(f"port range {port_range} too small for {len(node_ids)} nodes")
    rng = Random(derive_seed(seed, "portmap", attempt))
    assigned: dict = {}
    used: set[int] = set()
    for node in node_ids:
        for _ in range(4096):
            port = rng.randrange(lo, hi)
            if port in used:
                continue
            if probe and not _port_free(host, port):
                continue
            used.add(port)
            assigned[node] = (host, port)
            break
        else:
            raise RuntimeError(
                f"no free UDP port found for node {node!r} in {port_range}"
            )
    return assigned


def scenario_identities(spec) -> list:
    """Every node identity the scenario can ever name, sorted.

    The port map must cover not just the initial members but any
    identity a churn script joins or a crash window touches later —
    restarts rebind the same mapped port, so the static address book
    every worker holds stays valid for the whole run.
    """
    identities = set(range(spec.n_nodes))
    for event in spec.churn.sorted_events():
        identities.add(event.node)
    for fault in spec.faults.faults:
        if isinstance(fault, CrashWindow):
            identities.update(fault.nodes)
    return sorted(identities)


@dataclass
class ProcessRunResult:
    """The merged outcome of one multi-process run (all shards)."""

    n_workers: int
    wall_seconds: float
    time_scale: float
    offers: int
    admitted: int
    delivered: dict  # node id -> events_delivered (current incarnation)
    duplicates: int
    decode_errors: int
    send_failures: int
    bind_errors: int
    chaos: ChaosStats = field(default_factory=ChaosStats)
    metrics: Optional[MetricsCollector] = None
    port_attempts: int = 1  # seeded maps tried before every worker bound


class ProcessCluster:
    """Coordinate one scenario run across shard worker processes.

    Parameters
    ----------
    spec:
        A picklable :class:`~repro.scenarios.spec.ScenarioSpec`.
    gossip_period:
        Wall seconds per gossip round; sets the spec-to-wall time scale
        exactly like the threaded driver (default 0.1 s).
    n_workers:
        Worker process count (default :func:`default_worker_count`).
    host:
        Bind address for every node socket (default localhost).
    mp_context:
        :mod:`multiprocessing` start method; ``spawn`` (default) keeps
        the workers genuinely shared-nothing and fork-safe under any
        parent.
    """

    START_TIMEOUT = 60.0  # configure->ready, covers a spawn+import storm
    RESULT_GRACE = 20.0  # extra wall seconds before a worker is a straggler
    BIND_ATTEMPTS = 3  # fresh port maps tried on probe-to-bind races

    def __init__(
        self,
        spec,
        gossip_period: float = 0.1,
        n_workers: Optional[int] = None,
        host: str = "127.0.0.1",
        mp_context: str = "spawn",
    ) -> None:
        if gossip_period <= 0:
            raise ValueError("gossip_period must be > 0")
        self.spec = spec
        self.gossip_period = gossip_period
        self.scale = gossip_period / spec.system.gossip_period
        self.n_workers = (
            default_worker_count(spec.n_nodes)
            if n_workers is None
            else max(1, min(n_workers, spec.n_nodes))
        )
        self.host = host
        self._ctx = multiprocessing.get_context(mp_context)
        self._procs: list = []
        self._conns: list = []

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------
    def shards(self, identities: Sequence) -> list[tuple]:
        """Round-robin identities across workers (spreads senders too)."""
        shards: list[list] = [[] for _ in range(self.n_workers)]
        for index, node in enumerate(sorted(identities)):
            shards[index % self.n_workers].append(node)
        return [tuple(shard) for shard in shards]

    # ------------------------------------------------------------------
    # the run
    # ------------------------------------------------------------------
    def run(self, wall_seconds: Optional[float] = None) -> ProcessRunResult:
        spec = self.spec
        spec.faults.validate()  # before any process exists, like threaded
        wall = spec.duration * self.scale if wall_seconds is None else wall_seconds
        identities = scenario_identities(spec)
        attempt = 0
        try:
            last_failure = ""
            for attempt in range(self.BIND_ATTEMPTS):
                port_map = seeded_port_map(
                    identities, spec.seed, host=self.host, attempt=attempt
                )
                self._spawn(port_map, wall)
                last_failure = self._await_ready()
                if not last_failure:
                    break
                self._teardown()
            else:
                raise RuntimeError(
                    f"workers failed to start after {self.BIND_ATTEMPTS} "
                    f"port-map attempts: {last_failure}"
                )
            for conn in self._conns:
                conn.send(("start",))
            reports = self._collect(wall)
            return self._merge(reports, wall, attempt + 1)
        finally:
            self._teardown()

    def _spawn(self, port_map: dict, wall: float) -> None:
        for worker_id, nodes in enumerate(self.shards(port_map)):
            parent_conn, child_conn = self._ctx.Pipe()
            config = WorkerConfig(
                worker_id=worker_id,
                n_workers=self.n_workers,
                spec=self.spec,
                nodes=nodes,
                port_map=dict(port_map),
                gossip_period=self.gossip_period,
                wall_seconds=wall,
            )
            # daemon: a hard-killed parent still cannot leave a worker
            # behind at interpreter exit; the pipe watchdog covers the
            # rest (SIGKILL skips atexit, but EOF on the pipe does not)
            proc = self._ctx.Process(
                target=worker_main,
                args=(child_conn,),
                name=f"repro-shard-{worker_id}",
                daemon=True,
            )
            proc.start()
            child_conn.close()  # the child's copy is the live end now
            parent_conn.send(("configure", config))
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _await_ready(self) -> str:
        """Empty string when every worker bound; else the failure reason."""
        deadline = time.monotonic() + self.START_TIMEOUT
        for worker_id, conn in enumerate(self._conns):
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not conn.poll(max(0.0, remaining)):
                return f"worker {worker_id} not ready within {self.START_TIMEOUT}s"
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return f"worker {worker_id} died during startup"
            if not isinstance(msg, tuple) or not msg:
                return f"worker {worker_id} sent garbage: {msg!r}"
            if msg[0] == "bind_failed":
                return f"worker {worker_id} lost a bind race: {msg[2]}"
            if msg[0] != "ready":
                return f"worker {worker_id} sent unexpected {msg[0]!r}"
        return ""

    def _collect(self, wall: float) -> list[WorkerReport]:
        deadline = time.monotonic() + wall + self.RESULT_GRACE
        reports: list[WorkerReport] = []
        missing: list[int] = []
        for worker_id, conn in enumerate(self._conns):
            report = None
            remaining = max(0.0, deadline - time.monotonic())
            try:
                if conn.poll(remaining):
                    msg = conn.recv()
                    if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "result":
                        report = msg[1]
            except (EOFError, OSError):
                pass
            if report is None:
                missing.append(worker_id)
            else:
                reports.append(report)
        if missing:
            raise RuntimeError(
                f"worker(s) {missing} never reported a result "
                f"(wall {wall:.1f}s + {self.RESULT_GRACE:.0f}s grace)"
            )
        return reports

    def _merge(
        self, reports: list[WorkerReport], wall: float, attempts: int
    ) -> ProcessRunResult:
        result = ProcessRunResult(
            n_workers=self.n_workers,
            wall_seconds=wall,
            time_scale=self.scale,
            offers=0,
            admitted=0,
            delivered={},
            duplicates=0,
            decode_errors=0,
            send_failures=0,
            bind_errors=0,
            port_attempts=attempts,
        )
        for report in sorted(reports, key=lambda r: r.worker_id):
            result.offers += report.offers
            result.admitted += report.admitted
            result.duplicates += report.duplicates
            result.decode_errors += report.decode_errors
            result.send_failures += report.send_failures
            result.bind_errors += report.bind_errors
            result.delivered.update(report.delivered)
            if report.chaos is not None:
                for stat in dataclasses.fields(ChaosStats):
                    setattr(
                        result.chaos,
                        stat.name,
                        getattr(result.chaos, stat.name)
                        + getattr(report.chaos, stat.name),
                    )
            if result.metrics is None:
                result.metrics = report.metrics
            else:
                # cross-shard deliveries parked as "early" in the
                # receiver's shard replay against the origin shard's
                # admission records here
                result.metrics.merge(report.metrics)
        return result

    def _teardown(self) -> None:
        """Close the pipes (workers exit on EOF), then escalate."""
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=2.0)
        self._procs.clear()
        self._conns.clear()
