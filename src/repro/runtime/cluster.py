"""Whole-group runner for the real-time runtime.

:class:`ThreadedCluster` builds N :class:`~repro.runtime.node.RuntimeNode`
threads over an in-memory hub or UDP sockets, wires a (lock-serialised)
:class:`~repro.metrics.collector.MetricsCollector` into every protocol,
and runs the group for a wall-clock duration — the in-process equivalent
of the paper's 60-workstation deployment.

Because this half of the methodology exists to *validate the simulator*,
it reuses the exact protocol classes and metrics pipeline; only the
driver differs.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.membership.full import Directory, FullMembershipView
from repro.metrics.collector import MetricsCollector
from repro.runtime.codec import BinaryCodec
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import InMemoryHub, UdpTransport
from repro.sim.rng import RngRegistry
from repro.workload.cluster import make_protocol_factory

__all__ = ["ThreadedCluster"]


class ThreadedCluster:
    """A gossip group running on real threads and a real transport.

    Parameters
    ----------
    n_nodes:
        Group size.
    system:
        Gossip parameters. Real runs usually want a short
        ``gossip_period`` (e.g. 0.05–0.2 s) so experiments finish fast.
    protocol:
        ``"lpbcast"``, ``"static"`` or ``"adaptive"``.
    transport:
        ``"memory"`` (default) or ``"udp"`` (localhost sockets).
    """

    def __init__(
        self,
        n_nodes: int,
        system: Optional[SystemConfig] = None,
        protocol: str = "lpbcast",
        adaptive: Optional[AdaptiveConfig] = None,
        rate_limit: Optional[float] = None,
        transport: str = "memory",
        seed: int = 0,
        codec: Optional[Any] = None,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        self.system = system if system is not None else SystemConfig(gossip_period=0.1)
        self.codec = codec if codec is not None else BinaryCodec()
        self.metrics = MetricsCollector(bucket_width=max(0.1, self.system.gossip_period))
        self._metrics_lock = threading.Lock()
        self._rngs = RngRegistry(seed)
        self.directory = Directory(range(n_nodes))
        factory = make_protocol_factory(protocol, adaptive=adaptive, rate_limit=rate_limit)

        self._hub = InMemoryHub() if transport == "memory" else None
        self._addr_of: dict[Any, Any] = {}
        self.nodes: dict[Any, RuntimeNode] = {}
        self._t0 = time.monotonic()

        transports = {}
        for node_id in range(n_nodes):
            if transport == "memory":
                endpoint = self._hub.create(node_id)
                self._addr_of[node_id] = node_id
            elif transport == "udp":
                endpoint = UdpTransport()
                self._addr_of[node_id] = endpoint.address
            else:
                raise ValueError(f"unknown transport {transport!r}")
            transports[node_id] = endpoint

        for node_id in range(n_nodes):
            membership = FullMembershipView(self.directory, node_id)
            proto = factory(
                node_id,
                self.system,
                membership,
                self._rngs.stream("protocol", node_id),
                self._deliver_fn(node_id),
                self._drop_fn(node_id),
                0.0,
            )
            self.nodes[node_id] = RuntimeNode(
                proto,
                transports[node_id],
                self.codec,
                self._addr_of.get,
                gossip_period=self.system.gossip_period,
                clock=self._clock,
            )

    # ------------------------------------------------------------------
    # clocks & metrics plumbing
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        """Cluster-relative wall clock (metrics buckets start at 0)."""
        return time.monotonic() - self._t0

    def _deliver_fn(self, node_id: Any):
        def deliver(event_id, payload, now):
            with self._metrics_lock:
                self.metrics.on_deliver(node_id, event_id, now)

        return deliver

    def _drop_fn(self, node_id: Any):
        def drop(event_id, age, reason, now):
            with self._metrics_lock:
                self.metrics.on_drop(node_id, event_id, age, reason, now)

        return drop

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def broadcast(self, node_id: Any, payload: Any = None) -> None:
        """Offer a broadcast through ``node_id`` (admission on its thread)."""
        self.nodes[node_id].broadcast(payload)

    def note_admitted(self, node_id: Any, event_id, when: Optional[float] = None) -> None:
        """Record an admission in the metrics (used by runtime tests)."""
        with self._metrics_lock:
            self.metrics.on_admitted(node_id, event_id, when if when is not None else self._clock())

    def run_for(self, duration: float) -> None:
        """Start (if needed), run for ``duration`` wall seconds, stop."""
        if not any(n.is_alive() for n in self.nodes.values()):
            self.start()
        time.sleep(duration)
        self.stop()

    def stop(self) -> None:
        for node in self.nodes.values():
            node.shutdown()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def group_size(self) -> int:
        return len(self.nodes)

    def protocol_of(self, node_id: Any):
        return self.nodes[node_id].protocol
