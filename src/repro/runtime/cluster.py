"""Whole-group runner for the real-time runtime.

:class:`ThreadedCluster` builds N :class:`~repro.runtime.node.RuntimeNode`
threads over an in-memory hub or UDP sockets, wires a (lock-serialised)
:class:`~repro.metrics.collector.MetricsCollector` into every protocol,
and runs the group for a wall-clock duration — the in-process equivalent
of the paper's 60-workstation deployment.

Because this half of the methodology exists to *validate the simulator*,
it reuses the exact protocol classes and metrics pipeline; the shared
wiring lives in the common :class:`~repro.driver.Driver` base class, so
only the execution substrate differs between this cluster and the
discrete-event :class:`~repro.workload.cluster.SimCluster`.

Fault parity: endpoints can be wrapped in
:class:`~repro.runtime.transport.ChaosTransport` (pass ``chaos=``, or
let :meth:`ThreadedCluster.from_scenario` build the rule set from the
scenario's topology/loss environment), membership may be partial
(lpbcast views gossiped over the real wire), and nodes can crash,
restart, join and leave while the group runs — the threaded
counterparts of :class:`~repro.workload.cluster.SimCluster`'s
``crash_node``/``join_node``/``leave_node``. The scenario fault
scheduler (:func:`repro.scenarios.runner.run_scenario_threaded`) drives
all of this on a shared wall clock.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.core.aggregation import Aggregate
from repro.core.config import AdaptiveConfig
from repro.driver import Driver
from repro.gossip.config import SystemConfig
from repro.membership.full import FullMembershipView
from repro.membership.views import PartialViewMembership, ViewConfig
from repro.runtime.codec import BinaryCodec
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import ChaosRules, ChaosTransport, InMemoryHub, UdpTransport
from repro.sim.rng import RngRegistry

__all__ = ["ThreadedCluster"]


class ThreadedCluster(Driver):
    """A gossip group running on real threads and a real transport.

    Parameters
    ----------
    n_nodes:
        Group size.
    system:
        Gossip parameters. Real runs usually want a short
        ``gossip_period`` (e.g. 0.05–0.2 s) so experiments finish fast.
    protocol:
        ``"lpbcast"``, ``"static"`` or ``"adaptive"`` (or a factory).
    transport:
        ``"memory"`` (default) or ``"udp"`` (localhost sockets).
    membership:
        ``"full"`` (shared directory, the paper's testbed setting) or
        ``"partial"`` (per-node lpbcast views, gossiped on the wire).
    chaos:
        A :class:`~repro.runtime.transport.ChaosRules` value; when
        given, every endpoint is wrapped in a
        :class:`~repro.runtime.transport.ChaosTransport` seeded per node
        from ``seed``, and the rule set may be mutated mid-run (fault
        windows, partitions) from any thread.
    """

    def __init__(
        self,
        n_nodes: int,
        system: Optional[SystemConfig] = None,
        protocol: Any = "lpbcast",
        adaptive: Optional[AdaptiveConfig] = None,
        rate_limit: Optional[float] = None,
        aggregate: Optional[Aggregate] = None,
        transport: str = "memory",
        seed: int = 0,
        codec: Optional[Any] = None,
        membership: str = "full",
        view_size: Optional[int] = None,
        chaos: Optional[ChaosRules] = None,
    ) -> None:
        super().__init__(
            n_nodes,
            system=system,
            protocol=protocol,
            adaptive=adaptive,
            rate_limit=rate_limit,
            aggregate=aggregate,
        )
        if transport not in ("memory", "udp"):
            raise ValueError(f"unknown transport {transport!r}")
        if membership not in ("full", "partial"):
            raise ValueError(f"unknown membership kind {membership!r}")
        self.codec = codec if codec is not None else BinaryCodec()
        self._metrics_lock = threading.Lock()
        self._started = False
        self._stopped = False
        self._seed = seed
        self._rngs = RngRegistry(seed)
        self._transport_kind = transport
        self.membership_kind = membership
        self.view_size = view_size
        self.chaos = chaos

        self._hub = InMemoryHub() if transport == "memory" else None
        self._addr_of: dict[Any, Any] = {}
        self._node_by_addr: dict[Any, Any] = {}
        self.nodes: dict[Any, RuntimeNode] = {}
        self._t0 = time.monotonic()

        if chaos is not None:
            # partition/loss rules speak node ids; teach the rule set to
            # translate transport addresses back (identity for memory)
            chaos.bind_address_map(lambda addr: self._node_by_addr.get(addr, addr))

        for node_id in range(n_nodes):
            self._spawn_runtime_node(node_id)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def _make_endpoint(self, node_id: Any):
        if self._transport_kind == "memory":
            raw = self._hub.create(node_id)
        else:
            raw = UdpTransport()
        self._addr_of[node_id] = raw.address
        self._node_by_addr[raw.address] = node_id
        if self.chaos is not None:
            return ChaosTransport(raw, self.chaos, node_id, seed=self._seed)
        return raw

    def _make_membership(self, node_id: Any):
        if self.membership_kind == "full":
            return FullMembershipView(self.directory, node_id)
        rng = self._rngs.stream("bootstrap_view", node_id)
        others = [n for n in self.directory.alive() if n != node_id]
        cfg = (
            ViewConfig(view_size=self.view_size)
            if self.view_size is not None
            else ViewConfig()
        )
        bootstrap = rng.sample(others, min(len(others), cfg.view_size))
        return PartialViewMembership(node_id, cfg, initial_view=bootstrap)

    def _spawn_runtime_node(self, node_id: Any) -> RuntimeNode:
        endpoint = self._make_endpoint(node_id)
        proto = self._build_protocol(
            node_id,
            self._make_membership(node_id),
            self._rngs.stream("protocol", node_id),
            self._clock(),
        )
        node = RuntimeNode(
            proto,
            endpoint,
            self.codec,
            self._addr_of.get,
            gossip_period=self.system.gossip_period,
            clock=self._clock,
            jitter=self.system.round_jitter,
            phase=self.system.round_phase,
        )
        self.nodes[node_id] = node
        return node

    # ------------------------------------------------------------------
    # Driver hooks
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(
        cls,
        spec,
        gossip_period: Optional[float] = None,
        transport: str = "memory",
        **overrides,
    ) -> "ThreadedCluster":
        """Instantiate a declarative scenario on real threads.

        Real runs want short rounds, so the spec's gossip period is
        replaced by ``gossip_period`` (default 0.1 s); everything else of
        the protocol profile carries over, including partial-view
        membership. When the spec carries a network environment — a
        topology/latency model, baseline loss, or loss/partition/
        bandwidth fault windows — the endpoints come wrapped in a
        :class:`~repro.runtime.transport.ChaosTransport` sharing one
        :class:`~repro.runtime.transport.ChaosRules`, pre-loaded with
        the baseline loss and the latency model (link delays scaled by
        the same wall-clock factor as the schedule). Scenario
        *schedules* (workload offers, fault/churn/resource scripts) are
        driven by :func:`repro.scenarios.runner.run_scenario_threaded`.
        """
        import dataclasses

        period = 0.1 if gossip_period is None else gossip_period
        scale = period / spec.system.gossip_period
        system = dataclasses.replace(spec.system, gossip_period=period)
        chaos = overrides.pop("chaos", None)
        if chaos is None and spec.wire_conditions:
            chaos = ChaosRules(
                loss=spec.baseline_loss,
                latency=spec.build_latency(),
                latency_scale=scale,
            )
        cluster = cls(
            n_nodes=spec.n_nodes,
            system=system,
            protocol=spec.protocol,
            adaptive=spec.adaptive,
            rate_limit=spec.rate_limit,
            aggregate=spec.aggregate,
            transport=transport,
            seed=spec.seed,
            membership=spec.membership,
            view_size=spec.view_size,
            chaos=chaos,
            **overrides,
        )
        if cluster.chaos is not None:
            # cap windows must bucket per *spec* second (the simulator's
            # granularity), not per wall second — at scale 0.1 a wall
            # bucket would hand out ten spec-seconds of budget as one
            # FCFS burst. The runner therefore sets caps at the spec's
            # unscaled msg/s rate.
            wall_clock = cluster._clock
            cluster.chaos.bind_clock(lambda: wall_clock() / scale)
        # conditions present from t=0 (e.g. slow receivers) apply before
        # the threads start, directly on the still-unshared protocols.
        # Must stay the exact complement of the timed-action queue in
        # run_scenario_threaded, which excludes t=0 CapacityChanges.
        from repro.workload.dynamics import CapacityChange

        for change in spec.resources.changes:
            if change.time == 0.0 and isinstance(change, CapacityChange):
                for node in change.nodes:
                    if node in cluster.nodes:
                        cluster.nodes[node].protocol.set_buffer_capacity(
                            change.capacity, 0.0
                        )
        return cluster

    def _default_system(self) -> SystemConfig:
        # real runs want short rounds so experiments finish fast
        return SystemConfig(gossip_period=0.1)

    def _default_bucket_width(self) -> float:
        return max(0.1, self.system.gossip_period)

    # ------------------------------------------------------------------
    # clocks & metrics plumbing
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        """Cluster-relative wall clock (metrics buckets start at 0)."""
        return time.monotonic() - self._t0

    def _bind_deliver(self, node_id: Any):
        """Like the base binding, but serialised behind the metrics lock."""
        collector = self.metrics
        lock = self._metrics_lock

        def deliver_fn(event_id, payload, now):
            with lock:
                collector.on_deliver(node_id, event_id, now)

        return deliver_fn

    def _bind_drop(self, node_id: Any):
        """Like the base binding, but serialised behind the metrics lock."""
        collector = self.metrics
        lock = self._metrics_lock

        def drop_fn(event_id, age, reason, now):
            with lock:
                collector.on_drop(node_id, event_id, age, reason, now)

        return drop_fn

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._started = True
        for node in self.nodes.values():
            if not node.is_alive() and node.ident is None:
                node.start()

    def broadcast(self, node_id: Any, payload: Any = None) -> None:
        """Offer a broadcast through ``node_id`` (admission on its thread)."""
        self.nodes[node_id].broadcast(payload)

    def set_capacity(self, node_id: Any, capacity: int) -> None:
        """Change a node's buffer capacity, safely, while it runs.

        The change is queued onto the node's own thread (the protocol is
        never touched cross-thread) — the threaded counterpart of
        :meth:`repro.workload.cluster.SimCluster.set_capacity`.
        """

        def apply(protocol, now: float) -> None:
            protocol.set_buffer_capacity(capacity, now)

        self.nodes[node_id].invoke(apply)

    def note_admitted(self, node_id: Any, event_id, when: Optional[float] = None) -> None:
        """Record an admission in the metrics (used by runtime tests)."""
        with self._metrics_lock:
            self.metrics.on_admitted(node_id, event_id, when if when is not None else self._clock())

    # ------------------------------------------------------------------
    # live membership (the threaded counterparts of SimCluster's)
    # ------------------------------------------------------------------
    def crash_node(self, node_id: Any, timeout: float = 2.0) -> None:
        """Silent failure: stop the thread, close the endpoint, no goodbye.

        The dead :class:`RuntimeNode` stays in :attr:`nodes` so its
        protocol statistics remain readable after the run; liveness is
        the directory's call. Safe from any thread; idempotent.
        """
        node = self.nodes.get(node_id)
        if node is None or not self.directory.is_alive(node_id):
            return
        self.directory.leave(node_id)
        self._retire_endpoint(node_id)
        node.shutdown(timeout=timeout)

    def leave_node(self, node_id: Any, timeout: float = 2.0) -> None:
        """Graceful departure: unsubscribe, gossip it, then stop.

        The unsubscribe is queued onto the node's own thread; what makes
        the departure *graceful* (distinguishable from a crash) is that
        the node then lives through one more gossip round, so partial
        views actually carry the unsubscription onto the wire — the
        header is only built by future emissions. The grace period is
        *non-blocking*: the final shutdown rides a daemon timer, so the
        scenario fault scheduler (a single thread pacing offers and
        firing every condition) is never stalled by a departure. The
        grace is skipped for full membership, where the directory itself
        is the announcement. :meth:`stop` still tears everything down
        immediately — shutdown is idempotent, a late timer is a no-op.
        """
        node = self.nodes.get(node_id)
        if node is None or not self.directory.is_alive(node_id):
            return
        announces = getattr(node.protocol.membership, "unsubscribe", None)

        def unsub(protocol, now: float) -> None:
            unsubscribe = getattr(protocol.membership, "unsubscribe", None)
            if callable(unsubscribe):
                unsubscribe()

        node.invoke(unsub)
        self.directory.leave(node_id)
        self._retire_endpoint(node_id)
        if callable(announces) and node.is_alive():
            # one command-drain poll plus one full round, even with jitter
            grace = RuntimeNode.POLL_CAP + node.gossip_period * 1.2
            timer = threading.Timer(grace, node.shutdown)
            timer.daemon = True
            timer.start()
        else:
            node.shutdown(timeout=timeout)

    def join_node(self, node_id: Any) -> RuntimeNode:
        """(Re)join under ``node_id``: a fresh process, old identity.

        A restarted node gets a brand-new protocol instance (empty
        buffers — the realistic model for a process restart) and a fresh
        endpoint; if the cluster is running, its thread starts
        immediately. The previous incarnation, if any, must be dead.
        """
        if self._stopped:
            raise RuntimeError("cluster stopped; nodes cannot join")
        old = self.nodes.get(node_id)
        if old is not None and self.directory.is_alive(node_id):
            return old  # already a live member
        if old is not None and old.is_alive():
            # a graceful leave's grace timer may still be pending:
            # rejoining under the identity supersedes it, so finish the
            # teardown now (shutdown is idempotent — the timer firing
            # later on the old, already-dead node is a no-op, and its
            # late transport close is identity-checked by the hub)
            old.shutdown()
        self.directory.join(node_id)
        node = self._spawn_runtime_node(node_id)
        if self._started:
            node.start()
        return node

    def _retire_endpoint(self, node_id: Any) -> None:
        """Forget the node's address so peers see sends fail fast."""
        addr = self._addr_of.pop(node_id, None)
        if addr is not None:
            self._node_by_addr.pop(addr, None)

    def run_for(self, duration: float) -> None:
        """Start (if needed), run for ``duration`` wall seconds, stop.

        One-shot, unlike the simulator's repeatable
        :meth:`~repro.workload.cluster.SimCluster.run_for`: real threads
        cannot be restarted once joined, so the teardown is final. For
        incremental wall-clock phases call :meth:`start`, sleep between
        observations, then :meth:`stop` once.
        """
        if self._stopped:
            raise RuntimeError(
                "this cluster has been stopped; its threads and transports "
                "cannot be reused — build a fresh ThreadedCluster"
            )
        if not any(n.is_alive() for n in self.nodes.values()):
            self.start()
        time.sleep(duration)
        self.stop()

    def stop(self) -> None:
        # consumes the cluster whether or not it ever started: shutdown
        # closes the transports, so the nodes can never run afterwards
        self._stopped = True
        for node in self.nodes.values():
            node.shutdown()
        if self.chaos is not None:
            self.chaos.close()
