"""Whole-group runner for the real-time runtime.

:class:`ThreadedCluster` builds N :class:`~repro.runtime.node.RuntimeNode`
threads over an in-memory hub or UDP sockets, wires a (lock-serialised)
:class:`~repro.metrics.collector.MetricsCollector` into every protocol,
and runs the group for a wall-clock duration — the in-process equivalent
of the paper's 60-workstation deployment.

Because this half of the methodology exists to *validate the simulator*,
it reuses the exact protocol classes and metrics pipeline; the shared
wiring lives in the common :class:`~repro.driver.Driver` base class, so
only the execution substrate differs between this cluster and the
discrete-event :class:`~repro.workload.cluster.SimCluster`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.core.aggregation import Aggregate
from repro.core.config import AdaptiveConfig
from repro.driver import Driver
from repro.gossip.config import SystemConfig
from repro.membership.full import FullMembershipView
from repro.runtime.codec import BinaryCodec
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import InMemoryHub, UdpTransport
from repro.sim.rng import RngRegistry

__all__ = ["ThreadedCluster"]


class ThreadedCluster(Driver):
    """A gossip group running on real threads and a real transport.

    Parameters
    ----------
    n_nodes:
        Group size.
    system:
        Gossip parameters. Real runs usually want a short
        ``gossip_period`` (e.g. 0.05–0.2 s) so experiments finish fast.
    protocol:
        ``"lpbcast"``, ``"static"`` or ``"adaptive"`` (or a factory).
    transport:
        ``"memory"`` (default) or ``"udp"`` (localhost sockets).
    """

    def __init__(
        self,
        n_nodes: int,
        system: Optional[SystemConfig] = None,
        protocol: Any = "lpbcast",
        adaptive: Optional[AdaptiveConfig] = None,
        rate_limit: Optional[float] = None,
        aggregate: Optional[Aggregate] = None,
        transport: str = "memory",
        seed: int = 0,
        codec: Optional[Any] = None,
    ) -> None:
        super().__init__(
            n_nodes,
            system=system,
            protocol=protocol,
            adaptive=adaptive,
            rate_limit=rate_limit,
            aggregate=aggregate,
        )
        self.codec = codec if codec is not None else BinaryCodec()
        self._metrics_lock = threading.Lock()
        self._stopped = False
        self._rngs = RngRegistry(seed)

        self._hub = InMemoryHub() if transport == "memory" else None
        self._addr_of: dict[Any, Any] = {}
        self.nodes: dict[Any, RuntimeNode] = {}
        self._t0 = time.monotonic()

        transports = {}
        for node_id in range(n_nodes):
            if transport == "memory":
                endpoint = self._hub.create(node_id)
                self._addr_of[node_id] = node_id
            elif transport == "udp":
                endpoint = UdpTransport()
                self._addr_of[node_id] = endpoint.address
            else:
                raise ValueError(f"unknown transport {transport!r}")
            transports[node_id] = endpoint

        for node_id in range(n_nodes):
            proto = self._build_protocol(
                node_id,
                FullMembershipView(self.directory, node_id),
                self._rngs.stream("protocol", node_id),
                0.0,
            )
            self.nodes[node_id] = RuntimeNode(
                proto,
                transports[node_id],
                self.codec,
                self._addr_of.get,
                gossip_period=self.system.gossip_period,
                clock=self._clock,
                jitter=self.system.round_jitter,
                phase=self.system.round_phase,
            )

    # ------------------------------------------------------------------
    # Driver hooks
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(
        cls,
        spec,
        gossip_period: Optional[float] = None,
        transport: str = "memory",
        **overrides,
    ) -> "ThreadedCluster":
        """Instantiate a declarative scenario on real threads.

        Real runs want short rounds, so the spec's gossip period is
        replaced by ``gossip_period`` (default 0.1 s); everything else of
        the protocol profile carries over. Scenario *schedules* (workload
        offers, timed capacity changes) are driven by
        :func:`repro.scenarios.runner.run_scenario_threaded`, which also
        reports the sim-only conditions (loss, partitions, churn) it has
        to skip. Partial-view membership is likewise a sim-side feature;
        the threaded group always runs on the full directory.
        """
        import dataclasses

        period = 0.1 if gossip_period is None else gossip_period
        system = dataclasses.replace(spec.system, gossip_period=period)
        cluster = cls(
            n_nodes=spec.n_nodes,
            system=system,
            protocol=spec.protocol,
            adaptive=spec.adaptive,
            rate_limit=spec.rate_limit,
            aggregate=spec.aggregate,
            transport=transport,
            seed=spec.seed,
            **overrides,
        )
        # conditions present from t=0 (e.g. slow receivers) apply before
        # the threads start, directly on the still-unshared protocols.
        # Must stay the exact complement of the timed-action queue in
        # run_scenario_threaded, which excludes t=0 CapacityChanges.
        from repro.workload.dynamics import CapacityChange

        for change in spec.resources.changes:
            if change.time == 0.0 and isinstance(change, CapacityChange):
                for node in change.nodes:
                    if node in cluster.nodes:
                        cluster.nodes[node].protocol.set_buffer_capacity(
                            change.capacity, 0.0
                        )
        return cluster

    def _default_system(self) -> SystemConfig:
        # real runs want short rounds so experiments finish fast
        return SystemConfig(gossip_period=0.1)

    def _default_bucket_width(self) -> float:
        return max(0.1, self.system.gossip_period)

    # ------------------------------------------------------------------
    # clocks & metrics plumbing
    # ------------------------------------------------------------------
    def _clock(self) -> float:
        """Cluster-relative wall clock (metrics buckets start at 0)."""
        return time.monotonic() - self._t0

    def _bind_deliver(self, node_id: Any):
        """Like the base binding, but serialised behind the metrics lock."""
        collector = self.metrics
        lock = self._metrics_lock

        def deliver_fn(event_id, payload, now):
            with lock:
                collector.on_deliver(node_id, event_id, now)

        return deliver_fn

    def _bind_drop(self, node_id: Any):
        """Like the base binding, but serialised behind the metrics lock."""
        collector = self.metrics
        lock = self._metrics_lock

        def drop_fn(event_id, age, reason, now):
            with lock:
                collector.on_drop(node_id, event_id, age, reason, now)

        return drop_fn

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def start(self) -> None:
        for node in self.nodes.values():
            node.start()

    def broadcast(self, node_id: Any, payload: Any = None) -> None:
        """Offer a broadcast through ``node_id`` (admission on its thread)."""
        self.nodes[node_id].broadcast(payload)

    def set_capacity(self, node_id: Any, capacity: int) -> None:
        """Change a node's buffer capacity, safely, while it runs.

        The change is queued onto the node's own thread (the protocol is
        never touched cross-thread) — the threaded counterpart of
        :meth:`repro.workload.cluster.SimCluster.set_capacity`.
        """

        def apply(protocol, now: float) -> None:
            protocol.set_buffer_capacity(capacity, now)

        self.nodes[node_id].invoke(apply)

    def note_admitted(self, node_id: Any, event_id, when: Optional[float] = None) -> None:
        """Record an admission in the metrics (used by runtime tests)."""
        with self._metrics_lock:
            self.metrics.on_admitted(node_id, event_id, when if when is not None else self._clock())

    def run_for(self, duration: float) -> None:
        """Start (if needed), run for ``duration`` wall seconds, stop.

        One-shot, unlike the simulator's repeatable
        :meth:`~repro.workload.cluster.SimCluster.run_for`: real threads
        cannot be restarted once joined, so the teardown is final. For
        incremental wall-clock phases call :meth:`start`, sleep between
        observations, then :meth:`stop` once.
        """
        if self._stopped:
            raise RuntimeError(
                "this cluster has been stopped; its threads and transports "
                "cannot be reused — build a fresh ThreadedCluster"
            )
        if not any(n.is_alive() for n in self.nodes.values()):
            self.start()
        time.sleep(duration)
        self.stop()

    def stop(self) -> None:
        # consumes the cluster whether or not it ever started: shutdown
        # closes the transports, so the nodes can never run afterwards
        self._stopped = True
        for node in self.nodes.values():
            node.shutdown()
