"""Transports for the real-time runtime.

A transport delivers opaque datagrams between addresses. The
:class:`Transport` protocol names the contract; two base transports are
provided:

* :class:`InMemoryTransport` — endpoints registered on a shared
  :class:`InMemoryHub`; delivery is a thread-safe queue hand-off.
  Deterministic enough for CI, no sockets involved.
* :class:`UdpTransport` — real UDP on localhost (or a LAN), mirroring
  the paper's prototype deployment. Gossip tolerates datagram loss by
  design, so UDP's best-effort semantics are exactly right.

Both expose the same blocking ``recv(timeout)`` interface the node loop
consumes.

On top of either sits :class:`ChaosTransport`, a composable decorator
that injects the adverse network conditions the simulator models —
Bernoulli/burst loss, latency distributions, bandwidth caps and
partitions — into *real* sends. One shared :class:`ChaosRules` value
holds the live rule set for a whole cluster (fault schedulers mutate it
mid-run from any thread); each wrapped endpoint draws its drop/delay
decisions from its own per-node seeded RNG, so a given seed always
produces the same decision sequence on a given send sequence. Delayed
datagrams ride a single shared :class:`DelayLine` thread per rule set.
The loss/latency vocabularies are the simulator's own
(:class:`~repro.sim.network.LossModel` / ``LatencyModel``), so a
scenario's network environment lowers onto the threaded runtime without
translation.
"""

from __future__ import annotations

import heapq
import queue
import random
import socket
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Optional, Protocol, Sequence, runtime_checkable

from repro.sim.network import (
    RateWindow,
    build_partition_map,
    crosses_oneway,
    crosses_partition,
)
from repro.sim.rng import derive_seed

__all__ = [
    "Transport",
    "InMemoryHub",
    "InMemoryTransport",
    "UdpTransport",
    "ChaosStats",
    "ChaosRules",
    "ChaosTransport",
    "DelayLine",
]


@runtime_checkable
class Transport(Protocol):
    """What the node loop needs from a transport endpoint.

    Structural: anything with an ``address``, a non-blocking-ish
    ``send`` and a blocking ``recv(timeout)`` qualifies — the in-memory
    hub endpoint, a UDP socket, or a chaos decorator around either.
    """

    address: Any

    def send(self, dest: Any, data: bytes) -> bool: ...

    def recv(self, timeout: float) -> Optional[tuple[bytes, Any]]: ...

    def close(self) -> None: ...


class InMemoryHub:
    """Shared registry connecting in-memory endpoints by address."""

    def __init__(self) -> None:
        self._endpoints: dict[object, "InMemoryTransport"] = {}
        self._lock = threading.Lock()
        self.dropped = 0

    def create(self, address: object, max_queue: int = 1024) -> "InMemoryTransport":
        """Register a new endpoint at ``address``."""
        transport = InMemoryTransport(self, address, max_queue)
        with self._lock:
            if address in self._endpoints:
                raise ValueError(f"address {address!r} already registered")
            self._endpoints[address] = transport
        return transport

    def _route(self, dest: object, data: bytes, src: object) -> bool:
        with self._lock:
            endpoint = self._endpoints.get(dest)
        if endpoint is None:
            self.dropped += 1
            return False
        return endpoint._enqueue(data, src)

    def _remove(self, address: object, transport: Optional["InMemoryTransport"] = None) -> None:
        with self._lock:
            # identity-checked: a late close of a *retired* endpoint
            # (e.g. a leave-grace timer firing after the node rejoined)
            # must not unregister the fresh endpoint at the same address
            if transport is None or self._endpoints.get(address) is transport:
                self._endpoints.pop(address, None)

    def addresses(self) -> list[object]:
        """All currently registered endpoint addresses."""
        with self._lock:
            return list(self._endpoints)


class InMemoryTransport:
    """One endpoint on an :class:`InMemoryHub`."""

    def __init__(self, hub: InMemoryHub, address: object, max_queue: int) -> None:
        self._hub = hub
        self.address = address
        self._queue: "queue.Queue[tuple[bytes, object]]" = queue.Queue(max_queue)
        self._closed = False

    def send(self, dest: object, data: bytes) -> bool:
        """Deliver ``data`` to ``dest``'s queue; False if unknown/full."""
        if self._closed:
            raise RuntimeError("transport closed")
        return self._hub._route(dest, data, self.address)

    def _enqueue(self, data: bytes, src: object) -> bool:
        try:
            self._queue.put_nowait((data, src))
            return True
        except queue.Full:
            # Best-effort like UDP: drop on overrun.
            self._hub.dropped += 1
            return False

    def recv(self, timeout: float) -> Optional[tuple[bytes, object]]:
        """Blocking receive; None on timeout."""
        try:
            return self._queue.get(timeout=max(0.0, timeout))
        except queue.Empty:
            return None

    def close(self) -> None:
        """Unregister from the hub; further sends raise."""
        self._closed = True
        self._hub._remove(self.address, self)


class UdpTransport:
    """A UDP socket endpoint; addresses are ``(host, port)`` pairs."""

    MAX_DATAGRAM = 65507

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self.address = self._sock.getsockname()
        self._closed = False

    def send(self, dest: tuple[str, int], data: bytes) -> bool:
        """Send one datagram; False on OS-level send failure."""
        if self._closed:
            raise RuntimeError("transport closed")
        if len(data) > self.MAX_DATAGRAM:
            raise ValueError(f"datagram too large: {len(data)} bytes")
        try:
            self._sock.sendto(data, dest)
            return True
        except OSError:
            return False

    def recv(self, timeout: float) -> Optional[tuple[bytes, tuple[str, int]]]:
        """Blocking receive; None on timeout or if closed mid-wait."""
        self._sock.settimeout(max(1e-4, timeout))
        try:
            data, src = self._sock.recvfrom(self.MAX_DATAGRAM)
            return data, src
        except (TimeoutError, socket.timeout):
            return None
        except OSError:
            return None  # closed under us

    def close(self) -> None:
        """Close the socket; a blocked recv returns None."""
        self._closed = True
        self._sock.close()


# ----------------------------------------------------------------------
# fault injection
# ----------------------------------------------------------------------
@dataclass
class ChaosStats:
    """What the chaos layer did to traffic (whole rule set, all nodes)."""

    sent: int = 0  # passed through (possibly after a delay)
    dropped: int = 0  # eaten by the loss model
    delayed: int = 0  # forwarded late through the delay line
    capped: int = 0  # eaten by the bandwidth cap
    blocked: int = 0  # eaten by an open partition
    oneway_blocked: int = 0  # eaten by a one-way (directed) cut
    link_dropped: int = 0  # eaten by the per-link loss matrix

    @property
    def eaten(self) -> int:
        """Everything that never reached the wire."""
        return (
            self.dropped
            + self.capped
            + self.blocked
            + self.oneway_blocked
            + self.link_dropped
        )


class DelayLine:
    """One shared timer thread forwarding delayed datagrams when due.

    Submissions are (due wall time, thunk) pairs on a heap; a single
    daemon thread (started lazily on first use) pops due entries and
    runs them. Thunks that raise are dropped silently — a delayed send
    races node shutdown by construction, and late datagrams into a
    closed endpoint are exactly UDP semantics.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._cond = threading.Condition()
        self._seq = 0
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def submit(self, due: float, thunk: Callable[[], None]) -> None:
        with self._cond:
            if self._closed:
                return  # shutting down: late traffic is dropped
            heapq.heappush(self._heap, (due, self._seq, thunk))
            self._seq += 1
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._run, name="chaos-delay-line", daemon=True
                )
                self._thread.start()
            self._cond.notify()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._closed and (
                    not self._heap or self._heap[0][0] > time.monotonic()
                ):
                    wait = (
                        self._heap[0][0] - time.monotonic() if self._heap else None
                    )
                    self._cond.wait(timeout=wait if wait is None or wait > 0 else 0)
                if self._closed:
                    return
                _, _, thunk = heapq.heappop(self._heap)
            try:
                thunk()
            except Exception:
                pass  # endpoint closed under us: best-effort, like the wire

    def close(self) -> None:
        """Stop the thread; pending delayed datagrams are dropped."""
        with self._cond:
            self._closed = True
            self._heap.clear()
            self._cond.notify_all()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)


class ChaosRules:
    """The live fault rule set one cluster's chaos endpoints consult.

    Thread-safety: mutators may be called from any thread (the scenario
    fault scheduler lives on the feeder thread, decisions happen on node
    threads); every read/write of the rule state goes through one lock.
    Decision RNGs live in the per-endpoint :class:`ChaosTransport`, not
    here, so rule mutations never perturb another node's random stream.

    Parameters
    ----------
    loss / latency:
        Initial models — the simulator's own vocabularies
        (:class:`~repro.sim.network.LossModel` with
        ``is_lost(src, dst, rng)``, ``LatencyModel`` with
        ``sample(src, dst, rng)``); either may be None.
    latency_scale:
        Multiplier applied to sampled latencies — threaded scenario runs
        compress spec time onto a shorter wall clock, and link delays
        must shrink with it.
    clock:
        Time source for bandwidth-cap window accounting. Delayed
        datagrams always ride wall time (the delay line's thread waits
        on ``time.monotonic``), so an injected clock shapes cap windows
        only.
    node_of:
        Maps transport addresses back to protocol node ids (identity by
        default — correct for the in-memory hub, where address == id);
        loss/latency/partition rules all speak node ids.
    """

    def __init__(
        self,
        loss: Optional[Any] = None,
        latency: Optional[Any] = None,
        latency_scale: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
        node_of: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        if latency_scale <= 0:
            raise ValueError("latency_scale must be > 0")
        self._lock = threading.Lock()
        self._loss = loss
        self._latency = latency
        self._latency_scale = latency_scale
        self._cap = RateWindow()
        self._partition_of: dict[Any, int] = {}
        self._oneway_of: dict[Any, int] = {}
        self._oneway_blocked: frozenset = frozenset()
        self._link_loss: Optional[dict] = None
        self._clock = clock
        self._node_of = node_of if node_of is not None else lambda addr: addr
        self.stats = ChaosStats()
        self.delay_line = DelayLine()

    # ------------------------------------------------------------------
    # rule mutation (any thread)
    # ------------------------------------------------------------------
    def bind_address_map(self, node_of: Callable[[Any], Any]) -> None:
        """Install the address→node translation (clusters wire this)."""
        self._node_of = node_of

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Install the cap-accounting clock (clusters wire this).

        Scenario lowering binds a *spec-time* clock (wall seconds
        divided by the run's time scale), so cap windows bucket per
        spec second exactly like the simulator's network — same budget
        granularity, not just the same average rate.
        """
        with self._lock:
            self._clock = clock
            self._cap.set(self._cap.rate)  # restart the current window

    def set_loss(self, loss: Optional[Any]) -> None:
        """Install (or clear) the loss model."""
        with self._lock:
            self._loss = loss

    def set_latency(self, latency: Optional[Any]) -> None:
        """Install (or clear) the latency model."""
        with self._lock:
            self._latency = latency

    def set_bandwidth_cap(self, rate: Optional[float]) -> None:
        """Cap throughput at ``rate`` datagrams per wall second.

        The accounting is the simulator's own
        :class:`~repro.sim.network.RateWindow` (one-second windows), so
        the two drivers share the semantics, not just the name.
        """
        window = RateWindow()
        window.set(rate)  # validate outside the lock
        with self._lock:
            self._cap = window

    def partition(self, groups: Sequence[Sequence[Any]]) -> None:
        """Split the group: sends may only cross within one group.

        Nodes not named in any group share the implicit group ``-1`` —
        the simulator's convention (the map and the crossing check are
        the simulator's own helpers).
        """
        partition_of = build_partition_map(groups)
        with self._lock:
            self._partition_of = partition_of

    def heal(self) -> None:
        """Remove any partition (one-way cuts are a separate knob)."""
        with self._lock:
            self._partition_of = {}

    def partition_oneway(
        self, groups: Sequence[Sequence[Any]], blocked: Sequence[Sequence[int]]
    ) -> None:
        """Cut the *directed* group edges in ``blocked``.

        Same semantics as the simulator's
        :meth:`~repro.sim.network.Network.partition_oneway` (the map and
        the crossing check are the simulator's own helpers): ``groups``
        splits the nodes, ``blocked`` names ``(src_group, dst_group)``
        index pairs that can no longer be crossed; the reverse direction
        still flows. Independent of :meth:`partition`.
        """
        oneway_of = build_partition_map(groups)
        oneway_blocked = frozenset((a, b) for a, b in blocked)
        with self._lock:
            self._oneway_of = oneway_of
            self._oneway_blocked = oneway_blocked

    def heal_oneway(self) -> None:
        """Remove any one-way cut."""
        with self._lock:
            self._oneway_of = {}
            self._oneway_blocked = frozenset()

    def set_link_loss(self, matrix: Optional[dict]) -> None:
        """Install (or with ``None`` clear) a sparse per-link loss matrix.

        ``matrix`` maps ``(src, dst)`` node-id pairs to loss
        probabilities; pairs without an entry are unaffected. Consulted
        *after* the global loss model and only draws from the RNG for
        pairs with an entry — the simulator's contract.
        """
        frozen = dict(matrix) if matrix else None
        with self._lock:
            self._link_loss = frozen

    # ------------------------------------------------------------------
    # the decision (sender's node thread)
    # ------------------------------------------------------------------
    def plan(self, src: Any, dest_addr: Any, rng: random.Random) -> Optional[float]:
        """Decide one send's fate: None = eat it, else delay in seconds.

        Rule order mirrors the simulator's network: partition and cap
        filtering happen *before* the loss model, so the RNG stream of
        drop decisions is untouched by non-random rules, and the latency
        draw happens last. The whole decision runs inside one lock
        acquisition — loss models may be stateful (``BurstLoss`` mutates
        per decision) and are shared by every node thread, so the model
        call itself must be serialised, not just the rule snapshot.
        """
        dst = self._node_of(dest_addr)
        with self._lock:
            stats = self.stats
            if crosses_partition(self._partition_of, src, dst):
                stats.blocked += 1
                return None
            if self._oneway_blocked and crosses_oneway(
                self._oneway_of, self._oneway_blocked, src, dst
            ):
                stats.oneway_blocked += 1
                return None
            if self._cap.rate is not None and self._cap.exceeded(self._clock()):
                stats.capped += 1
                return None
            if self._loss is not None and self._loss.is_lost(src, dst, rng):
                stats.dropped += 1
                return None
            if self._link_loss is not None:
                p = self._link_loss.get((src, dst))
                if p is not None and rng.random() < p:
                    stats.link_dropped += 1
                    return None
            if self._latency is not None:
                delay = self._latency.sample(src, dst, rng) * self._latency_scale
                if delay > 0:
                    stats.delayed += 1
                    return delay
        return 0.0

    def note_sent(self) -> None:
        """Count one datagram that actually reached the inner transport."""
        with self._lock:
            self.stats.sent += 1

    def close(self) -> None:
        """Tear down the delay line (pending delayed datagrams drop)."""
        self.delay_line.close()


class ChaosTransport:
    """A fault-injecting decorator around any :class:`Transport`.

    Receives pass straight through; sends consult the shared
    :class:`ChaosRules` with this endpoint's own seeded RNG. Dropped,
    capped and partition-blocked datagrams report ``True`` to the caller
    — like the real network, the sender cannot tell a lost datagram from
    a delivered one (only hub-level failures like an unknown address
    still report ``False``).
    """

    def __init__(
        self,
        inner: Transport,
        rules: ChaosRules,
        node: Any,
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self.rules = rules
        self.node = node
        self.address = inner.address
        self.rng = random.Random(derive_seed(seed, "chaos", node))

    def send(self, dest: Any, data: bytes) -> bool:
        rules = self.rules
        verdict = rules.plan(self.node, dest, self.rng)
        if verdict is None:
            return True  # eaten: indistinguishable from wire loss
        if verdict <= 0.0:
            ok = self.inner.send(dest, data)
            if ok:
                rules.note_sent()
            return ok
        inner = self.inner

        def forward() -> None:
            # counted as sent only when the wire actually takes it —
            # a delay line torn down mid-flight drops the datagram and
            # must not inflate the pass-through count
            if inner.send(dest, data):
                rules.note_sent()

        rules.delay_line.submit(time.monotonic() + verdict, forward)
        return True

    def recv(self, timeout: float) -> Optional[tuple[bytes, Any]]:
        return self.inner.recv(timeout)

    def close(self) -> None:
        self.inner.close()
