"""Transports for the real-time runtime.

A transport delivers opaque datagrams between addresses. Two are
provided:

* :class:`InMemoryTransport` — endpoints registered on a shared
  :class:`InMemoryHub`; delivery is a thread-safe queue hand-off.
  Deterministic enough for CI, no sockets involved.
* :class:`UdpTransport` — real UDP on localhost (or a LAN), mirroring
  the paper's prototype deployment. Gossip tolerates datagram loss by
  design, so UDP's best-effort semantics are exactly right.

Both expose the same blocking ``recv(timeout)`` interface the node loop
consumes.
"""

from __future__ import annotations

import queue
import socket
import threading
from typing import Optional

__all__ = ["InMemoryHub", "InMemoryTransport", "UdpTransport"]


class InMemoryHub:
    """Shared registry connecting in-memory endpoints by address."""

    def __init__(self) -> None:
        self._endpoints: dict[object, "InMemoryTransport"] = {}
        self._lock = threading.Lock()
        self.dropped = 0

    def create(self, address: object, max_queue: int = 1024) -> "InMemoryTransport":
        """Register a new endpoint at ``address``."""
        transport = InMemoryTransport(self, address, max_queue)
        with self._lock:
            if address in self._endpoints:
                raise ValueError(f"address {address!r} already registered")
            self._endpoints[address] = transport
        return transport

    def _route(self, dest: object, data: bytes, src: object) -> bool:
        with self._lock:
            endpoint = self._endpoints.get(dest)
        if endpoint is None:
            self.dropped += 1
            return False
        return endpoint._enqueue(data, src)

    def _remove(self, address: object) -> None:
        with self._lock:
            self._endpoints.pop(address, None)

    def addresses(self) -> list[object]:
        """All currently registered endpoint addresses."""
        with self._lock:
            return list(self._endpoints)


class InMemoryTransport:
    """One endpoint on an :class:`InMemoryHub`."""

    def __init__(self, hub: InMemoryHub, address: object, max_queue: int) -> None:
        self._hub = hub
        self.address = address
        self._queue: "queue.Queue[tuple[bytes, object]]" = queue.Queue(max_queue)
        self._closed = False

    def send(self, dest: object, data: bytes) -> bool:
        """Deliver ``data`` to ``dest``'s queue; False if unknown/full."""
        if self._closed:
            raise RuntimeError("transport closed")
        return self._hub._route(dest, data, self.address)

    def _enqueue(self, data: bytes, src: object) -> bool:
        try:
            self._queue.put_nowait((data, src))
            return True
        except queue.Full:
            # Best-effort like UDP: drop on overrun.
            self._hub.dropped += 1
            return False

    def recv(self, timeout: float) -> Optional[tuple[bytes, object]]:
        """Blocking receive; None on timeout."""
        try:
            return self._queue.get(timeout=max(0.0, timeout))
        except queue.Empty:
            return None

    def close(self) -> None:
        """Unregister from the hub; further sends raise."""
        self._closed = True
        self._hub._remove(self.address)


class UdpTransport:
    """A UDP socket endpoint; addresses are ``(host, port)`` pairs."""

    MAX_DATAGRAM = 65507

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.bind((host, port))
        self.address = self._sock.getsockname()
        self._closed = False

    def send(self, dest: tuple[str, int], data: bytes) -> bool:
        """Send one datagram; False on OS-level send failure."""
        if self._closed:
            raise RuntimeError("transport closed")
        if len(data) > self.MAX_DATAGRAM:
            raise ValueError(f"datagram too large: {len(data)} bytes")
        try:
            self._sock.sendto(data, dest)
            return True
        except OSError:
            return False

    def recv(self, timeout: float) -> Optional[tuple[bytes, tuple[str, int]]]:
        """Blocking receive; None on timeout or if closed mid-wait."""
        self._sock.settimeout(max(1e-4, timeout))
        try:
            data, src = self._sock.recvfrom(self.MAX_DATAGRAM)
            return data, src
        except (TimeoutError, socket.timeout):
            return None
        except OSError:
            return None  # closed under us

    def close(self) -> None:
        """Close the socket; a blocked recv returns None."""
        self._closed = True
        self._sock.close()
