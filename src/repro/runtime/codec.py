"""Wire codecs for gossip messages.

Two interchangeable codecs serialise :class:`~repro.gossip.protocol.GossipMessage`:

* :class:`BinaryCodec` — a compact, versioned, self-describing binary
  format (type-tagged values, zigzag varints). This is what the UDP
  transport uses; one gossip message with a 90-event buffer fits well
  under a UDP datagram.
* :class:`JsonCodec` — human-readable, for debugging and interop tests.

Both round-trip every value type a protocol can legally put on the wire:
ints, strings, floats, bools, None, bytes, and (nested) tuples — which
covers event ids, κ-smallest aggregate states and pub/sub addresses.

Wire version 2 carries events *columnar* — all ids, then all ages, then
all payloads — and both decoders materialise them as
:class:`~repro.gossip.events.EventColumns` (anchored at base round 0),
so the threaded runtime and the simulator hand protocols one and the
same message shape. Row-form event tuples are accepted on encode and
written in the identical columnar layout; equality between the two
forms is semantic, so ``decode(encode(m)) == m`` holds for both.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional

from repro.gossip.events import EventColumns, EventId
from repro.gossip.protocol import AdaptiveHeader, GossipMessage, MembershipHeader

__all__ = ["CodecError", "BinaryCodec", "JsonCodec"]

_MAGIC = 0xAD
_VERSION = 2

# message kinds (1 byte on the wire)
_KINDS = ("gossip", "multicast", "digest", "request", "reply")
_KIND_CODE = {k: i for i, k in enumerate(_KINDS)}

# value type tags
_T_NONE = 0
_T_INT = 1
_T_STR = 2
_T_FLOAT = 3
_T_TUPLE = 4
_T_BYTES = 5
_T_TRUE = 6
_T_FALSE = 7


class CodecError(ValueError):
    """Raised for malformed wire data or unencodable values."""


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63) if n < 0 else n << 1


def _unzigzag(n: int) -> int:
    return (n >> 1) ^ -(n & 1)


def _write_uvarint(out: bytearray, n: int) -> None:
    if n < 0:
        raise CodecError("uvarint cannot encode negatives")
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise CodecError("truncated message")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def byte(self) -> int:
        return self.take(1)[0]

    def uvarint(self) -> int:
        shift = 0
        result = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")


# ----------------------------------------------------------------------
# tagged values
# ----------------------------------------------------------------------
def _write_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_uvarint(out, _zigzag(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        _write_uvarint(out, len(value))
        out.extend(value)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    else:
        raise CodecError(f"cannot encode {type(value).__name__} on the wire")


def _read_value(r: _Reader) -> Any:
    tag = r.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _unzigzag(r.uvarint())
    if tag == _T_STR:
        return r.take(r.uvarint()).decode("utf-8")
    if tag == _T_FLOAT:
        return struct.unpack(">d", r.take(8))[0]
    if tag == _T_BYTES:
        return bytes(r.take(r.uvarint()))
    if tag == _T_TUPLE:
        return tuple(_read_value(r) for _ in range(r.uvarint()))
    raise CodecError(f"unknown value tag {tag}")


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
def _as_columns(events) -> tuple[tuple, tuple, tuple]:
    """Extract (ids, ages, payloads) from either event form."""
    if type(events) is EventColumns:
        return events.ids, events.ages, events.payloads
    if not events:
        return (), (), ()
    ids, ages, payloads = zip(*events)
    return ids, ages, payloads


class BinaryCodec:
    """Compact binary encoding of gossip messages."""

    def encode(self, message: GossipMessage) -> bytes:
        """Serialise a message to the compact binary wire format."""
        kind = _KIND_CODE.get(message.kind)
        if kind is None:
            raise CodecError(f"unknown message kind {message.kind!r}")
        out = bytearray((_MAGIC, _VERSION, kind))
        _write_value(out, message.sender)
        ids, ages, payloads = _as_columns(message.events)
        _write_uvarint(out, len(ids))
        for event_id in ids:
            _write_value(out, event_id.origin)
            _write_uvarint(out, event_id.seq)
        for age in ages:
            _write_uvarint(out, age)
        for payload in payloads:
            _write_value(out, payload)
        if message.adaptive is None:
            out.append(0)
        else:
            out.append(1)
            _write_uvarint(out, _zigzag(message.adaptive.period))
            _write_value(out, message.adaptive.min_buff)
        if message.membership is None:
            out.append(0)
        else:
            out.append(1)
            _write_value(out, tuple(message.membership.subs))
            _write_value(out, tuple(message.membership.unsubs))
        return bytes(out)

    def decode(self, data: bytes) -> GossipMessage:
        """Parse wire bytes; raises :class:`CodecError` on malformed input."""
        r = _Reader(data)
        if r.byte() != _MAGIC:
            raise CodecError("bad magic")
        version = r.byte()
        if version != _VERSION:
            raise CodecError(f"unsupported version {version}")
        kind_code = r.byte()
        if kind_code >= len(_KINDS):
            raise CodecError(f"unknown message kind code {kind_code}")
        sender = _read_value(r)
        n_events = r.uvarint()
        ids = tuple(
            EventId(_read_value(r), r.uvarint()) for _ in range(n_events)
        )
        anchors = tuple(-r.uvarint() for _ in range(n_events))
        payloads = tuple(_read_value(r) for _ in range(n_events))
        events = EventColumns(ids, 0, anchors, payloads)
        adaptive: Optional[AdaptiveHeader] = None
        if r.byte():
            period = _unzigzag(r.uvarint())
            min_buff = _read_value(r)
            adaptive = AdaptiveHeader(period, min_buff)
        membership: Optional[MembershipHeader] = None
        if r.byte():
            subs = _read_value(r)
            unsubs = _read_value(r)
            membership = MembershipHeader(subs, unsubs)
        if r.pos != len(data):
            raise CodecError("trailing garbage")
        return GossipMessage(
            sender=sender,
            events=events,
            adaptive=adaptive,
            membership=membership,
            kind=_KINDS[kind_code],
        )


class JsonCodec:
    """JSON encoding (tuples tagged to survive the round-trip)."""

    def encode(self, message: GossipMessage) -> bytes:
        """Serialise a message as JSON bytes."""
        if message.kind not in _KIND_CODE:
            raise CodecError(f"unknown message kind {message.kind!r}")
        ids, ages, payloads = _as_columns(message.events)
        doc = {
            "v": _VERSION,
            "kind": message.kind,
            "sender": _jsonify(message.sender),
            "events": {
                "ids": [[_jsonify(eid.origin), eid.seq] for eid in ids],
                "ages": list(ages),
                "payloads": [_jsonify(p) for p in payloads],
            },
            "adaptive": (
                None
                if message.adaptive is None
                else [message.adaptive.period, _jsonify(message.adaptive.min_buff)]
            ),
            "membership": (
                None
                if message.membership is None
                else [
                    [_jsonify(s) for s in message.membership.subs],
                    [_jsonify(u) for u in message.membership.unsubs],
                ]
            ),
        }
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    def decode(self, data: bytes) -> GossipMessage:
        """Parse JSON bytes; raises :class:`CodecError` on malformed input."""
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"bad json: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("v") != _VERSION:
            raise CodecError("unsupported json document")
        try:
            columns = doc["events"]
            ids = tuple(
                EventId(_unjsonify(origin), seq) for origin, seq in columns["ids"]
            )
            anchors = tuple(-age for age in columns["ages"])
            payloads = tuple(_unjsonify(p) for p in columns["payloads"])
            if not len(ids) == len(anchors) == len(payloads):
                raise ValueError("event columns have unequal lengths")
            events = EventColumns(ids, 0, anchors, payloads)
            adaptive = doc["adaptive"]
            membership = doc["membership"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"malformed document: {exc}") from exc
        kind = doc.get("kind", "gossip")
        if kind not in _KIND_CODE:
            raise CodecError(f"unknown message kind {kind!r}")
        return GossipMessage(
            sender=_unjsonify(doc["sender"]),
            events=events,
            kind=kind,
            adaptive=(
                None
                if adaptive is None
                else AdaptiveHeader(adaptive[0], _unjsonify(adaptive[1]))
            ),
            membership=(
                None
                if membership is None
                else MembershipHeader(
                    tuple(_unjsonify(s) for s in membership[0]),
                    tuple(_unjsonify(u) for u in membership[1]),
                )
            ),
        )


def _jsonify(value: Any) -> Any:
    """Tag tuples so JSON arrays round-trip back to tuples."""
    if isinstance(value, tuple):
        return {"t": [_jsonify(v) for v in value]}
    if isinstance(value, bytes):
        return {"b": value.hex()}
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    raise CodecError(f"cannot encode {type(value).__name__} as json")


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if "t" in value:
            return tuple(_unjsonify(v) for v in value["t"])
        if "b" in value:
            return bytes.fromhex(value["b"])
        raise CodecError("unknown json tag")
    return value
