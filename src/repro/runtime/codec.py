"""Wire codecs for gossip messages.

Two interchangeable codecs serialise :class:`~repro.gossip.protocol.GossipMessage`:

* :class:`BinaryCodec` — a compact, versioned, self-describing binary
  format (type-tagged values, zigzag varints). This is what the UDP
  transport uses; one gossip message with a 90-event buffer fits well
  under a UDP datagram.
* :class:`JsonCodec` — human-readable, for debugging and interop tests.

Both round-trip every value type a protocol can legally put on the wire:
ints, strings, floats, bools, None, bytes, and (nested) tuples — which
covers event ids, κ-smallest aggregate states and pub/sub addresses.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Optional

from repro.gossip.events import EventId, EventSummary
from repro.gossip.protocol import AdaptiveHeader, GossipMessage, MembershipHeader

__all__ = ["CodecError", "BinaryCodec", "JsonCodec"]

_MAGIC = 0xAD
_VERSION = 1

# message kinds (1 byte on the wire)
_KINDS = ("gossip", "multicast", "digest", "request", "reply")
_KIND_CODE = {k: i for i, k in enumerate(_KINDS)}

# value type tags
_T_NONE = 0
_T_INT = 1
_T_STR = 2
_T_FLOAT = 3
_T_TUPLE = 4
_T_BYTES = 5
_T_TRUE = 6
_T_FALSE = 7


class CodecError(ValueError):
    """Raised for malformed wire data or unencodable values."""


# ----------------------------------------------------------------------
# varints
# ----------------------------------------------------------------------
def _zigzag(n: int) -> int:
    return (n << 1) ^ (n >> 63) if n < 0 else n << 1


def _unzigzag(n: int) -> int:
    return (n >> 1) ^ -(n & 1)


def _write_uvarint(out: bytearray, n: int) -> None:
    if n < 0:
        raise CodecError("uvarint cannot encode negatives")
    while True:
        byte = n & 0x7F
        n >>= 7
        if n:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


class _Reader:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise CodecError("truncated message")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def byte(self) -> int:
        return self.take(1)[0]

    def uvarint(self) -> int:
        shift = 0
        result = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")


# ----------------------------------------------------------------------
# tagged values
# ----------------------------------------------------------------------
def _write_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, int):
        out.append(_T_INT)
        _write_uvarint(out, _zigzag(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        _write_uvarint(out, len(raw))
        out.extend(raw)
    elif isinstance(value, float):
        out.append(_T_FLOAT)
        out.extend(struct.pack(">d", value))
    elif isinstance(value, bytes):
        out.append(_T_BYTES)
        _write_uvarint(out, len(value))
        out.extend(value)
    elif isinstance(value, tuple):
        out.append(_T_TUPLE)
        _write_uvarint(out, len(value))
        for item in value:
            _write_value(out, item)
    else:
        raise CodecError(f"cannot encode {type(value).__name__} on the wire")


def _read_value(r: _Reader) -> Any:
    tag = r.byte()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return _unzigzag(r.uvarint())
    if tag == _T_STR:
        return r.take(r.uvarint()).decode("utf-8")
    if tag == _T_FLOAT:
        return struct.unpack(">d", r.take(8))[0]
    if tag == _T_BYTES:
        return bytes(r.take(r.uvarint()))
    if tag == _T_TUPLE:
        return tuple(_read_value(r) for _ in range(r.uvarint()))
    raise CodecError(f"unknown value tag {tag}")


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
class BinaryCodec:
    """Compact binary encoding of gossip messages."""

    def encode(self, message: GossipMessage) -> bytes:
        """Serialise a message to the compact binary wire format."""
        kind = _KIND_CODE.get(message.kind)
        if kind is None:
            raise CodecError(f"unknown message kind {message.kind!r}")
        out = bytearray((_MAGIC, _VERSION, kind))
        _write_value(out, message.sender)
        _write_uvarint(out, len(message.events))
        for event_id, age, payload in message.events:
            _write_value(out, event_id.origin)
            _write_uvarint(out, event_id.seq)
            _write_uvarint(out, age)
            _write_value(out, payload)
        if message.adaptive is None:
            out.append(0)
        else:
            out.append(1)
            _write_uvarint(out, _zigzag(message.adaptive.period))
            _write_value(out, message.adaptive.min_buff)
        if message.membership is None:
            out.append(0)
        else:
            out.append(1)
            _write_value(out, tuple(message.membership.subs))
            _write_value(out, tuple(message.membership.unsubs))
        return bytes(out)

    def decode(self, data: bytes) -> GossipMessage:
        """Parse wire bytes; raises :class:`CodecError` on malformed input."""
        r = _Reader(data)
        if r.byte() != _MAGIC:
            raise CodecError("bad magic")
        version = r.byte()
        if version != _VERSION:
            raise CodecError(f"unsupported version {version}")
        kind_code = r.byte()
        if kind_code >= len(_KINDS):
            raise CodecError(f"unknown message kind code {kind_code}")
        sender = _read_value(r)
        events = []
        for _ in range(r.uvarint()):
            origin = _read_value(r)
            seq = r.uvarint()
            age = r.uvarint()
            payload = _read_value(r)
            events.append(EventSummary(EventId(origin, seq), age, payload))
        adaptive: Optional[AdaptiveHeader] = None
        if r.byte():
            period = _unzigzag(r.uvarint())
            min_buff = _read_value(r)
            adaptive = AdaptiveHeader(period, min_buff)
        membership: Optional[MembershipHeader] = None
        if r.byte():
            subs = _read_value(r)
            unsubs = _read_value(r)
            membership = MembershipHeader(subs, unsubs)
        if r.pos != len(data):
            raise CodecError("trailing garbage")
        return GossipMessage(
            sender=sender,
            events=tuple(events),
            adaptive=adaptive,
            membership=membership,
            kind=_KINDS[kind_code],
        )


class JsonCodec:
    """JSON encoding (tuples tagged to survive the round-trip)."""

    def encode(self, message: GossipMessage) -> bytes:
        """Serialise a message as JSON bytes."""
        if message.kind not in _KIND_CODE:
            raise CodecError(f"unknown message kind {message.kind!r}")
        doc = {
            "v": _VERSION,
            "kind": message.kind,
            "sender": _jsonify(message.sender),
            "events": [
                [_jsonify(e.id.origin), e.id.seq, e.age, _jsonify(e.payload)]
                for e in message.events
            ],
            "adaptive": (
                None
                if message.adaptive is None
                else [message.adaptive.period, _jsonify(message.adaptive.min_buff)]
            ),
            "membership": (
                None
                if message.membership is None
                else [
                    [_jsonify(s) for s in message.membership.subs],
                    [_jsonify(u) for u in message.membership.unsubs],
                ]
            ),
        }
        return json.dumps(doc, separators=(",", ":")).encode("utf-8")

    def decode(self, data: bytes) -> GossipMessage:
        """Parse JSON bytes; raises :class:`CodecError` on malformed input."""
        try:
            doc = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CodecError(f"bad json: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("v") != _VERSION:
            raise CodecError("unsupported json document")
        try:
            events = tuple(
                EventSummary(
                    EventId(_unjsonify(origin), seq), age, _unjsonify(payload)
                )
                for origin, seq, age, payload in doc["events"]
            )
            adaptive = doc["adaptive"]
            membership = doc["membership"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CodecError(f"malformed document: {exc}") from exc
        kind = doc.get("kind", "gossip")
        if kind not in _KIND_CODE:
            raise CodecError(f"unknown message kind {kind!r}")
        return GossipMessage(
            sender=_unjsonify(doc["sender"]),
            events=events,
            kind=kind,
            adaptive=(
                None
                if adaptive is None
                else AdaptiveHeader(adaptive[0], _unjsonify(adaptive[1]))
            ),
            membership=(
                None
                if membership is None
                else MembershipHeader(
                    tuple(_unjsonify(s) for s in membership[0]),
                    tuple(_unjsonify(u) for u in membership[1]),
                )
            ),
        )


def _jsonify(value: Any) -> Any:
    """Tag tuples so JSON arrays round-trip back to tuples."""
    if isinstance(value, tuple):
        return {"t": [_jsonify(v) for v in value]}
    if isinstance(value, bytes):
        return {"b": value.hex()}
    if value is None or isinstance(value, (int, float, str, bool)):
        return value
    raise CodecError(f"cannot encode {type(value).__name__} as json")


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if "t" in value:
            return tuple(_unjsonify(v) for v in value["t"])
        if "b" in value:
            return bytes.fromhex(value["b"])
        raise CodecError("unknown json tag")
    return value
