"""The per-node runtime thread.

A :class:`RuntimeNode` drives one sans-IO protocol instance with wall
clock time: it fires gossip rounds every ``gossip_period`` (with phase
jitter, like real deployments), decodes and feeds incoming datagrams,
and pushes application offers through the protocol's admission control —
the same loop the paper's Java prototype runs on each workstation.

Thread-safety model: the protocol object is touched *only* by its node's
thread. Cross-thread interaction happens through two safe channels: the
transport's receive queue, and an offer queue fed by :meth:`broadcast`.
Metrics callbacks are serialised by the cluster's shared lock.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Callable, Optional

__all__ = ["RuntimeNode"]


class RuntimeNode(threading.Thread):
    """One node of a real-time gossip group.

    Parameters
    ----------
    protocol:
        A sans-IO protocol instance (baseline, static or adaptive).
    transport:
        A transport endpoint (:mod:`repro.runtime.transport`).
    codec:
        Wire codec (:mod:`repro.runtime.codec`).
    resolve:
        Maps protocol-level node ids to transport addresses.
    gossip_period:
        Wall seconds between rounds.
    clock:
        Time source (``time.monotonic`` by default; injectable for tests).
    jitter / phase:
        Per-tick period jitter (fraction) and first-round offset in
        seconds; ``phase=None`` draws a random offset in ``[0, period)``
        like a real deployment drifting apart.
    on_error:
        Callback for decode errors (malformed datagrams are counted and
        dropped — a real deployment cannot crash on bad input).
    """

    POLL_CAP = 0.05  # max blocking wait, keeps shutdown responsive
    RECV_BATCH = 16  # max packets folded per wakeup (one on_receive_batch)

    def __init__(
        self,
        protocol,
        transport,
        codec,
        resolve: Callable[[Any], Any],
        gossip_period: float,
        clock: Callable[[], float] = time.monotonic,
        jitter: float = 0.05,
        phase: Optional[float] = None,
        on_error: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        if gossip_period <= 0:
            raise ValueError("gossip_period must be > 0")
        node_name = getattr(protocol, "node_id", "unbound")
        super().__init__(name=f"gossip-node-{node_name}", daemon=True)
        self.protocol = protocol
        self.transport = transport
        self.codec = codec
        self.resolve = resolve
        self.gossip_period = gossip_period
        self.clock = clock
        self.jitter = jitter
        self.phase = phase
        self.on_error = on_error
        self._offers: "queue.Queue[Any]" = queue.Queue()
        self._commands: "queue.Queue[Callable[[Any, float], None]]" = queue.Queue()
        self._stop_event = threading.Event()
        self._pending: list[Any] = []
        self.decode_errors = 0
        self.send_failures = 0
        self.offers_admitted = 0
        self.offers_queued = 0

    # ------------------------------------------------------------------
    # application interface (any thread)
    # ------------------------------------------------------------------
    def broadcast(self, payload: Any = None) -> None:
        """Offer one broadcast; admission happens on the node thread."""
        self._offers.put(payload)

    def invoke(self, fn: Callable[[Any, float], None]) -> None:
        """Run ``fn(protocol, now)`` on the node thread, soon.

        The safe channel for runtime reconfiguration (scenario scripts
        changing buffer capacities mid-run): the protocol object is only
        ever touched by its own thread, so cross-thread control must be
        queued, not called.
        """
        self._commands.put(fn)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the loop and join the thread (safe if never started)."""
        self._stop_event.set()
        if self.ident is not None:  # join() raises on a never-started thread
            self.join(timeout=timeout)
        self.transport.close()

    # ------------------------------------------------------------------
    # the loop (node thread only)
    # ------------------------------------------------------------------
    def run(self) -> None:
        rng = self.protocol.rng
        phase = self.phase
        if phase is None:
            phase = rng.uniform(0, self.gossip_period)
        next_round = self.clock() + phase
        while not self._stop_event.is_set():
            now = self.clock()
            if now >= next_round:
                self._fire_round(now)
                period = self.gossip_period
                if self.jitter:
                    period *= rng.uniform(1 - self.jitter, 1 + self.jitter)
                next_round = now + period
                continue
            self._drain_commands(now)
            self._drain_offers(now)
            wait = min(next_round - self.clock(), self.POLL_CAP)
            packet = self.transport.recv(wait)
            if packet is not None:
                self._handle_packets(packet)
        # final drain: a command queued just before shutdown (e.g. the
        # graceful-leave unsubscribe of a scenario churn script) must
        # still reach the protocol before the thread dies — shutdown()
        # joins us and then closes the transport, so this is the last
        # moment the protocol is legally touchable from this thread.
        self._drain_commands(self.clock())

    def _fire_round(self, now: float) -> None:
        for dests, message in self.protocol.on_round_batch(now):
            for dest in dests:
                self._transmit(dest, message)

    def _handle_packets(self, packet: tuple[bytes, Any]) -> None:
        """Decode the packet plus anything else already queued, then fold
        the whole batch through the protocol in one call.

        The cap counts *packets drained*, not messages decoded — a flood
        of malformed datagrams must not keep the loop away from round
        firing any longer than a flood of valid ones would.
        """
        messages = []
        drained = 0
        while True:
            data, _src = packet
            try:
                messages.append(self.codec.decode(data))
            except Exception as exc:  # malformed input must never kill the node
                self.decode_errors += 1
                if self.on_error is not None:
                    self.on_error(exc)
            drained += 1
            if drained >= self.RECV_BATCH:
                break
            packet = self.transport.recv(0.0)
            if packet is None:
                break
        if not messages:
            return
        for dest, reply in self.protocol.on_receive_batch(messages, self.clock()):
            self._transmit(dest, reply)

    def _transmit(self, dest: Any, message: Any) -> None:
        addr = self.resolve(dest)
        if addr is None:
            self.send_failures += 1
            return
        if not self.transport.send(addr, self.codec.encode(message)):
            self.send_failures += 1

    def _drain_commands(self, now: float) -> None:
        while True:
            try:
                fn = self._commands.get_nowait()
            except queue.Empty:
                return
            fn(self.protocol, now)

    def _drain_offers(self, now: float) -> None:
        while True:
            try:
                self._pending.append(self._offers.get_nowait())
            except queue.Empty:
                break
        while self._pending:
            event_id = self.protocol.try_broadcast(self._pending[0], now)
            if event_id is None:
                self.offers_queued = len(self._pending)
                return
            self._pending.pop(0)
            self.offers_admitted += 1
        self.offers_queued = 0
