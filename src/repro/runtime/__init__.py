"""Real-time runtime: the counterpart of the paper's Java prototype.

The paper validates its simulations with "a full implementation, based on
Java 2 Standard Edition … deployed on 60 workstations". This package is
that half of the methodology: the *same* sans-IO protocol objects used by
the simulator, driven by wall-clock threads over a real transport.

* :mod:`repro.runtime.codec` — wire codecs (compact binary and JSON).
* :mod:`repro.runtime.transport` — in-memory hub (tests, CI) and UDP
  sockets (localhost deployments).
* :mod:`repro.runtime.node` — the per-node thread: rounds, receive loop,
  application offers.
* :mod:`repro.runtime.cluster` — convenience builder running a whole
  group in one process.
* :mod:`repro.runtime.process_cluster` / :mod:`repro.runtime.worker` —
  the shared-nothing multi-process driver: shard worker processes on
  asyncio event loops over real UDP sockets, coordinated over control
  pipes.
"""

from repro.runtime.codec import BinaryCodec, CodecError, JsonCodec
from repro.runtime.cluster import ThreadedCluster
from repro.runtime.node import RuntimeNode
from repro.runtime.process_cluster import (
    ProcessCluster,
    ProcessRunResult,
    default_worker_count,
    scenario_identities,
    seeded_port_map,
)
from repro.runtime.worker import WorkerConfig, WorkerReport, worker_main
from repro.runtime.transport import (
    ChaosRules,
    ChaosStats,
    ChaosTransport,
    InMemoryHub,
    InMemoryTransport,
    Transport,
    UdpTransport,
)

__all__ = [
    "BinaryCodec",
    "JsonCodec",
    "CodecError",
    "Transport",
    "InMemoryHub",
    "InMemoryTransport",
    "UdpTransport",
    "ChaosRules",
    "ChaosStats",
    "ChaosTransport",
    "RuntimeNode",
    "ThreadedCluster",
    "ProcessCluster",
    "ProcessRunResult",
    "WorkerConfig",
    "WorkerReport",
    "default_worker_count",
    "scenario_identities",
    "seeded_port_map",
    "worker_main",
]
