"""The asyncio shard worker of the multi-process UDP driver.

One worker process hosts a *shard* of a scenario's nodes on a single
asyncio event loop, each node bound to its own real UDP socket. The
parent (:class:`~repro.runtime.process_cluster.ProcessCluster`) speaks a
small control protocol over a :mod:`multiprocessing` pipe:

* ``("configure", WorkerConfig)`` — the scenario spec, this worker's
  node shard, and the full seeded port map. The worker binds every
  initial member's socket and replies ``("ready", id)`` — or
  ``("bind_failed", id, reason)`` when a port was taken between the
  parent's probe and our bind (the parent then re-derives a whole fresh
  map and respawns).
* ``("start",)`` — the start barrier; the worker stamps its t0 and runs
  the scenario for ``wall_seconds``.
* ``("result", WorkerReport)`` — sent back when the run completes: the
  picklable :class:`~repro.metrics.collector.MetricsCollector` shard,
  per-node delivery counts and the chaos statistics.

Fault parity mirrors the threaded driver exactly, lowered onto the
socket layer: every worker carries its own
:class:`~repro.runtime.transport.ChaosRules` (same drop/latency/
partition/one-way/link-loss/cap vocabularies, per-node seeded decision
RNGs via ``derive_seed(seed, "chaos", node)``), consulted on each
``sendto``; delays ride ``loop.call_later`` instead of a thread.
``CrashWindow``/``ChurnScript`` events stop and restart *real* nodes —
the owning worker tears the socket down (sends to it then vanish into
the void, true UDP semantics) and a restart rebinds the same mapped
port with a fresh protocol instance; every worker replicates the
directory join/leave so full-membership peer selection stays coherent
across processes.

Orphan safety: a watchdog task polls the control pipe — the parent
never sends mid-run, so a readable pipe means abort-or-EOF and the
worker exits promptly; pre-start ``recv`` raises ``EOFError`` if the
parent dies, with the same effect. No leaked processes or sockets.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from dataclasses import dataclass
from random import Random
from typing import Any, Optional

from repro.driver import Driver
from repro.membership.full import FullMembershipView
from repro.membership.views import PartialViewMembership, ViewConfig
from repro.metrics.collector import MetricsCollector
from repro.runtime.codec import BinaryCodec
from repro.runtime.transport import ChaosRules, ChaosStats
from repro.sim.faults import (
    AsymmetricPartitionWindow,
    BandwidthCapWindow,
    CrashWindow,
    LinkLossWindow,
    LossWindow,
    PartitionWindow,
)
from repro.sim.network import BernoulliLoss
from repro.sim.rng import RngRegistry, derive_seed
from repro.workload.dynamics import CapacityChange

__all__ = ["WorkerConfig", "WorkerReport", "ShardWorker", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything one shard worker needs, shipped over the control pipe."""

    worker_id: int
    n_workers: int
    spec: Any  # a picklable ScenarioSpec
    nodes: tuple  # identities this worker owns (including future joiners)
    port_map: dict  # node id -> (host, port), every identity in the run
    gossip_period: float  # wall seconds per round (sets the time scale)
    wall_seconds: float  # run length after the start barrier


@dataclass
class WorkerReport:
    """One shard's results, shipped back over the control pipe."""

    worker_id: int
    offers: int
    admitted: int
    delivered: dict  # node id -> events_delivered (this incarnation)
    duplicates: int
    decode_errors: int
    send_failures: int
    bind_errors: int
    metrics: MetricsCollector  # the shard's collector (parent merges)
    chaos: Optional[ChaosStats]


class _ShardHost(Driver):
    """Driver wiring (directory, metrics, protocol factory) for one shard.

    The directory spans the *whole* group — peer selection must see every
    member, not just the locally-hosted shard — while protocols are only
    instantiated for owned nodes. The execution substrate is the worker's
    event loop, so :meth:`run_for` has no meaning here.
    """

    def _default_bucket_width(self) -> float:
        return max(0.1, self.system.gossip_period)

    def run_for(self, duration: float) -> None:
        raise NotImplementedError("the shard worker's event loop drives this")


class _Receiver(asyncio.DatagramProtocol):
    """Datagram glue: hands received packets to the owning node."""

    def __init__(self, node: "_AsyncNode") -> None:
        self.node = node

    def connection_made(self, transport) -> None:
        self.node.transport = transport

    def datagram_received(self, data: bytes, addr) -> None:
        self.node.on_datagram(data)

    def error_received(self, exc) -> None:
        pass  # ICMP errors are UDP noise; gossip tolerates loss by design


class _AsyncNode:
    """One gossip node on the worker's event loop.

    The asyncio counterpart of :class:`~repro.runtime.node.RuntimeNode`:
    a round task fires ``on_round_batch`` every (jittered) period,
    received datagrams are folded into batched ``on_receive_batch``
    calls, and offers queue through the protocol's admission control
    with the same retry cadence. The protocol object is only ever
    touched from the loop, so no locks exist anywhere in a worker.
    """

    RECV_BATCH = 64  # packets folded per flush; more re-schedules the flush

    def __init__(self, worker: "ShardWorker", node_id, protocol) -> None:
        self.worker = worker
        self.node_id = node_id
        self.protocol = protocol
        self.transport = None
        self.alive = True
        self.chaos_rng = Random(derive_seed(worker.cfg.spec.seed, "chaos", node_id))
        self._inbox: list[bytes] = []
        self._flush_scheduled = False
        self._pending: list[Any] = []
        self._round_task: Optional[asyncio.Task] = None

    async def bind(self) -> None:
        """Bind this node's mapped UDP port (raises OSError if taken)."""
        addr = self.worker.addr_of[self.node_id]
        await self.worker.loop.create_datagram_endpoint(
            lambda: _Receiver(self), local_addr=addr
        )

    def start_tasks(self) -> None:
        if self._round_task is None and self.alive:
            self._round_task = self.worker.loop.create_task(self._round_loop())

    def stop(self) -> None:
        """Silence the node: cancel its round, close its socket. Idempotent."""
        if not self.alive:
            return
        self.alive = False
        if self._round_task is not None:
            self._round_task.cancel()
            self._round_task = None
        if self.transport is not None:
            self.transport.close()
        self._inbox.clear()
        self._pending.clear()

    # ------------------------------------------------------------------
    # application offers (admission on the loop, like the node thread)
    # ------------------------------------------------------------------
    def offer(self, payload: Any = None) -> None:
        self._pending.append(payload)
        self._retry_offers(self.worker.clock())

    def _retry_offers(self, now: float) -> None:
        while self._pending:
            event_id = self.protocol.try_broadcast(self._pending[0], now)
            if event_id is None:
                return  # admission said not yet; retried next wakeup
            self._pending.pop(0)
            self.worker.admitted += 1
            self.worker.host.metrics.on_admitted(self.node_id, event_id, now)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def on_datagram(self, data: bytes) -> None:
        if not self.alive:
            return
        self._inbox.append(data)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self.worker.loop.call_soon(self._flush)

    def _flush(self) -> None:
        self._flush_scheduled = False
        if not self.alive:
            self._inbox.clear()
            return
        batch = self._inbox[: self.RECV_BATCH]
        del self._inbox[: self.RECV_BATCH]
        if self._inbox and not self._flush_scheduled:
            self._flush_scheduled = True
            self.worker.loop.call_soon(self._flush)
        messages = []
        for data in batch:
            try:
                messages.append(self.worker.codec.decode(data))
            except Exception:  # malformed input must never kill the node
                self.worker.decode_errors += 1
        if not messages:
            return
        now = self.worker.clock()
        for dest, reply in self.protocol.on_receive_batch(messages, now):
            self._send_raw(dest, self.worker.codec.encode(reply))

    # ------------------------------------------------------------------
    # round firing
    # ------------------------------------------------------------------
    async def _round_loop(self) -> None:
        worker = self.worker
        rng = self.protocol.rng
        period = worker.gossip_period
        jitter = worker.system.round_jitter
        phase = worker.system.round_phase
        if phase is None:
            phase = rng.uniform(0, period)
        next_round = worker.clock() + phase
        while self.alive:
            now = worker.clock()
            if now < next_round:
                self._retry_offers(now)
                await asyncio.sleep(min(next_round - now, 0.05))
                continue
            self._retry_offers(now)
            for dests, message in self.protocol.on_round_batch(now):
                data = worker.codec.encode(message)
                for dest in dests:
                    self._send_raw(dest, data)
            p = period
            if jitter:
                p *= rng.uniform(1 - jitter, 1 + jitter)
            next_round = now + p

    # ------------------------------------------------------------------
    # send path: the chaos rules live exactly here, at the socket
    # ------------------------------------------------------------------
    def _send_raw(self, dest, data: bytes) -> None:
        worker = self.worker
        addr = worker.addr_of.get(dest)
        if addr is None:
            worker.send_failures += 1
            return
        rules = worker.rules
        if rules is not None:
            verdict = rules.plan(self.node_id, addr, self.chaos_rng)
            if verdict is None:
                return  # eaten: indistinguishable from wire loss
            if verdict > 0.0:
                worker.loop.call_later(verdict, self._send_late, addr, data)
                return
        self._wire(addr, data)
        if rules is not None:
            rules.note_sent()

    def _send_late(self, addr, data: bytes) -> None:
        # a delayed datagram racing node shutdown is dropped, exactly
        # like the threaded DelayLine (and the real wire)
        if not self.alive or self.transport is None or self.transport.is_closing():
            return
        self._wire(addr, data)
        if self.worker.rules is not None:
            self.worker.rules.note_sent()

    def _wire(self, addr, data: bytes) -> None:
        transport = self.transport
        if transport is None or transport.is_closing():
            return
        try:
            transport.sendto(data, addr)
        except OSError:
            self.worker.send_failures += 1


class ShardWorker:
    """One worker process's state: a shard of nodes plus the schedules."""

    LEAVE_GRACE_SLACK = 0.05  # on top of one jittered round, like POLL_CAP

    def __init__(self, cfg: WorkerConfig) -> None:
        spec = cfg.spec
        self.cfg = cfg
        self.gossip_period = cfg.gossip_period
        self.scale = cfg.gossip_period / spec.system.gossip_period
        self.system = dataclasses.replace(spec.system, gossip_period=cfg.gossip_period)
        self.host = _ShardHost(
            spec.n_nodes,
            system=self.system,
            protocol=spec.protocol,
            adaptive=spec.adaptive,
            rate_limit=spec.rate_limit,
            aggregate=spec.aggregate,
        )
        self.codec = BinaryCodec()
        self.rngs = RngRegistry(spec.seed)
        self.addr_of = {node: tuple(addr) for node, addr in cfg.port_map.items()}
        self._own = set(cfg.nodes)
        self.hosted: dict[Any, _AsyncNode] = {}
        self.feeders: list = []
        self.actions: list = []
        self.offers = 0
        self.admitted = 0
        self.decode_errors = 0
        self.send_failures = 0
        self.bind_errors = 0
        self.started = False
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._tasks: list[asyncio.Task] = []
        self._t0: Optional[float] = None

        self.rules: Optional[ChaosRules] = None
        if spec.wire_conditions:
            rules = ChaosRules(
                loss=spec.baseline_loss,
                latency=spec.build_latency(),
                latency_scale=self.scale,
            )
            node_by_addr = {addr: node for node, addr in self.addr_of.items()}
            rules.bind_address_map(lambda addr: node_by_addr.get(addr, addr))
            # cap windows bucket per *spec* second, the simulator's
            # granularity (see ThreadedCluster.from_scenario)
            rules.bind_clock(lambda: self.clock() / self.scale)
            self.rules = rules

    def clock(self) -> float:
        """Run-relative wall clock; 0 until the start barrier."""
        return 0.0 if self._t0 is None else time.monotonic() - self._t0

    # ------------------------------------------------------------------
    # construction (pre-start, on the loop)
    # ------------------------------------------------------------------
    async def bind_initial(self) -> None:
        """Bind and build every initially-alive owned node, then lower
        the t=0 conditions and compile the schedules. OSError propagates
        to the caller (a bind race the parent resolves by re-mapping)."""
        self.loop = asyncio.get_running_loop()
        spec = self.cfg.spec
        for node_id in sorted(self._own):
            if 0 <= node_id < spec.n_nodes:  # later joiners spawn on cue
                await self._spawn_node(node_id)
        # conditions present from t=0 apply before the run, directly on
        # the still-idle protocols — the complement of the timed actions,
        # mirroring ThreadedCluster.from_scenario exactly
        for change in spec.resources.changes:
            if change.time == 0.0 and isinstance(change, CapacityChange):
                for node in change.nodes:
                    if node in self.hosted:
                        self.hosted[node].protocol.set_buffer_capacity(
                            change.capacity, 0.0
                        )
        from repro.scenarios.runner import _Feeder  # lazy: keeps import light

        self.feeders = [
            _Feeder(sender, self.scale, spec.seed)
            for sender in spec.senders
            if sender.node in self._own
        ]
        self.actions = self._build_actions()

    async def _spawn_node(self, node_id) -> _AsyncNode:
        membership = self._make_membership(node_id)
        protocol = self.host._build_protocol(
            node_id, membership, self.rngs.stream("protocol", node_id), self.clock()
        )
        node = _AsyncNode(self, node_id, protocol)
        await node.bind()
        self.hosted[node_id] = node
        if self.started:
            node.start_tasks()
        return node

    def _make_membership(self, node_id):
        spec = self.cfg.spec
        if spec.membership == "full":
            return FullMembershipView(self.host.directory, node_id)
        rng = self.rngs.stream("bootstrap_view", node_id)
        others = [n for n in self.host.directory.alive() if n != node_id]
        cfg = (
            ViewConfig(view_size=spec.view_size)
            if spec.view_size is not None
            else ViewConfig()
        )
        bootstrap = rng.sample(others, min(len(others), cfg.view_size))
        return PartialViewMembership(node_id, cfg, initial_view=bootstrap)

    # ------------------------------------------------------------------
    # the scheduled conditions (compiled once, fired by one task)
    # ------------------------------------------------------------------
    def _build_actions(self) -> list:
        """Every timed condition as ``(wall_time, seq, thunk)`` triples.

        The same lowering as the threaded driver's ``_threaded_actions``,
        worker-local: chaos windows mutate this worker's rule set (each
        sender enforces its own copy of the same schedule), crash/churn
        stop and restart owned nodes for real while *all* workers
        replicate the directory change, resource changes touch owned
        protocols and feeders only.
        """
        spec = self.cfg.spec
        actions: list[tuple[float, int, Any]] = []

        def add(spec_time: float, thunk) -> None:
            actions.append((spec_time * self.scale, len(actions), thunk))

        for change in spec.resources.changes:
            if change.time == 0.0 and isinstance(change, CapacityChange):
                continue  # applied pre-start by bind_initial
            if isinstance(change, CapacityChange):

                def apply_capacity(c=change):
                    for node in c.nodes:
                        hosted = self.hosted.get(node)
                        if hosted is not None and hosted.alive:
                            hosted.protocol.set_buffer_capacity(
                                c.capacity, self.clock()
                            )

                add(change.time, apply_capacity)
            else:  # OfferedRateChange — repace the affected owned feeders

                def repace(c=change):
                    for feeder in self.feeders:
                        if feeder.node in c.nodes:
                            feeder.arrivals.rate = c.rate

                add(change.time, repace)

        rules = self.rules
        baseline = spec.baseline_loss
        for fault in spec.faults.faults:
            if rules is not None and isinstance(fault, LossWindow):
                add(fault.time, lambda f=fault: rules.set_loss(BernoulliLoss(f.p)))
                add(fault.time + fault.duration, lambda: rules.set_loss(baseline))
            elif rules is not None and isinstance(fault, LinkLossWindow):
                add(fault.time, lambda f=fault: rules.set_link_loss(f.matrix))
                add(fault.time + fault.duration, lambda: rules.set_link_loss(None))
            elif rules is not None and isinstance(fault, PartitionWindow):
                add(
                    fault.time,
                    lambda f=fault: rules.partition([list(g) for g in f.groups]),
                )
                add(fault.time + fault.duration, rules.heal)
            elif rules is not None and isinstance(fault, AsymmetricPartitionWindow):
                add(
                    fault.time,
                    lambda f=fault: rules.partition_oneway(
                        [list(g) for g in f.groups], f.blocked
                    ),
                )
                add(fault.time + fault.duration, rules.heal_oneway)
            elif rules is not None and isinstance(fault, BandwidthCapWindow):
                add(fault.time, lambda f=fault: rules.set_bandwidth_cap(f.rate))
                add(
                    fault.time + fault.duration,
                    lambda: rules.set_bandwidth_cap(None),
                )
            elif isinstance(fault, CrashWindow):

                def crash(f=fault):
                    for node in f.nodes:
                        self._crash(node)

                add(fault.time, crash)
                if fault.restart_at is not None:

                    def restart(f=fault):
                        for node in f.nodes:
                            self._join(node)

                    add(fault.restart_at, restart)
            # unknown kinds are reported by process_coverage as skipped

        dispatch = {"join": self._join, "leave": self._leave, "crash": self._crash}
        for event in spec.churn.sorted_events():
            add(event.time, lambda fn=dispatch[event.action], n=event.node: fn(n))

        actions.sort(key=lambda entry: (entry[0], entry[1]))
        return actions

    # ------------------------------------------------------------------
    # live membership (every worker replicates the directory; only the
    # owner touches sockets)
    # ------------------------------------------------------------------
    def _crash(self, node) -> None:
        """Silent failure: directory leave everywhere, socket down here."""
        if not self.host.directory.is_alive(node):
            return
        self.host.directory.leave(node)
        hosted = self.hosted.get(node)
        if hosted is not None:
            hosted.stop()

    def _leave(self, node) -> None:
        """Graceful departure: unsubscribe rides one more round out."""
        if not self.host.directory.is_alive(node):
            return
        self.host.directory.leave(node)
        hosted = self.hosted.get(node)
        if hosted is None or not hosted.alive:
            return
        unsubscribe = getattr(hosted.protocol.membership, "unsubscribe", None)
        if callable(unsubscribe):
            unsubscribe()
            grace = self.gossip_period * 1.2 + self.LEAVE_GRACE_SLACK
            self.loop.call_later(grace, hosted.stop)
        else:  # full membership: the directory itself is the announcement
            hosted.stop()

    def _join(self, node) -> None:
        """(Re)join: fresh protocol, old identity, same mapped port."""
        hosted = self.hosted.get(node)
        if self.host.directory.is_alive(node) and (
            node not in self._own or (hosted is not None and hosted.alive)
        ):
            return  # already a live member
        self.host.directory.join(node)
        if node not in self._own:
            return
        if hosted is not None and hosted.alive:
            # a pending leave-grace timer is superseded by the rejoin
            hosted.stop()
        self.loop.create_task(self._respawn(node))

    async def _respawn(self, node_id) -> None:
        # the old asyncio transport closes asynchronously, so the port
        # may take a beat to free — retry briefly before giving up
        for _ in range(20):
            try:
                await self._spawn_node(node_id)
                return
            except OSError:
                await asyncio.sleep(0.05)
        self.bind_errors += 1

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._t0 = time.monotonic()
        self.started = True
        for node in self.hosted.values():
            node.start_tasks()
        self._tasks.append(self.loop.create_task(self._run_actions()))
        for feeder in self.feeders:
            self._tasks.append(self.loop.create_task(self._run_feeder(feeder)))

    async def _run_actions(self) -> None:
        for due, _, fire in self.actions:
            delay = due - self.clock()
            if delay > 0:
                await asyncio.sleep(delay)
            fire()

    async def _run_feeder(self, feeder) -> None:
        while True:
            now = self.clock()
            if feeder.stop is not None and feeder.next >= feeder.stop:
                return
            if feeder.next <= now:
                hosted = self.hosted.get(feeder.node)
                if hosted is not None and hosted.alive:
                    hosted.offer(None)
                self.offers += 1
                feeder.advance()
                continue
            await asyncio.sleep(min(feeder.next - now, 0.05))

    def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        self._tasks.clear()
        for node in self.hosted.values():
            node.stop()
        if self.rules is not None:
            self.rules.close()

    def report(self) -> WorkerReport:
        delivered = {
            node_id: node.protocol.stats.events_delivered
            for node_id, node in self.hosted.items()
        }
        duplicates = sum(
            getattr(node.protocol.stats, "duplicates_seen", 0)
            for node in self.hosted.values()
        )
        return WorkerReport(
            worker_id=self.cfg.worker_id,
            offers=self.offers,
            admitted=self.admitted,
            delivered=delivered,
            duplicates=duplicates,
            decode_errors=self.decode_errors,
            send_failures=self.send_failures,
            bind_errors=self.bind_errors,
            metrics=self.host.metrics,
            chaos=None if self.rules is None else self.rules.stats,
        )


# ----------------------------------------------------------------------
# the process entry point and its control-pipe plumbing
# ----------------------------------------------------------------------
def _safe_send(conn, msg) -> bool:
    try:
        conn.send(msg)
        return True
    except (OSError, BrokenPipeError, ValueError):
        return False  # parent gone; nothing left to report to


async def _async_recv(conn):
    """Await one control message without blocking the loop.

    Raises EOFError when the parent's end closes — the orphan signal.
    """
    while True:
        try:
            if conn.poll(0):
                return conn.recv()  # EOFError propagates: parent died
        except OSError as exc:
            raise EOFError from exc
        await asyncio.sleep(0.02)


async def _watchdog(conn, done: asyncio.Event) -> None:
    """Trip ``done`` the moment the pipe becomes readable mid-run.

    The parent never sends between the start barrier and our result, so
    anything readable — an explicit abort or the EOF of a dead parent —
    means stop now. This is what guarantees no orphaned workers survive
    a parent crash.
    """
    while not done.is_set():
        try:
            if conn.poll(0):
                done.set()
                return
        except (OSError, EOFError):
            done.set()
            return
        await asyncio.sleep(0.2)


async def _worker_async(conn, cfg: WorkerConfig) -> None:
    worker = ShardWorker(cfg)
    try:
        await worker.bind_initial()
    except OSError as exc:
        worker.close()
        _safe_send(conn, ("bind_failed", cfg.worker_id, str(exc)))
        return
    _safe_send(conn, ("ready", cfg.worker_id))
    try:
        msg = await _async_recv(conn)
    except EOFError:
        worker.close()
        return
    if not (isinstance(msg, tuple) and msg and msg[0] == "start"):
        worker.close()
        return
    worker.start()
    done = asyncio.Event()
    watchdog = worker.loop.create_task(_watchdog(conn, done))
    aborted = True
    try:
        await asyncio.wait_for(done.wait(), timeout=cfg.wall_seconds)
    except asyncio.TimeoutError:
        aborted = False  # the run simply finished
    finally:
        done.set()
        watchdog.cancel()
        worker.close()
    if not aborted:
        _safe_send(conn, ("result", worker.report()))


def worker_main(conn) -> None:
    """Entry point of one shard worker process."""
    try:
        msg = conn.recv()
    except (EOFError, OSError):
        return
    if not (isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "configure"):
        return
    try:
        asyncio.run(_worker_async(conn, msg[1]))
    except (EOFError, OSError, BrokenPipeError):
        pass  # parent died; exiting quietly is the whole contract
    finally:
        try:
            conn.close()
        except Exception:
            pass
