"""Standalone node processes — the paper's deployment, one OS process each.

The prototype the paper validates against is 60 separate workstations.
This module provides the same deployment shape in miniature: every node
is its **own operating-system process** speaking the binary wire format
over UDP; a launcher spawns and supervises a whole group locally.

Run one node by hand::

    python -m repro.runtime.standalone --node-id 0 --port 9000 \\
        --peers 1=127.0.0.1:9001 2=127.0.0.1:9002 \\
        --protocol adaptive --period 0.1 --buffer 64 --duration 10 \\
        --offered-rate 5

or a whole group in one command (spawns N child processes)::

    python -m repro.runtime.standalone --launch 8 --base-port 9000 \\
        --protocol adaptive --duration 10

Each node prints a one-line JSON report on exit (deliveries, drops,
adaptive state), so launchers and tests can assert on behaviour.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from typing import Optional, Sequence

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.membership.full import Directory, FullMembershipView
from repro.runtime.codec import BinaryCodec
from repro.runtime.node import RuntimeNode
from repro.runtime.transport import ChaosRules, ChaosTransport, UdpTransport
from repro.sim.network import BernoulliLoss
from repro.sim.rng import RngRegistry
from repro.workload.cluster import make_protocol_factory

__all__ = ["build_parser", "run_node", "launch_group", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.standalone",
        description="Run one gossip node (or launch a local group) over UDP.",
    )
    parser.add_argument("--node-id", type=int, default=0, help="this node's id")
    parser.add_argument("--port", type=int, default=0, help="UDP port (0 = ephemeral)")
    parser.add_argument(
        "--peers",
        nargs="*",
        default=[],
        metavar="ID=HOST:PORT",
        help="peer address book entries",
    )
    parser.add_argument(
        "--protocol",
        default="lpbcast",
        choices=["lpbcast", "adaptive", "static", "bimodal", "adaptive-bimodal"],
    )
    parser.add_argument("--period", type=float, default=0.1, help="gossip period (s)")
    parser.add_argument("--buffer", type=int, default=64, help="|events|max")
    parser.add_argument("--max-age", type=int, default=10)
    parser.add_argument("--fanout", type=int, default=4)
    parser.add_argument("--tau", type=float, default=4.46, help="critical age for adaptive")
    parser.add_argument("--rate-limit", type=float, default=None, help="for --protocol static")
    parser.add_argument("--duration", type=float, default=10.0, help="run time (s)")
    parser.add_argument(
        "--offered-rate", type=float, default=0.0,
        help="application offers per second from this node (0 = silent)",
    )
    parser.add_argument("--seed", type=int, default=0)
    # chaos: the same fault vocabulary the other two drivers lower,
    # injected at this process's own transport (each node decides the
    # fate of its *outgoing* datagrams from its seeded chaos stream)
    parser.add_argument(
        "--chaos-loss", type=float, default=0.0, metavar="P",
        help="Bernoulli loss probability on every outgoing datagram",
    )
    parser.add_argument(
        "--chaos-link-loss", nargs="*", default=[], metavar="SRC:DST:P",
        help="sparse per-link loss matrix entries, node ids (e.g. 0:3:0.5)",
    )
    parser.add_argument(
        "--chaos-oneway", nargs="*", default=[], metavar="SRCS>DSTS",
        help="directed cut: comma-separated node ids that cannot reach "
             "the ids after '>' (e.g. '0,1>2,3'; reverse direction flows)",
    )
    # launcher mode
    parser.add_argument("--launch", type=int, default=None, metavar="N",
                        help="spawn a local group of N node processes instead")
    parser.add_argument("--base-port", type=int, default=9500)
    parser.add_argument("--senders", type=int, default=1,
                        help="how many of the launched nodes offer traffic")
    return parser


def _parse_link_loss(entries: Sequence[str]) -> dict[tuple[int, int], float]:
    matrix: dict[tuple[int, int], float] = {}
    for entry in entries:
        try:
            src, dst, p = entry.split(":")
            matrix[(int(src), int(dst))] = float(p)
        except ValueError as exc:
            raise SystemExit(f"bad --chaos-link-loss entry {entry!r}: {exc}")
    return matrix


def _parse_oneway(entries: Sequence[str]) -> tuple[list[list[int]], list[tuple[int, int]]]:
    """``SRCS>DSTS`` entries -> (groups, blocked) for ``partition_oneway``."""
    groups: list[list[int]] = []
    blocked: list[tuple[int, int]] = []
    index: dict[tuple[int, ...], int] = {}
    for entry in entries:
        try:
            src_part, dst_part = entry.split(">", 1)
            pair = []
            for part in (src_part, dst_part):
                members = tuple(sorted(int(x) for x in part.split(",") if x))
                if not members:
                    raise ValueError("empty node set")
                if members not in index:
                    index[members] = len(groups)
                    groups.append(list(members))
                pair.append(index[members])
            blocked.append((pair[0], pair[1]))
        except ValueError as exc:
            raise SystemExit(f"bad --chaos-oneway entry {entry!r}: {exc}")
    return groups, blocked


def _build_chaos(args, peers: dict[int, tuple[str, int]]) -> Optional[ChaosRules]:
    """A per-process rule set from the chaos flags, or None when unused."""
    if not (args.chaos_loss > 0 or args.chaos_link_loss or args.chaos_oneway):
        return None
    addr_to_node = {addr: node for node, addr in peers.items()}
    rules = ChaosRules(
        loss=BernoulliLoss(args.chaos_loss) if args.chaos_loss > 0 else None,
        node_of=lambda addr: addr_to_node.get(addr, addr),
    )
    matrix = _parse_link_loss(args.chaos_link_loss)
    if matrix:
        rules.set_link_loss(matrix)
    if args.chaos_oneway:
        groups, blocked = _parse_oneway(args.chaos_oneway)
        rules.partition_oneway(groups, blocked)
    return rules


def _parse_peers(entries: Sequence[str]) -> dict[int, tuple[str, int]]:
    book: dict[int, tuple[str, int]] = {}
    for entry in entries:
        try:
            node_part, addr_part = entry.split("=", 1)
            host, port = addr_part.rsplit(":", 1)
            book[int(node_part)] = (host, int(port))
        except ValueError as exc:
            raise SystemExit(f"bad --peers entry {entry!r}: {exc}")
    return book


def run_node(args) -> dict:
    """Run one node for ``--duration`` seconds; returns the exit report."""
    peers = _parse_peers(args.peers)
    system = SystemConfig(
        fanout=args.fanout,
        gossip_period=args.period,
        buffer_capacity=args.buffer,
        dedup_capacity=max(4000, 40 * args.buffer),
        max_age=args.max_age,
    )
    adaptive = AdaptiveConfig(
        age_critical=args.tau,
        sample_period=max(args.period * 5, 0.25),
        initial_rate=max(args.offered_rate, 1.0),
    )
    factory = make_protocol_factory(
        args.protocol, adaptive=adaptive, rate_limit=args.rate_limit
    )
    directory = Directory([args.node_id, *peers])
    rngs = RngRegistry(args.seed)
    transport = UdpTransport(port=args.port)
    chaos = _build_chaos(args, peers)
    if chaos is not None:
        transport = ChaosTransport(transport, chaos, args.node_id, seed=args.seed)
    protocol = factory(
        args.node_id,
        system,
        FullMembershipView(directory, args.node_id),
        rngs.stream("protocol", args.node_id),
        None,
        None,
        0.0,
    )
    node = RuntimeNode(
        protocol, transport, BinaryCodec(), peers.get, gossip_period=args.period
    )
    node.start()
    deadline = time.monotonic() + args.duration
    next_offer = time.monotonic()
    try:
        while time.monotonic() < deadline:
            if args.offered_rate > 0 and time.monotonic() >= next_offer:
                node.broadcast(None)
                next_offer += 1.0 / args.offered_rate
            time.sleep(0.005)
    finally:
        node.shutdown()
        if chaos is not None:
            chaos.close()
    stats = protocol.stats
    report = {
        "node_id": args.node_id,
        "protocol": args.protocol,
        "broadcasts": stats.broadcasts,
        "events_delivered": stats.events_delivered,
        "messages_received": stats.messages_received,
        "drops_overflow": stats.drops_overflow,
        "decode_errors": node.decode_errors,
        "send_failures": node.send_failures,
    }
    allowed = getattr(protocol, "allowed_rate", None)
    if allowed is not None:
        report["allowed_rate"] = round(allowed, 3)
        report["min_buff"] = getattr(protocol, "min_buff_estimate", None)
    if chaos is not None:
        cs = chaos.stats
        report["chaos"] = {
            "sent": cs.sent,
            "dropped": cs.dropped,
            "link_dropped": cs.link_dropped,
            "oneway_dropped": cs.oneway_blocked,
            "eaten": cs.eaten,
        }
    return report


def launch_group(args) -> list[dict]:
    """Spawn ``--launch`` node processes on localhost and collect reports."""
    n = args.launch
    if n < 2:
        raise SystemExit("--launch needs at least 2 nodes")
    ports = {i: args.base_port + i for i in range(n)}
    peer_args: dict[int, list[str]] = {}
    for i in range(n):
        peer_args[i] = [
            f"{j}=127.0.0.1:{ports[j]}" for j in range(n) if j != i
        ]
    procs = []
    for i in range(n):
        cmd = [
            sys.executable, "-m", "repro.runtime.standalone",
            "--node-id", str(i),
            "--port", str(ports[i]),
            "--peers", *peer_args[i],
            "--protocol", args.protocol,
            "--period", str(args.period),
            "--buffer", str(args.buffer),
            "--tau", str(args.tau),
            "--duration", str(args.duration),
            "--seed", str(args.seed + i),
        ]
        if i < args.senders and args.offered_rate > 0:
            cmd += ["--offered-rate", str(args.offered_rate)]
        if args.rate_limit is not None:
            cmd += ["--rate-limit", str(args.rate_limit)]
        if args.chaos_loss > 0:
            cmd += ["--chaos-loss", str(args.chaos_loss)]
        if args.chaos_link_loss:
            cmd += ["--chaos-link-loss", *args.chaos_link_loss]
        if args.chaos_oneway:
            cmd += ["--chaos-oneway", *args.chaos_oneway]
        procs.append(subprocess.Popen(cmd, stdout=subprocess.PIPE, text=True))
    reports = []
    for proc in procs:
        out, _ = proc.communicate(timeout=args.duration + 30)
        if proc.returncode != 0:
            raise SystemExit(f"node process failed with code {proc.returncode}")
        reports.append(json.loads(out.strip().splitlines()[-1]))
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.launch is not None:
        reports = launch_group(args)
        for report in reports:
            print(json.dumps(report, sort_keys=True))
        return 0
    print(json.dumps(run_node(args), sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
