"""Deterministic named random streams.

Every stochastic component of a simulation (each node's gossip target
selection, the network latency sampler, the workload generator, ...) draws
from its own named stream derived from a single root seed. This gives two
properties that matter for a reproduction:

* **Reproducibility** — the same root seed always produces the same run,
  bit for bit, regardless of dict ordering or component creation order.
* **Variance isolation** — changing one component's behaviour (e.g. adding
  a sender) does not perturb the random choices of unrelated components,
  so A/B comparisons between algorithm variants share their randomness.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Hashable, Sequence

__all__ = ["derive_seed", "uniform_sample", "RngRegistry"]


def derive_seed(root_seed: int, *name: Hashable) -> int:
    """Derive a 64-bit child seed from ``root_seed`` and a stream name.

    The derivation is a SHA-256 hash of the canonical representation of the
    root seed and the name parts, so it is stable across processes and
    Python versions (unlike ``hash()``).
    """
    material = repr((int(root_seed), tuple(name))).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def uniform_sample(rng: random.Random, population: Sequence, k: int) -> list:
    """``rng.sample(population, k)`` with identical draws, minus overhead.

    Target selection runs once per node per round, which makes the
    stdlib's Python-level call stack (``sample`` → ``_randbelow`` per
    draw) a measurable slice of the simulator's hot path. This mirrors
    CPython's two sampling branches — partial Fisher–Yates for small
    populations, rejection into a selection set otherwise — with the
    ``_randbelow`` loop inlined over ``getrandbits``, so it consumes the
    *exact same* random stream: swapping it in changes no run anywhere.
    A unit test asserts draw-for-draw equality against ``rng.sample``
    across both branches, so a future CPython algorithm change cannot
    silently desynchronise us. Non-``random.Random`` generators fall
    back to their own ``sample``.
    """
    if type(rng) is not random.Random:
        return rng.sample(population, k)
    n = len(population)
    if not 0 <= k <= n:
        raise ValueError("Sample larger than population or is negative")
    getrandbits = rng.getrandbits
    result = [None] * k
    setsize = 21  # stdlib heuristic: set cost vs copying the pool
    if k > 5:
        setsize += 4 ** math.ceil(math.log(k * 3, 4))
    if n <= setsize:
        pool = list(population)
        for i in range(k):
            bound = n - i
            bits = bound.bit_length()
            j = getrandbits(bits)
            while j >= bound:
                j = getrandbits(bits)
            result[i] = pool[j]
            pool[j] = pool[bound - 1]
    else:
        bits = n.bit_length()
        selected = set()
        selected_add = selected.add
        for i in range(k):
            j = getrandbits(bits)
            while j >= n or j in selected:
                j = getrandbits(bits)
            selected_add(j)
            result[i] = population[j]
    return result


class RngRegistry:
    """A factory of named, independently-seeded ``random.Random`` streams.

    >>> rngs = RngRegistry(seed=42)
    >>> a = rngs.stream("node", 3)
    >>> b = rngs.stream("network")
    >>> a is rngs.stream("node", 3)
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[tuple[Hashable, ...], random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, *name: Hashable) -> random.Random:
        """Return the (memoized) stream for ``name``, creating it on demand."""
        key = tuple(name)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, *key))
            self._streams[key] = stream
        return stream

    def fork(self, *name: Hashable) -> "RngRegistry":
        """Return a new registry whose root seed is derived from ``name``.

        Useful to hand a component a whole private namespace of streams.
        """
        return RngRegistry(derive_seed(self._seed, "fork", *name))
