"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timestamped callbacks and a
virtual clock. Time only advances when an event is dispatched; between
events nothing happens, so simulating hundreds of virtual seconds costs
only as much as the number of scheduled events.

Events scheduled for the same instant fire in FIFO order (a monotonically
increasing sequence number breaks ties), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

__all__ = ["Simulator", "TimerHandle", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class TimerHandle:
    """A cancellable reference to a scheduled callback."""

    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once."""
        self._cancelled = True
        # Drop references eagerly so cancelled timers don't pin objects
        # until they percolate out of the heap.
        self._callback = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.time, self._seq) < (other.time, other._seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<TimerHandle t={self.time:.6f} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler with a virtual clock.

    Parameters
    ----------
    seed:
        Root seed for the :class:`RngRegistry` exposed as :attr:`rngs`.
    trace:
        Optional :class:`TraceLog`; a disabled log is created by default so
        tracing calls are cheap no-ops unless explicitly enabled.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceLog] = None) -> None:
        self._now: float = 0.0
        self._queue: list[TimerHandle] = []
        self._seq = itertools.count()
        self._dispatched = 0
        self._running = False
        self.rngs = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceLog(enabled=False)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Number of callbacks executed so far."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled stragglers)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        handle = TimerHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next pending event. Returns False if queue is empty."""
        while self._queue:
            handle = heapq.heappop(self._queue)
            if handle.cancelled:
                continue
            self._now = handle.time
            callback, args = handle._callback, handle._args
            # Release the handle's references before the callback runs so
            # re-entrant cancels of already-fired timers are harmless.
            handle.cancel()
            self._dispatched += 1
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been dispatched. Returns the final clock value.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, so repeated ``run(until=...)``
        calls observe a monotone clock.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        budget = max_events if max_events is not None else -1
        try:
            while self._queue:
                if budget == 0:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    break
                self.step()
                if budget > 0:
                    budget -= 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_empty(self, max_events: int = 10_000_000) -> float:
        """Drain the whole queue (bounded by ``max_events`` as a fuse)."""
        return self.run(until=None, max_events=max_events)
