"""The discrete-event simulation kernel.

A :class:`Simulator` owns a priority queue of timestamped callbacks and a
virtual clock. Time only advances when an event is dispatched; between
events nothing happens, so simulating hundreds of virtual seconds costs
only as much as the number of scheduled events.

Events scheduled for the same instant fire in FIFO order (a monotonically
increasing sequence number breaks ties), which keeps runs deterministic.

Two scheduling paths share one heap:

* :meth:`Simulator.schedule` returns a cancellable :class:`TimerHandle`;
* :meth:`Simulator.post` is the fire-and-forget fast path — no handle is
  allocated, which matters on hot paths that schedule hundreds of
  thousands of never-cancelled events (message deliveries, round ticks).

For periodic work at scale, :class:`RoundDispatcher` provides the batched
round fast path: members with the same period and aligned phase share one
*round bucket*, so a whole cluster's gossip round costs one heap pop
instead of N. Members with per-tick jitter or distinct phases degrade
gracefully to per-member buckets that still avoid the handle/closure
overhead of naive per-node timers.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceLog

__all__ = [
    "Simulator",
    "TimerHandle",
    "SimulationError",
    "RoundDispatcher",
    "RoundMembership",
]


class SimulationError(RuntimeError):
    """Raised for invalid scheduler usage (e.g. scheduling in the past)."""


class TimerHandle:
    """A cancellable reference to a scheduled callback."""

    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running. Safe to call more than once."""
        self._cancelled = True
        # Drop references eagerly so cancelled timers don't pin objects
        # until they percolate out of the heap.
        self._callback = None
        self._args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<TimerHandle t={self.time:.6f} {state}>"


class Simulator:
    """Deterministic discrete-event scheduler with a virtual clock.

    Parameters
    ----------
    seed:
        Root seed for the :class:`RngRegistry` exposed as :attr:`rngs`.
    trace:
        Optional :class:`TraceLog`; a disabled log is created by default so
        tracing calls are cheap no-ops unless explicitly enabled.
    """

    def __init__(self, seed: int = 0, trace: Optional[TraceLog] = None) -> None:
        self._now: float = 0.0
        # Heap entries are (time, seq, handle_or_None, callback, args).
        # The unique seq guarantees tuple comparison never reaches the
        # callback, so heterogeneous callables are safe in the heap.
        self._queue: list[tuple] = []
        self._seq = itertools.count()
        self._dispatched = 0
        self._running = False
        self.rngs = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceLog(enabled=False)

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_dispatched(self) -> int:
        """Number of callbacks executed so far."""
        return self._dispatched

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled stragglers)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> TimerHandle:
        """Schedule ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        handle = TimerHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, (time, handle._seq, handle, callback, args))
        return handle

    def post(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`TimerHandle`.

        The hot path for events that are never cancelled (message
        deliveries, round buckets): one tuple on the heap, no handle
        allocation, no cancellation bookkeeping.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay!r} seconds in the past")
        heapq.heappush(
            self._queue, (self._now + delay, next(self._seq), None, callback, args)
        )

    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Absolute-time variant of :meth:`post`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time!r}, clock already at t={self._now!r}"
            )
        heapq.heappush(self._queue, (time, next(self._seq), None, callback, args))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next pending event. Returns False if queue is empty."""
        queue = self._queue
        while queue:
            time, _seq, handle, callback, args = heapq.heappop(queue)
            if handle is not None:
                if handle._cancelled:
                    continue
                # Release the handle's references before the callback runs
                # so re-entrant cancels of already-fired timers are harmless.
                handle.cancel()
            self._now = time
            self._dispatched += 1
            callback(*args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been dispatched. Returns the final clock value.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier, so repeated ``run(until=...)``
        calls observe a monotone clock.
        """
        if self._running:
            raise SimulationError("simulator is not re-entrant")
        self._running = True
        budget = max_events if max_events is not None else -1
        queue = self._queue
        try:
            while queue:
                if budget == 0:
                    break
                head = queue[0]
                handle = head[2]
                if handle is not None and handle._cancelled:
                    heapq.heappop(queue)
                    continue
                if until is not None and head[0] > until:
                    break
                self.step()
                if budget > 0:
                    budget -= 1
        finally:
            self._running = False
        if until is not None and self._now < until:
            self._now = until
        return self._now

    def run_until_empty(self, max_events: int = 10_000_000) -> float:
        """Drain the whole queue (bounded by ``max_events`` as a fuse)."""
        return self.run(until=None, max_events=max_events)


class RoundMembership:
    """A member of a :class:`RoundDispatcher`; :meth:`cancel` to leave."""

    __slots__ = ("fn", "active")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self.active = True

    def cancel(self) -> None:
        """Stop firing this member. Safe to call more than once."""
        self.active = False
        self.fn = None

    @property
    def cancelled(self) -> bool:
        return not self.active


class _AlignedBucket:
    """All same-period members due at the same instant: one pop fires all.

    The owning dispatcher's registry always maps ``(period, next_time)``
    to the bucket: each firing re-keys the entry to the new fire time
    (so later joiners aligned with it find and share it) and a bucket
    whose members have all cancelled deletes its entry — the registry
    stays bounded by the number of live buckets even under churn.
    """

    __slots__ = ("dispatcher", "period", "next_time", "members")

    def __init__(self, dispatcher: "RoundDispatcher", period: float, next_time: float) -> None:
        self.dispatcher = dispatcher
        self.period = period
        self.next_time = next_time
        self.members: list[RoundMembership] = []

    def fire(self) -> None:
        members = self.members
        dead = 0
        for m in members:
            if m.active:
                m.fn()
            else:
                dead += 1
        if dead and dead * 2 >= len(members):
            self.members = members = [m for m in members if m.active]
        registry = self.dispatcher._aligned
        old_key = (self.period, self.next_time)
        if registry.get(old_key) is self:
            del registry[old_key]
        if members:
            sim = self.dispatcher.sim
            self.next_time = sim.now + self.period
            registry[(self.period, self.next_time)] = self
            sim.post_at(self.next_time, self.fire)


class _JitteredMember(RoundMembership):
    """A member whose per-tick jitter forces its own re-arm schedule."""

    __slots__ = ("sim", "period", "jitter", "rng")

    def __init__(self, sim: Simulator, fn, period: float, jitter: float, rng) -> None:
        super().__init__(fn)
        self.sim = sim
        self.period = period
        self.jitter = jitter
        self.rng = rng

    def fire(self) -> None:
        if not self.active:
            return
        self.fn()
        # Matches SimProcess.every's draw pattern exactly, so a run is
        # byte-identical whichever dispatch path drives it.
        delay = self.period * self.rng.uniform(1 - self.jitter, 1 + self.jitter)
        self.sim.post(delay, self.fire)


class RoundDispatcher:
    """Batched periodic dispatch: the timer-wheel for gossip rounds.

    ``add`` registers ``fn`` to run every ``period`` seconds. Jitter-free
    members whose first firing coincides share an *aligned bucket* — the
    whole bucket costs one heap event per round no matter how many members
    it has (the round-synchronous fast path). Members with per-tick jitter
    get their own re-arm schedule but still skip the TimerHandle/closure
    machinery of :meth:`repro.sim.process.SimProcess.every`.

    The phase and jitter draws replicate ``SimProcess.every`` exactly
    (first fire after ``phase`` — a uniform draw in ``[0, period)`` when
    omitted — then ``period * U(1-jitter, 1+jitter)`` between fires), so a
    simulation driven by this dispatcher is byte-identical to one driven
    by per-member timers, provided the same RNG streams are supplied.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._aligned: dict[tuple[float, float], _AlignedBucket] = {}

    def add(
        self,
        fn: Callable[[], None],
        period: float,
        phase: Optional[float] = None,
        jitter: float = 0.0,
        rng=None,
    ) -> RoundMembership:
        """Register a periodic member; returns a cancellable membership."""
        if period <= 0:
            raise ValueError("period must be positive")
        if phase is None:
            if rng is None:
                raise ValueError("a random phase needs an rng")
            phase = rng.uniform(0, period)
        if jitter:
            if rng is None:
                raise ValueError("per-tick jitter needs an rng")
            member = _JitteredMember(self.sim, fn, period, jitter, rng)
            self.sim.post(phase, member.fire)
            return member
        member = RoundMembership(fn)
        first = self.sim.now + phase
        bucket = self._aligned.get((period, first))
        if bucket is None:
            bucket = _AlignedBucket(self, period, first)
            self._aligned[(period, first)] = bucket
            self.sim.post_at(first, bucket.fire)
        bucket.members.append(member)
        return member
