"""Whole-population columnar round execution (the mega-sim lane).

:class:`VectorRoundExecutor` advances *all* nodes of a round-synchronous
lpbcast group in bulk: one registered round member per cluster (not one
per node), population-level columns indexed by node id (buffer contents,
dedup membership, per-node counters), one batched target-sampling pass
per round, and one delivery fold per instant. It is a drop-in third
dispatch mode for :class:`~repro.workload.cluster.SimCluster`
(``dispatch="vector"``): scenarios, sweeps and expectations lower onto it
unchanged, and a run is **byte-identical** to the per-node ``"batched"``
path — the same RNG streams are consumed draw for draw, so the
determinism/parity suites compare entire runs, exactly as
``on_receive_reference`` proves the per-node fast paths.

Why this can be exact
---------------------
The vectorized lane only engages for configurations where the per-node
semantics provably collapse (see :func:`vector_eligible` and, for the
human-readable rejection, :func:`vector_ineligible_reason`): the baseline
``lpbcast`` protocol, full membership, a fixed round phase with zero
jitter, and constant latency shorter than the gossip period. In that
regime:

* every copy of an event carries ``anchor == birth round`` (all buffers
  advance their round counter at the same instants, broadcasts stage at
  age 0, and receivers fold at the same global round) — so
  ``sync_ages`` is a global no-op, age-out is simultaneous everywhere,
  and per-(node, event) age state reduces to membership plus an arrival
  sequence;
* target sampling and per-delivery loss are the only RNG consumers.
  Sampling is replicated index-only, draw for draw, against the same
  per-node ``("protocol", i)`` streams
  (:func:`~repro.sim.rng.uniform_sample` over a full view); loss draws
  are replayed against the same ``("network",)`` stream in the same
  per-message order the network would consume them — vectorized into one
  numpy block per tick when the model is Bernoulli, sequentially via
  ``loss.is_lost`` otherwise, byte-identical either way;
* the network's multicast rule order (partition → one-way cut → route →
  bandwidth cap → loss → per-link loss, then one constant delay) is
  replicated per message without routing anything through the heap, and
  the cap/partition/link state is *read live from the network object* at
  each tick, so fault windows opened and closed by
  :class:`~repro.sim.faults.FaultScript` lower onto the columnar lane
  unchanged.

Fault vocabulary on the columnar lane
-------------------------------------
Window edges (loss / partition / one-way / link-loss / bandwidth-cap
open and close) only matter at emission instants: arrivals already in
flight carry their fate with them in both paths, and edges scheduled at
a tick fire before the tick in both paths (``schedule_at`` from t=0 wins
the FIFO tie). Crash and churn lower onto an alive-ordered emission list
plus column resets: a crash clears the node's buffer/dedup columns (its
in-flight summary is snapshotted first for any pending fold) and a
restart re-admits the old identity with zeroed columns at a round tick —
exactly the fresh-process semantics of the per-node driver. Sender
crashes, brand-new identities and off-tick restarts stay per-node (see
:func:`mega_schedule_reason`), as do the adaptive/bimodal protocol
variants and partial views.

The optional ``numpy`` fast path (``pip install .[accel]``) vectorises
the per-instant delivery fold and the Bernoulli loss draws; it is
auto-detected and produces results identical to the stdlib path (a
property test asserts this). Per-message sequential folding remains as
the in-module reference and handles the rare instants the batched fold
cannot prove safe (dedup-store pressure, mid-instant evictions, crashes
with messages in flight).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Optional

from repro.gossip.events import EventId
from repro.gossip.lpbcast import ProtocolStats
from repro.sim.faults import (
    AsymmetricPartitionWindow,
    BandwidthCapWindow,
    CrashWindow,
    LinkLossWindow,
    LossWindow,
    PartitionWindow,
)
from repro.sim.network import BernoulliLoss, ConstantLatency, Network, NoLoss
from repro.sim.engine import RoundDispatcher, Simulator

try:  # optional accelerator — stdlib-only installs work unchanged
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on stdlib-only installs
    _np = None

HAVE_NUMPY = _np is not None

__all__ = [
    "HAVE_NUMPY",
    "VectorNodeProtocol",
    "VectorRoundExecutor",
    "vector_eligible",
    "vector_ineligible_reason",
    "mega_schedule_reason",
]

_WINDOW_FAULTS = (
    LossWindow,
    LinkLossWindow,
    PartitionWindow,
    AsymmetricPartitionWindow,
    BandwidthCapWindow,
)


def _restart_aligned(time: float, phase: float, period: float) -> bool:
    """Whether a restart/join at ``time`` lands on the population's tick.

    The round dispatcher accumulates tick times in floating point
    (``t0 = phase``, ``t_{j+1} = t_j + period``) and a rejoining member
    shares the live bucket iff ``time + phase`` equals the next
    accumulated tick. This replays that accumulation exactly — no
    modulo arithmetic, which would disagree with float accumulation.
    """
    if period <= 0 or time < 0:
        return False
    if time / period > 1e7:  # refuse to replay absurd schedules
        return False
    t = phase
    while t < time:
        t += period
    return time + phase == t


def mega_schedule_reason(
    *,
    system,
    n_nodes: int,
    faults=None,
    churn=None,
    sender_ids=(),
) -> Optional[str]:
    """Why a fault/churn schedule cannot lower onto the columnar lane.

    Returns ``None`` when every scheduled condition is supported: loss,
    partition, one-way, link-loss and bandwidth-cap windows always are
    (they are reachability/loss filters read live at each tick); crash
    and churn are, provided no *sender* node departs (its sender process
    would keep broadcasting into the corpse), every re-admitted identity
    already has columns (``0 <= id < n_nodes``), and every restart/join
    lands exactly on a round tick (off-tick rejoiners would run their
    own round schedule, which one shared tick cannot represent).
    """
    period = system.gossip_period
    phase = system.round_phase
    senders = set(sender_ids)
    if faults is not None:
        for fault in getattr(faults, "faults", faults):
            if isinstance(fault, CrashWindow):
                hit = senders.intersection(fault.nodes)
                if hit:
                    return (
                        f"crash window at t={fault.time} crashes sender "
                        f"node(s) {sorted(hit, key=repr)}: a sender process "
                        "keeps broadcasting into its crashed node"
                    )
                if fault.restart_at is not None and not _restart_aligned(
                    fault.restart_at, phase, period
                ):
                    return (
                        f"crash window restarts at t={fault.restart_at}, "
                        f"which is not a round tick (phase={phase}, "
                        f"period={period}): restarted nodes would tick out "
                        "of phase with the population"
                    )
            elif not isinstance(fault, _WINDOW_FAULTS):
                return f"unsupported fault window type {type(fault).__name__}"
    if churn is not None:
        for event in churn.sorted_events():
            if event.action in ("leave", "crash"):
                if event.node in senders:
                    return (
                        f"churn {event.action} of sender node {event.node!r} "
                        f"at t={event.time}: a sender process keeps "
                        "broadcasting into its departed node"
                    )
            elif event.action == "join":
                if event.node in senders:
                    return (
                        f"churn join of sender node {event.node!r} at "
                        f"t={event.time}: sender lifecycles stay per-node"
                    )
                if not (
                    isinstance(event.node, int) and 0 <= event.node < n_nodes
                ):
                    return (
                        f"churn join of brand-new node {event.node!r}: the "
                        "columnar lane only re-admits identities it has "
                        "columns for (0..n_nodes-1)"
                    )
                if not _restart_aligned(event.time, phase, period):
                    return (
                        f"churn join at t={event.time} is not a round tick "
                        f"(phase={phase}, period={period}): rejoining nodes "
                        "would tick out of phase with the population"
                    )
            else:  # pragma: no cover - ChurnEvent validates its action
                return f"unsupported churn action {event.action!r}"
    return None


def vector_ineligible_reason(
    *,
    protocol: Any,
    membership: str,
    system,
    latency,
    loss,
    trace: bool,
    aggregate,
    rate_limit,
    n_nodes: int,
    allow_mega: bool = True,
    faults=None,
    churn=None,
    sender_ids=(),
) -> Optional[str]:
    """Why a configuration cannot run on the columnar mega lane.

    Returns ``None`` when the configuration qualifies, otherwise a
    human-readable sentence naming the first disqualifying condition —
    ``run-scenario --dispatch vector`` prints it when falling back, so
    users learn *why* they got the slow lane.

    ``allow_mega`` is the caller's veto for conditions this check cannot
    see; ``faults``/``churn``/``sender_ids`` let callers that know the
    schedules get the full verdict up front (the experiment harness
    passes them from the spec).
    """
    if not allow_mega:
        return "caller vetoed the mega lane (allow_mega=False)"
    if protocol != "lpbcast":
        return (
            f"protocol {protocol!r} is not the baseline lpbcast "
            "(adaptive/bimodal variants keep per-node state the columnar "
            "lane does not model)"
        )
    if membership != "full":
        return f"membership {membership!r} is not full (partial views stay per-node)"
    if system.round_phase is None:
        return (
            "round_phase is None (random per-node phases; the columnar lane "
            "needs one shared tick)"
        )
    if system.round_jitter:
        return (
            f"round_jitter={system.round_jitter} desynchronises node rounds "
            "(the columnar lane needs one shared tick)"
        )
    if type(latency) is not ConstantLatency:
        return (
            f"latency model {type(latency).__name__} samples per-message "
            "delays (the columnar lane folds one constant-delay instant)"
        )
    if not latency.delay < system.gossip_period:
        if latency.delay == system.gossip_period:
            return (
                f"latency.delay == gossip_period ({latency.delay}): arrivals "
                "would land exactly on the next tick and race it; the "
                "columnar lane needs the delay strictly below the period"
            )
        return (
            f"latency.delay={latency.delay} >= gossip_period="
            f"{system.gossip_period}: more than one instant would be in "
            "flight between ticks"
        )
    if loss is not None and type(loss) not in (NoLoss, BernoulliLoss):
        return (
            f"loss model {type(loss).__name__} is stateful or unknown; the "
            "columnar lane replays NoLoss and BernoulliLoss draws only"
        )
    if trace:
        return "trace logging is enabled (per-node event traces stay per-node)"
    if aggregate is not None:
        return "an aggregation strategy is configured (stays per-node)"
    if rate_limit is not None:
        return "a static rate limit is configured (stays per-node)"
    if n_nodes < 2:
        return f"n_nodes={n_nodes} < 2 (nothing to gossip with)"
    return mega_schedule_reason(
        system=system,
        n_nodes=n_nodes,
        faults=faults,
        churn=churn,
        sender_ids=sender_ids,
    )


def vector_eligible(
    *,
    protocol: Any,
    membership: str,
    system,
    latency,
    loss,
    trace: bool,
    aggregate,
    rate_limit,
    n_nodes: int,
    allow_mega: bool = True,
    faults=None,
    churn=None,
    sender_ids=(),
) -> bool:
    """Whether a configuration may run on the columnar mega lane.

    The boolean face of :func:`vector_ineligible_reason`.
    """
    return (
        vector_ineligible_reason(
            protocol=protocol,
            membership=membership,
            system=system,
            latency=latency,
            loss=loss,
            trace=trace,
            aggregate=aggregate,
            rate_limit=rate_limit,
            n_nodes=n_nodes,
            allow_mega=allow_mega,
            faults=faults,
            churn=churn,
            sender_ids=sender_ids,
        )
        is None
    )


class _VectorBuffer:
    """``len()``/capacity view over one node's column of the executor."""

    __slots__ = ("_ex", "_node")

    def __init__(self, ex: "VectorRoundExecutor", node: int) -> None:
        self._ex = ex
        self._node = node

    def __len__(self) -> int:
        return len(self._ex._buf[self._node])

    @property
    def capacity(self) -> int:
        return self._ex._cap[self._node]


class VectorNodeProtocol:
    """Per-node facade over the executor's columns.

    Quacks like :class:`~repro.gossip.lpbcast.LpbcastProtocol` for
    everything the drivers, senders, resource scripts and the harness
    touch: admission, capacity changes, buffer occupancy and ``stats``.
    """

    may_reply = False

    __slots__ = ("node_id", "buffer", "_ex")

    def __init__(self, ex: "VectorRoundExecutor", node_id: int) -> None:
        self.node_id = node_id
        self.buffer = _VectorBuffer(ex, node_id)
        self._ex = ex

    def broadcast(self, payload: Any, now: float) -> EventId:
        return self._ex._broadcast(self.node_id, payload, now)

    def try_broadcast(self, payload: Any, now: float) -> Optional[EventId]:
        return self._ex._broadcast(self.node_id, payload, now)

    def time_until_admission(self, now: float) -> float:
        return 0.0

    @property
    def allowed_rate(self) -> Optional[float]:
        return None

    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        self._ex._set_capacity(self.node_id, capacity, now)

    @property
    def buffer_capacity(self) -> int:
        return self._ex._cap[self.node_id]

    @property
    def stats(self) -> ProtocolStats:
        return self._ex._stats_of(self.node_id)


class _VectorNode:
    """What ``cluster.nodes[i]`` holds on the mega lane."""

    __slots__ = ("node_id", "protocol")

    def __init__(self, node_id: int, protocol: VectorNodeProtocol) -> None:
        self.node_id = node_id
        self.protocol = protocol


class VectorRoundExecutor:
    """Advance an entire round-synchronous lpbcast group per round.

    State is columnar: one entry per node id in flat lists/arrays, one
    row per live event. Per round the executor ages out expired events
    globally, samples every alive node's gossip targets in one pass
    (consuming each node's own RNG stream exactly as the per-node path
    would), applies the network's live fault state (partition/one-way/
    cap filters, then loss draws against the same network stream), and
    folds the whole instant's deliveries in bulk when it reaches the
    wire. Crash/restart mutate an alive-ordered emission list plus the
    per-node columns (see :meth:`crash`/:meth:`restart`).
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        collector,
        system,
        n_nodes: int,
        latency: ConstantLatency,
        rounds: RoundDispatcher,
        sample_gauges: bool = True,
        use_numpy: Optional[bool] = None,
    ) -> None:
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        elif use_numpy and not HAVE_NUMPY:
            raise RuntimeError("numpy requested but not installed (pip install .[accel])")
        self.sim = sim
        self.collector = collector
        self.system = system
        self.n = n_nodes
        self._network = network
        self.net_stats = network.stats
        self._np = _np if use_numpy else None
        self._delay = latency.delay
        self._sample_gauges = sample_gauges and not getattr(collector, "aggregate", False)
        self._fanout = system.fanout
        self._max_age = system.max_age
        self._dedup_cap = system.dedup_capacity
        self._period = system.gossip_period
        self._phase = system.round_phase
        # the live bucket's next fire time, mirrored so restart alignment
        # can be checked at runtime (set to now + period at each tick)
        self._next_tick = system.round_phase
        self._cap = [system.buffer_capacity] * n_nodes
        self._round = 0
        self._next_seq = [0] * n_nodes
        # emission order == round-bucket member order == directory join
        # order; one list replicates all three under supported churn
        self._order = list(range(n_nodes))
        self._order_dirty = False
        self._alive = set(range(n_nodes))
        # the same per-node streams the per-node path draws from
        self._getrandbits = self._build_streams()
        # global event columns (index = event ordinal)
        self._eids: list[EventId] = []
        self._birth: list[int] = []
        self._by_birth: dict[int, list[int]] = {}
        # per-node columns
        self._buf: list[dict[int, int]] = [{} for _ in range(n_nodes)]
        self._arrival = [0] * n_nodes
        self._known: list[dict[int, None]] = [{} for _ in range(n_nodes)]
        self._known_peak = 0
        # numpy mirrors (live events only; rows freed on age-out)
        if self._np is not None:
            self._K: dict[int, Any] = {}  # event -> bool row: known by node d
            self._H: dict[int, Any] = {}  # event -> bool row: buffered at node d
            self._nknown: dict[int, int] = {}
            self._unsat: dict[int, None] = {}  # live events known by < n nodes
        else:
            self._holders: dict[int, list[int]] = {}
        # per-node protocol counters
        z = self._zeros
        self._st_broadcasts = z()
        self._st_received = z()
        self._st_delivered = z()
        self._st_dups = z()
        self._st_drop_over = z()
        self._st_drop_age = z()
        self._st_drop_resize = z()
        self._st_rounds = z()
        self._st_sent = z()
        # mutation tracking between a tick and its delivery fold: the
        # log reconstructs tick-time buffer snapshots, the flag tells
        # the batched fold whether any eviction (or crash) invalidated
        # its captured holder rows, and _crash_snaps preserves what a
        # node emitted this tick when a crash clears its columns before
        # the fold lands
        self._tick_log: list[tuple] = []
        self._evicted_since_tick = False
        self._snap_cache: dict[int, tuple] = {}
        self._crash_snaps: dict[int, tuple] = {}
        self.nodes: dict[int, _VectorNode] = {
            i: _VectorNode(i, VectorNodeProtocol(self, i)) for i in range(n_nodes)
        }
        self._member = rounds.add(
            self._on_round,
            system.gossip_period,
            phase=system.round_phase,
            jitter=system.round_jitter,
        )

    def _zeros(self):
        if self._np is not None:
            return self._np.zeros(self.n, dtype=self._np.int64)
        return [0] * self.n

    def _build_streams(self):
        """Per-node sampling streams (``getrandbits`` bound methods).

        The parallel lane overrides this to return ``None``: its workers
        own the per-node streams (recreated from the root seed), and the
        parent never draws from them.
        """
        return [
            self.sim.rngs.stream("protocol", i).getrandbits for i in range(self.n)
        ]

    def close(self) -> None:
        """Release executor-owned resources. No-op on the in-process lane."""

    # ------------------------------------------------------------------
    # the round tick
    # ------------------------------------------------------------------
    def _on_round(self) -> None:
        sim = self.sim
        now = sim.now
        self._round += 1
        self._next_tick = now + self._period
        self._age_out(now)
        self._tick_log = []
        self._evicted_since_tick = False
        self._snap_cache = {}
        self._crash_snaps = {}
        if self._order_dirty:
            self._order = [d for d in self._order if d in self._alive]
            self._order_dirty = False
        order = self._order
        a = len(order)
        if not a:
            return
        m = a - 1
        k = self._fanout if self._fanout < m else m
        if k > 0:
            # hand the sampling work to any helper lane *before* the
            # bookkeeping below, so it overlaps (no-op on this executor)
            self._dispatch_sampling(order, a, m, k)
        buf = self._buf
        st_rounds = self._st_rounds
        st_sent = self._st_sent
        if self._np is not None and a == self.n:
            st_rounds += 1
            if k > 0:
                st_sent += k
        elif k > 0:
            for i in order:
                st_rounds[i] += 1
                st_sent[i] += k
        else:
            for i in order:
                st_rounds[i] += 1
        sizes = [len(buf[i]) for i in order]
        if self._sample_gauges:
            sample_gauge = self.collector.sample_gauge
            for pi, i in enumerate(order):
                sample_gauge("buffer_len", i, now, sizes[pi])
        if k <= 0:
            # a lone survivor gossips to nobody: rounds/ages/gauges still
            # advance, nothing reaches the wire (no draws, no stats)
            return
        # --- one sampling pass for the whole population -------------------
        rows = self._sample_rows(order, a, m, k)
        # --- emission accounting (replicates Network.multicast) -----------
        ns = self.net_stats
        ns.sent += a * k
        ns.payload_items += sum(sizes) * k
        net = self._network
        if (
            type(net._loss) is NoLoss
            and not net._partition_of
            and not net._oneway_blocked
            and net._link_loss is None
            and net._cap.rate is None
        ):
            # the draw-free multicast fast path: every message survives
            n_sched = a * k
        else:
            rows, n_sched = self._chaos_filter(order, rows)
        if not n_sched:
            return
        # holder rows of unsaturated live events, captured at tick time —
        # these are the only events anyone can still receive for the
        # first time this instant
        unsat_snap: list[tuple] = []
        if self._np is not None:
            flatnonzero = self._np.flatnonzero
            H = self._H
            for e in self._unsat:
                em = flatnonzero(H[e])
                if em.size:
                    unsat_snap.append((e, em))
        sim.post(
            self._delay, self._deliver_instant, list(order), rows, sizes, unsat_snap, n_sched
        )

    def _dispatch_sampling(self, order, a: int, m: int, k: int) -> None:
        """Hook: start this tick's target sampling on a helper lane.

        Called as soon as the tick's ``(order, a, m, k)`` are fixed and
        before the per-node bookkeeping (round counters, sizes, gauges),
        so an overriding lane can overlap sampling with that work. The
        in-process executor samples synchronously in
        :meth:`_sample_rows` instead.
        """

    def _sample_rows(self, order, a: int, m: int, k: int) -> list[list[int]]:
        """Sample every emitter's gossip targets for this tick.

        Index-only replica of uniform_sample over each node's full view:
        peers are the alive order minus the owner, so peer index v maps
        to order[v] (v < pi) or order[v + 1] (v >= pi). Draws match
        rng.sample exactly.
        """
        getrandbits = self._getrandbits
        rows: list[list[int]] = [[]] * a
        if k >= m:
            # count >= len(peers): the full view returns every peer,
            # consuming no draws at all
            for pi in range(a):
                rows[pi] = order[:pi] + order[pi + 1 :]
        else:
            setsize = 21  # stdlib heuristic: set cost vs copying the pool
            if k > 5:
                setsize += 4 ** math.ceil(math.log(k * 3, 4))
            if m <= setsize:
                base_pool = list(range(m))
                for pi in range(a):
                    grb = getrandbits[order[pi]]
                    pool = base_pool.copy()
                    row = [0] * k
                    for t in range(k):
                        bound = m - t
                        bits = bound.bit_length()
                        j = grb(bits)
                        while j >= bound:
                            j = grb(bits)
                        v = pool[j]
                        pool[j] = pool[bound - 1]
                        row[t] = order[v] if v < pi else order[v + 1]
                    rows[pi] = row
            else:
                bits = m.bit_length()
                for pi in range(a):
                    grb = getrandbits[order[pi]]
                    selected: set[int] = set()
                    add = selected.add
                    row = [0] * k
                    for t in range(k):
                        j = grb(bits)
                        while j >= m or j in selected:
                            j = grb(bits)
                        add(j)
                        row[t] = order[j] if j < pi else order[j + 1]
                    rows[pi] = row
        return rows

    def _chaos_filter(self, order, rows):
        """Apply the network's live fault state to this tick's emissions.

        Replicates :meth:`~repro.sim.network.Network.multicast`'s
        non-fast-path rule order per message — partition, one-way cut,
        bandwidth cap (which consumes window budget), then the loss
        model and the per-link matrix — consuming the same ``("network",)``
        stream draw for draw. The deterministic rules run first for every
        message, then the loss draws over the survivors: valid because
        cap budget depends only on prior deterministic outcomes (cap
        precedes loss per message, and a lost message still consumed its
        budget) and the loss draws are the only RNG consumers.
        """
        net = self._network
        ns = self.net_stats
        partition_of = net._partition_of
        pget = partition_of.get if partition_of else None
        oneway_blocked = net._oneway_blocked
        oget = net._oneway_of.get if oneway_blocked else None
        cap_on = net._cap.rate is not None
        if pget is not None or oget is not None or cap_on:
            cap_exceeded = net._cap_exceeded
            filtered: list[list[int]] = []
            for pi, row in enumerate(rows):
                src = order[pi]
                sg = pget(src, -1) if pget is not None else -1
                so = oget(src, -1) if oget is not None else -1
                kept = []
                keep = kept.append
                for dst in row:
                    if pget is not None and pget(dst, -1) != sg:
                        ns.partitioned += 1
                        continue
                    if oget is not None and (so, oget(dst, -1)) in oneway_blocked:
                        ns.oneway_blocked += 1
                        continue
                    if cap_on and cap_exceeded():
                        continue  # counted in stats.capped by the network
                    keep(dst)
                filtered.append(kept)
            rows = filtered
        loss = net._loss
        lossless = type(loss) is NoLoss
        link_loss = net._link_loss
        if not lossless or link_loss is not None:
            rng = net._rng
            if (
                self._np is not None
                and link_loss is None
                and type(loss) is BernoulliLoss
            ):
                # one bulk block of doubles for the whole tick, replayed
                # against (and written back to) the stdlib stream state
                total = sum(map(len, rows))
                if total:
                    lost = (self._bulk_random(rng, total) < loss.p).tolist()
                    filtered = []
                    base = 0
                    for row in rows:
                        kept = [
                            dst
                            for off, dst in enumerate(row)
                            if not lost[base + off]
                        ]
                        ns.lost += len(row) - len(kept)
                        base += len(row)
                        filtered.append(kept)
                    rows = filtered
            else:
                filtered = []
                for pi, row in enumerate(rows):
                    src = order[pi]
                    kept = []
                    keep = kept.append
                    for dst in row:
                        if not lossless and loss.is_lost(src, dst, rng):
                            ns.lost += 1
                            continue
                        if link_loss is not None:
                            p = link_loss.get((src, dst))
                            if p is not None and rng.random() < p:
                                ns.link_lost += 1
                                continue
                        keep(dst)
                    filtered.append(kept)
                rows = filtered
        return rows, sum(map(len, rows))

    def _bulk_random(self, rng, count: int):
        """``count`` doubles from ``rng`` via numpy, byte-identical.

        Mirrors the Mersenne Twister state into a
        ``numpy.random.RandomState`` (same genrand_res53 double path: two
        uint32 draws per double), pulls one block, and writes the
        advanced state back so subsequent stdlib draws continue the
        stream exactly where a per-message loop would have left it.
        """
        np_ = self._np
        version, state, gauss = rng.getstate()
        rs = np_.random.RandomState()
        rs.set_state(("MT19937", np_.array(state[:-1], dtype=np_.uint32), state[-1]))
        out = rs.random_sample(count)
        _, keys, pos = rs.get_state()[:3]
        rng.setstate((version, tuple(int(x) for x in keys) + (int(pos),), gauss))
        return out

    def _age_out(self, now: float) -> None:
        expired = self._by_birth.pop(self._round - self._max_age - 1, None)
        if not expired:
            return
        buf = self._buf
        drops = self._st_drop_age
        np_ = self._np
        total = 0
        for e in expired:
            if np_ is not None:
                hs = np_.flatnonzero(self._H[e])
                drops[hs] += 1  # holder sets are duplicate-free
                holders = hs.tolist()
                for d in holders:
                    del buf[d][e]
                del self._K[e], self._H[e], self._nknown[e]
                self._unsat.pop(e, None)
            else:
                holders = [
                    d for d in dict.fromkeys(self._holders.pop(e, ())) if e in buf[d]
                ]
                for d in holders:
                    del buf[d][e]
                    drops[d] += 1
            total += len(holders)
        # age-out accounting is population-wide and carries no per-node
        # payload (unlike overflow's drop-age signal), so one weighted
        # series add replaces len(holders) identical on_drop calls —
        # integer-valued float adds, exactly equal either way
        if total:
            self.collector.drops_age_out.add(now, total)

    # ------------------------------------------------------------------
    # the delivery instant
    # ------------------------------------------------------------------
    def _deliver_instant(self, emitters, rows, sizes, unsat_snap, n_sched) -> None:
        # Mirrors Network._deliver_batch: arrivals land first, and one
        # same-instant re-post orders the fold after every event already
        # scheduled for this timestamp (sender ticks included).
        self.sim.post(0.0, self._fold_instant, emitters, rows, sizes, unsat_snap, n_sched)

    def _fold_instant(self, emitters, rows, sizes, unsat_snap, n_sched) -> None:
        now = self.sim.now
        self._snap_cache = {}
        # The batched fold assumes tick-time holder rows are still holders,
        # that no dedup store can overflow this instant, and that every
        # targeted node is still attached; otherwise the per-message
        # reference fold replays the exact sequential semantics (it owns
        # the delivered/no_route split for nodes that crashed in flight).
        if (
            self._np is not None
            and not self._evicted_since_tick
            and self._known_peak + len(unsat_snap) <= self._dedup_cap
        ):
            self.net_stats.delivered += n_sched
            self._fold_batched(emitters, rows, sizes, unsat_snap, now)
        else:
            self._fold_sequential(emitters, rows, now)

    def _fold_batched(self, emitters, rows, sizes, unsat_snap, now: float) -> None:
        np_ = self._np
        n = self.n
        a = len(emitters)
        lens = np_.fromiter(map(len, rows), dtype=np_.intp, count=a)
        total = int(lens.sum())
        if not total:
            return
        tflat = np_.fromiter(
            itertools.chain.from_iterable(rows), dtype=np_.intp, count=total
        )
        counts = np_.bincount(tflat, minlength=n)
        items = np_.bincount(
            tflat,
            weights=np_.repeat(np_.asarray(sizes, dtype=np_.float64), lens),
            minlength=n,
        )
        self._st_received += counts
        starts = np_.empty(a, dtype=np_.intp)
        starts[0] = 0
        if a > 1:
            np_.cumsum(lens[:-1], out=starts[1:])
        # emission positions, not node ids: under churn the alive order is
        # no longer sorted, and arrival order (who delivers first, the
        # fold order per receiver) follows emission positions
        pos_of = np_.full(n, -1, dtype=np_.intp)
        pos_of[np_.asarray(emitters, dtype=np_.intp)] = np_.arange(a, dtype=np_.intp)
        K = self._K
        H = self._H
        buf = self._buf
        nknown = self._nknown
        unsat = self._unsat
        # first receipts: for each still-spreading event, the earliest
        # emitter (in emission order) that holds it and targeted a node
        # unaware of it wins. The (position, position-at-s) ordering keys
        # are read here, *before* any staging/eviction mutates a buffer —
        # nothing has been evicted since tick, so buf[s][e] is still the
        # position e held in s's emitted summary.
        d_parts: list = []
        s_parts: list = []
        p_parts: list = []
        deliveries: list[tuple[int, int]] = []  # (event, receiver count)
        for e, holders in unsat_snap:
            ep = pos_of[holders]
            el = lens[ep]
            cand_parts = [
                tflat[s : s + ln]
                for s, ln in zip(starts[ep].tolist(), el.tolist())
                if ln
            ]
            if not cand_parts:
                continue
            cand = (
                np_.concatenate(cand_parts) if len(cand_parts) > 1 else cand_parts[0]
            )
            mask = ~K[e][cand]
            if not mask.any():
                continue
            cd = cand[mask]
            cs = np_.repeat(ep, el)[mask]
            order = np_.lexsort((cs, cd))
            cd = cd[order]
            cs = cs[order]
            keep = np_.ones(cd.shape[0], dtype=bool)
            keep[1:] = cd[1:] != cd[:-1]
            cd = cd[keep]
            cs = cs[keep]
            pos = np_.fromiter(
                (buf[emitters[p]][e] for p in cs.tolist()),
                dtype=np_.int64,
                count=cd.shape[0],
            )
            K[e][cd] = True
            H[e][cd] = True
            nk = nknown[e] + cd.shape[0]
            nknown[e] = nk
            if nk >= n:
                unsat.pop(e, None)
            d_parts.append(cd)
            s_parts.append(cs)
            p_parts.append(pos)
            deliveries.append((e, cd.shape[0]))
        collector = self.collector
        aggregate = getattr(collector, "aggregate", False)
        eids = self._eids
        known = self._known
        cap = self._cap
        arrival = self._arrival
        new_counts = np_.zeros(n, dtype=np_.int64)
        if d_parts:
            D = np_.concatenate(d_parts)
            S = np_.concatenate(s_parts)
            P = np_.concatenate(p_parts)
            E = np_.concatenate(
                [np_.full(c, e, dtype=np_.int64) for e, c in deliveries]
            )
            # one global sort gives every receiver its fold order:
            # emission position, then the event's position in that
            # emitter's summary — exactly the sequential per-message order
            order = np_.lexsort((P, S, D))
            new_counts += np_.bincount(D, minlength=n)
            peak = self._known_peak
            prev_d = -1
            kd = bd = None
            arr = 0
            for d, e in zip(D[order].tolist(), E[order].tolist()):
                if d != prev_d:
                    if prev_d >= 0:
                        arrival[prev_d] = arr
                        if len(kd) > peak:
                            peak = len(kd)
                        if len(bd) > cap[prev_d]:
                            self._evict_overflow(prev_d, now, "overflow")
                    prev_d = d
                    kd = known[d]
                    bd = buf[d]
                    arr = arrival[d]
                kd[e] = None
                bd[e] = arr
                arr += 1
                if not aggregate:
                    collector.on_deliver(d, eids[e], now)
            arrival[prev_d] = arr
            if len(kd) > peak:
                peak = len(kd)
            if len(bd) > cap[prev_d]:
                self._evict_overflow(prev_d, now, "overflow")
            self._known_peak = peak
            self._st_delivered += new_counts
            if aggregate:
                bulk = collector.on_deliver_bulk
                for e, c in deliveries:
                    bulk(eids[e], c, now)
        self._st_dups += items.astype(np_.int64) - new_counts

    def _fold_sequential(self, emitters, rows, now: float) -> None:
        """Per-message reference fold: exactly ``_receive_many`` per node.

        Also the only fold that can see a receiver which crashed while
        the instant was in flight — its messages are no-routed, exactly
        as the network's flush does for a detached handler.
        """
        inbox: dict[int, list[int]] = {}
        for pi, row in enumerate(rows):
            s = emitters[pi]
            for d in row:
                q = inbox.get(d)
                if q is None:
                    inbox[d] = [s]
                else:
                    q.append(s)
        ns = self.net_stats
        alive = self._alive
        known = self._known
        buf = self._buf
        st_received = self._st_received
        st_delivered = self._st_delivered
        st_dups = self._st_dups
        collector = self.collector
        eids = self._eids
        np_ = self._np
        log = self._tick_log
        dedup_cap = self._dedup_cap
        for d, senders in inbox.items():
            if d not in alive:
                # receiver crashed while the messages were in flight
                ns.no_route += len(senders)
                continue
            ns.delivered += len(senders)
            st_received[d] += len(senders)
            kd = known[d]
            kd_keys = kd.keys()
            bd = buf[d]
            dups_d = 0
            for s in senders:
                ids, idset = self._tick_snapshot(s)
                if not ids:
                    continue
                if kd_keys >= idset:
                    # steady state: every summary a duplicate — nothing
                    # staged, no overflow possible, ages already global
                    dups_d += len(ids)
                    continue
                arr = self._arrival[d]
                for e in ids:
                    if e in kd:
                        dups_d += 1
                        continue
                    kd[e] = None
                    st_delivered[d] += 1
                    collector.on_deliver(d, eids[e], now)
                    if e in bd:
                        raise ValueError(f"event {eids[e]!r} already buffered")
                    bd[e] = arr
                    arr += 1
                    log.append(("stage", d, e))
                    if np_ is not None:
                        self._K[e][d] = True
                        self._H[e][d] = True
                        nk = self._nknown[e] + 1
                        self._nknown[e] = nk
                        if nk >= self.n:
                            self._unsat.pop(e, None)
                    else:
                        hl = self._holders.get(e)
                        if hl is None:
                            self._holders[e] = [d]
                        else:
                            hl.append(d)
                self._arrival[d] = arr
                if len(kd) > dedup_cap:
                    self._trim_known(d)
                elif len(kd) > self._known_peak:
                    self._known_peak = len(kd)
                if len(bd) > self._cap[d]:
                    self._evict_overflow(d, now, "overflow")
            if dups_d:
                st_dups[d] += dups_d

    def _tick_snapshot(self, s: int) -> tuple[tuple, frozenset]:
        """What node ``s`` emitted this instant: its buffer at tick time.

        Reconstructed from the live buffer by undoing the stage/evict log
        in reverse — zero copies on the common no-mutation instants. A
        node that crashed since the tick had its summary preserved in
        ``_crash_snaps`` before its columns were cleared.
        """
        snap = self._snap_cache.get(s)
        if snap is not None:
            return snap
        snap = self._crash_snaps.get(s)
        if snap is not None:
            self._snap_cache[s] = snap
            return snap
        mutations = [entry for entry in self._tick_log if entry[1] == s]
        if not mutations:
            ids = tuple(self._buf[s])
        else:
            d = dict(self._buf[s])
            for entry in reversed(mutations):
                if entry[0] == "stage":
                    d.pop(entry[2], None)
                else:
                    d[entry[2]] = entry[3]
            ids = tuple(e for e, _arr in sorted(d.items(), key=lambda kv: kv[1]))
        snap = (ids, frozenset(ids))
        self._snap_cache[s] = snap
        return snap

    # ------------------------------------------------------------------
    # crash / restart (the churn vocabulary)
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        """Silent departure: clear the node's columns, keep its identity.

        The caller (:class:`~repro.workload.cluster.SimCluster`) owns the
        directory and the ``nodes`` dict; this clears the columnar state.
        An in-flight instant may still need what this node emitted at the
        tick, so its tick-time summary is snapshotted first and the
        per-message fold takes over for the instant.
        """
        i = node_id
        self._crash_snaps[i] = self._tick_snapshot(i)
        self._evicted_since_tick = True
        self._alive.discard(i)
        self._order_dirty = True
        np_ = self._np
        bd = self._buf[i]
        if np_ is not None:
            H = self._H
            for e in bd:
                H[e][i] = False
        # (stdlib holder lists self-filter against the cleared buffer)
        bd.clear()
        kd = self._known[i]
        if np_ is not None:
            K = self._K
            nknown = self._nknown
            unsat = self._unsat
            for e in kd:
                row = K.get(e)  # None once the event aged out
                if row is not None and row[i]:
                    row[i] = False
                    nknown[e] -= 1
                    # the event can spread again (to this identity, if
                    # it restarts) — back onto the unsaturated set
                    unsat[e] = None
        kd.clear()

    def restart(self, node_id: int) -> None:
        """Re-admit a crashed identity as a fresh process at a round tick.

        Zeroed buffer/dedup/stat columns under the old identity, appended
        at the end of the emission order — exactly where a per-node
        restart lands in the round bucket and the directory.
        """
        i = node_id
        if i in self._alive:
            raise ValueError(f"node {i!r} already exists")
        if not (isinstance(i, int) and 0 <= i < self.n):
            raise RuntimeError(
                f"join of unknown node {i!r} is not supported on the "
                "vectorized mega lane (no columns for it); construct the "
                "cluster with allow_mega=False"
            )
        if self.sim.now + self._phase != self._next_tick:
            raise RuntimeError(
                f"restart of node {i!r} at t={self.sim.now} does not land "
                "on a round tick; off-tick restarts are not supported on "
                "the vectorized mega lane — construct the cluster with "
                "allow_mega=False"
            )
        if self._order_dirty:
            self._order = [d for d in self._order if d in self._alive]
            self._order_dirty = False
        self._order.append(i)
        self._alive.add(i)
        self._next_seq[i] = 0
        self._arrival[i] = 0
        self._cap[i] = self.system.buffer_capacity
        for col in (
            self._st_broadcasts,
            self._st_received,
            self._st_delivered,
            self._st_dups,
            self._st_drop_over,
            self._st_drop_age,
            self._st_drop_resize,
            self._st_rounds,
            self._st_sent,
        ):
            col[i] = 0

    # ------------------------------------------------------------------
    # facade entry points
    # ------------------------------------------------------------------
    def _broadcast(self, i: int, payload: Any, now: float) -> EventId:
        e = len(self._eids)
        eid = EventId(i, self._next_seq[i])
        self._next_seq[i] += 1
        self._eids.append(eid)
        birth = self._round
        self._birth.append(birth)
        bb = self._by_birth.get(birth)
        if bb is None:
            self._by_birth[birth] = [e]
        else:
            bb.append(e)
        kd = self._known[i]
        kd[e] = None
        if len(kd) > self._dedup_cap:
            self._trim_known(i)
        elif len(kd) > self._known_peak:
            self._known_peak = len(kd)
        self._st_broadcasts[i] += 1
        self._st_delivered[i] += 1
        # parked by the collector until the sender's on_admitted lands
        self.collector.on_deliver(i, eid, now)
        np_ = self._np
        if np_ is not None:
            row = np_.zeros(self.n, dtype=bool)
            row[i] = True
            self._K[e] = row
            self._H[e] = row.copy()
            self._nknown[e] = 1
            if self.n > 1:
                self._unsat[e] = None
        else:
            self._holders[e] = [i]
        bd = self._buf[i]
        bd[e] = self._arrival[i]
        self._arrival[i] += 1
        self._tick_log.append(("stage", i, e))
        if len(bd) > self._cap[i]:
            self._evict_overflow(i, now, "overflow")
        return eid

    def _set_capacity(self, i: int, capacity: int, now: float) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self._cap[i] = int(capacity)
        self._evict_overflow(i, now, "resize")

    # ------------------------------------------------------------------
    # shared mutation helpers
    # ------------------------------------------------------------------
    def _evict_overflow(self, d: int, now: float, reason: str) -> None:
        bd = self._buf[d]
        excess = len(bd) - self._cap[d]
        if excess <= 0:
            return
        self._evicted_since_tick = True
        birth = self._birth
        victims = heapq.nsmallest(
            excess, ((birth[e], arr, e) for e, arr in bd.items())
        )
        st = self._st_drop_over if reason == "overflow" else self._st_drop_resize
        eids = self._eids
        collector = self.collector
        log = self._tick_log
        np_ = self._np
        round_ = self._round
        for b, arr, e in victims:
            del bd[e]
            log.append(("evict", d, e, arr))
            if np_ is not None:
                self._H[e][d] = False
            st[d] += 1
            collector.on_drop(d, eids[e], round_ - b, reason, now)

    def _trim_known(self, d: int) -> None:
        kd = self._known[d]
        excess = len(kd) - self._dedup_cap
        if excess <= 0:
            return
        np_ = self._np
        for e in list(itertools.islice(iter(kd), excess)):
            del kd[e]
            if np_ is not None:
                row = self._K.get(e)
                if row is not None and row[d]:
                    row[d] = False
                    self._nknown[e] -= 1
                    self._unsat[e] = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _stats_of(self, i: int) -> ProtocolStats:
        return ProtocolStats(
            rounds=int(self._st_rounds[i]),
            broadcasts=int(self._st_broadcasts[i]),
            messages_sent=int(self._st_sent[i]),
            messages_received=int(self._st_received[i]),
            events_delivered=int(self._st_delivered[i]),
            duplicates_seen=int(self._st_dups[i]),
            drops_overflow=int(self._st_drop_over[i]),
            drops_age_out=int(self._st_drop_age[i]),
            drops_resize=int(self._st_drop_resize[i]),
            drops_obsolete=0,
        )

    @property
    def live_events(self) -> int:
        """Number of events still circulating (diagnostics)."""
        return sum(len(v) for v in self._by_birth.values())
