"""Whole-population columnar round execution (the mega-sim lane).

:class:`VectorRoundExecutor` advances *all* nodes of a round-synchronous
lpbcast group in bulk: one registered round member per cluster (not one
per node), population-level columns indexed by node id (buffer contents,
dedup membership, per-node counters), one batched target-sampling pass
per round, and one delivery fold per instant. It is a drop-in third
dispatch mode for :class:`~repro.workload.cluster.SimCluster`
(``dispatch="vector"``): scenarios, sweeps and expectations lower onto it
unchanged, and a run is **byte-identical** to the per-node ``"batched"``
path — the same RNG streams are consumed draw for draw, so the
determinism/parity suites compare entire runs, exactly as
``on_receive_reference`` proves the per-node fast paths.

Why this can be exact
---------------------
The vectorized lane only engages for configurations where the per-node
semantics provably collapse (see :func:`vector_eligible`): the baseline
``lpbcast`` protocol, full membership, a fixed round phase with zero
jitter, constant lossless latency shorter than the gossip period, and no
fault/churn schedules. In that regime:

* every copy of an event carries ``anchor == birth round`` (all buffers
  advance their round counter at the same instants, broadcasts stage at
  age 0, and receivers fold at the same global round) — so
  ``sync_ages`` is a global no-op, age-out is simultaneous everywhere,
  and per-(node, event) age state reduces to membership plus an arrival
  sequence;
* target sampling is the only RNG consumer, and
  :func:`~repro.sim.rng.uniform_sample` over a full view is replicated
  here index-only, draw for draw, against the same per-node
  ``("protocol", i)`` streams;
* the network's draw-free multicast fast path consumes no RNG and
  applies one constant delay, so its statistics can be replicated
  without routing messages through the heap.

Anything outside that envelope (the adaptive variant, partial views,
loss, jitter, churn, ...) transparently falls back to materialising real
per-node protocol instances — ``dispatch="vector"`` then equals
``"batched"`` by construction.

The optional ``numpy`` fast path (``pip install .[accel]``) vectorises
the per-instant delivery fold; it is auto-detected and produces results
identical to the stdlib path (a property test asserts this). Per-message
sequential folding remains as the in-module reference and handles the
rare instants the batched fold cannot prove safe (dedup-store pressure,
mid-instant evictions).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Optional

from repro.gossip.events import EventId
from repro.gossip.lpbcast import ProtocolStats
from repro.sim.network import ConstantLatency, Network, NoLoss
from repro.sim.engine import RoundDispatcher, Simulator

try:  # optional accelerator — stdlib-only installs work unchanged
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on stdlib-only installs
    _np = None

HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "VectorNodeProtocol", "VectorRoundExecutor", "vector_eligible"]


def vector_eligible(
    *,
    protocol: Any,
    membership: str,
    system,
    latency,
    loss,
    trace: bool,
    aggregate,
    rate_limit,
    n_nodes: int,
    allow_mega: bool = True,
) -> bool:
    """Whether a configuration may run on the columnar mega lane.

    ``allow_mega`` is the caller's veto for conditions the constructor
    cannot see (fault/churn schedules are applied after construction —
    the experiment harness passes ``False`` when a spec carries them).
    """
    if not allow_mega:
        return False
    if protocol != "lpbcast" or membership != "full":
        return False
    if system.round_phase is None or system.round_jitter:
        return False
    if type(latency) is not ConstantLatency:
        return False
    # delay must be inside one round: exactly one instant is in flight
    # between consecutive ticks, which is what makes anchors global
    if not latency.delay < system.gossip_period:
        return False
    if loss is not None and type(loss) is not NoLoss:
        return False
    if trace or aggregate is not None or rate_limit is not None:
        return False
    return n_nodes >= 2


class _VectorBuffer:
    """``len()``/capacity view over one node's column of the executor."""

    __slots__ = ("_ex", "_node")

    def __init__(self, ex: "VectorRoundExecutor", node: int) -> None:
        self._ex = ex
        self._node = node

    def __len__(self) -> int:
        return len(self._ex._buf[self._node])

    @property
    def capacity(self) -> int:
        return self._ex._cap[self._node]


class VectorNodeProtocol:
    """Per-node facade over the executor's columns.

    Quacks like :class:`~repro.gossip.lpbcast.LpbcastProtocol` for
    everything the drivers, senders, resource scripts and the harness
    touch: admission, capacity changes, buffer occupancy and ``stats``.
    """

    may_reply = False

    __slots__ = ("node_id", "buffer", "_ex")

    def __init__(self, ex: "VectorRoundExecutor", node_id: int) -> None:
        self.node_id = node_id
        self.buffer = _VectorBuffer(ex, node_id)
        self._ex = ex

    def broadcast(self, payload: Any, now: float) -> EventId:
        return self._ex._broadcast(self.node_id, payload, now)

    def try_broadcast(self, payload: Any, now: float) -> Optional[EventId]:
        return self._ex._broadcast(self.node_id, payload, now)

    def time_until_admission(self, now: float) -> float:
        return 0.0

    @property
    def allowed_rate(self) -> Optional[float]:
        return None

    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        self._ex._set_capacity(self.node_id, capacity, now)

    @property
    def buffer_capacity(self) -> int:
        return self._ex._cap[self.node_id]

    @property
    def stats(self) -> ProtocolStats:
        return self._ex._stats_of(self.node_id)


class _VectorNode:
    """What ``cluster.nodes[i]`` holds on the mega lane."""

    __slots__ = ("node_id", "protocol")

    def __init__(self, node_id: int, protocol: VectorNodeProtocol) -> None:
        self.node_id = node_id
        self.protocol = protocol


class VectorRoundExecutor:
    """Advance an entire round-synchronous lpbcast group per round.

    State is columnar: one entry per node id in flat lists/arrays, one
    row per live event. Per round the executor ages out expired events
    globally, samples every node's gossip targets in one pass (consuming
    each node's own RNG stream exactly as the per-node path would),
    replicates the network's draw-free multicast accounting, and folds
    the whole instant's deliveries in bulk when it reaches the wire.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        collector,
        system,
        n_nodes: int,
        latency: ConstantLatency,
        rounds: RoundDispatcher,
        sample_gauges: bool = True,
        use_numpy: Optional[bool] = None,
    ) -> None:
        if use_numpy is None:
            use_numpy = HAVE_NUMPY
        elif use_numpy and not HAVE_NUMPY:
            raise RuntimeError("numpy requested but not installed (pip install .[accel])")
        self.sim = sim
        self.collector = collector
        self.system = system
        self.n = n_nodes
        self.net_stats = network.stats
        self._np = _np if use_numpy else None
        self._delay = latency.delay
        self._sample_gauges = sample_gauges and not getattr(collector, "aggregate", False)
        self._fanout = system.fanout
        self._max_age = system.max_age
        self._dedup_cap = system.dedup_capacity
        self._tlen = min(system.fanout, n_nodes - 1)
        self._cap = [system.buffer_capacity] * n_nodes
        self._round = 0
        self._next_seq = [0] * n_nodes
        # the same per-node streams the per-node path draws from
        self._getrandbits = [
            sim.rngs.stream("protocol", i).getrandbits for i in range(n_nodes)
        ]
        # global event columns (index = event ordinal)
        self._eids: list[EventId] = []
        self._birth: list[int] = []
        self._by_birth: dict[int, list[int]] = {}
        # per-node columns
        self._buf: list[dict[int, int]] = [{} for _ in range(n_nodes)]
        self._arrival = [0] * n_nodes
        self._known: list[dict[int, None]] = [{} for _ in range(n_nodes)]
        self._known_peak = 0
        # numpy mirrors (live events only; rows freed on age-out)
        if self._np is not None:
            self._K: dict[int, Any] = {}  # event -> bool row: known by node d
            self._H: dict[int, Any] = {}  # event -> bool row: buffered at node d
            self._nknown: dict[int, int] = {}
            self._unsat: dict[int, None] = {}  # live events known by < n nodes
        else:
            self._holders: dict[int, list[int]] = {}
        # per-node protocol counters
        z = self._zeros
        self._st_broadcasts = z()
        self._st_received = z()
        self._st_delivered = z()
        self._st_dups = z()
        self._st_drop_over = z()
        self._st_drop_age = z()
        self._st_drop_resize = z()
        # mutation tracking between a tick and its delivery fold: the
        # log reconstructs tick-time buffer snapshots, the flag tells
        # the batched fold whether any eviction invalidated its
        # captured holder rows
        self._tick_log: list[tuple] = []
        self._evicted_since_tick = False
        self._snap_cache: dict[int, tuple] = {}
        self.nodes: dict[int, _VectorNode] = {
            i: _VectorNode(i, VectorNodeProtocol(self, i)) for i in range(n_nodes)
        }
        self._member = rounds.add(
            self._on_round,
            system.gossip_period,
            phase=system.round_phase,
            jitter=system.round_jitter,
        )

    def _zeros(self):
        if self._np is not None:
            return self._np.zeros(self.n, dtype=self._np.int64)
        return [0] * self.n

    # ------------------------------------------------------------------
    # the round tick
    # ------------------------------------------------------------------
    def _on_round(self) -> None:
        sim = self.sim
        now = sim.now
        self._round += 1
        self._age_out(now)
        self._tick_log = []
        self._evicted_since_tick = False
        n = self.n
        k = self._tlen
        buf = self._buf
        # --- one sampling pass for the whole population -------------------
        # Index-only replica of uniform_sample over each node's full view:
        # peers are [0..n-1] minus the owner, so peer index j maps to node
        # id j (j < i) or j + 1 (j >= i). Draws match rng.sample exactly.
        getrandbits = self._getrandbits
        rows: list[list[int]] = [[]] * n
        m = n - 1
        if k >= m:
            # count >= len(peers): the full view returns every peer,
            # consuming no draws at all
            all_ids = list(range(n))
            for i in range(n):
                rows[i] = all_ids[:i] + all_ids[i + 1 :]
        else:
            setsize = 21  # stdlib heuristic: set cost vs copying the pool
            if k > 5:
                setsize += 4 ** math.ceil(math.log(k * 3, 4))
            if m <= setsize:
                base_pool = list(range(m))
                for i in range(n):
                    grb = getrandbits[i]
                    pool = base_pool.copy()
                    row = [0] * k
                    for t in range(k):
                        bound = m - t
                        bits = bound.bit_length()
                        j = grb(bits)
                        while j >= bound:
                            j = grb(bits)
                        v = pool[j]
                        pool[j] = pool[bound - 1]
                        row[t] = v if v < i else v + 1
                    rows[i] = row
            else:
                bits = m.bit_length()
                for i in range(n):
                    grb = getrandbits[i]
                    selected: set[int] = set()
                    add = selected.add
                    row = [0] * k
                    for t in range(k):
                        j = grb(bits)
                        while j >= m or j in selected:
                            j = grb(bits)
                        add(j)
                        row[t] = j if j < i else j + 1
                    rows[i] = row
        # --- emission accounting (the draw-free multicast fast path) ------
        sizes = [len(b) for b in buf]
        ns = self.net_stats
        ns.sent += n * k
        ns.payload_items += sum(sizes) * k
        if self._sample_gauges:
            sample_gauge = self.collector.sample_gauge
            for i in range(n):
                sample_gauge("buffer_len", i, now, sizes[i])
        # holder rows of unsaturated live events, captured at tick time —
        # these are the only events anyone can still receive for the
        # first time this instant
        unsat_snap: list[tuple] = []
        if self._np is not None:
            flatnonzero = self._np.flatnonzero
            H = self._H
            for e in self._unsat:
                em = flatnonzero(H[e])
                if em.size:
                    unsat_snap.append((e, em))
        sim.post(self._delay, self._deliver_instant, rows, sizes, unsat_snap)

    def _age_out(self, now: float) -> None:
        expired = self._by_birth.pop(self._round - self._max_age - 1, None)
        if not expired:
            return
        buf = self._buf
        drops = self._st_drop_age
        np_ = self._np
        total = 0
        for e in expired:
            if np_ is not None:
                hs = np_.flatnonzero(self._H[e])
                drops[hs] += 1  # holder sets are duplicate-free
                holders = hs.tolist()
                for d in holders:
                    del buf[d][e]
                del self._K[e], self._H[e], self._nknown[e]
                self._unsat.pop(e, None)
            else:
                holders = [
                    d for d in dict.fromkeys(self._holders.pop(e, ())) if e in buf[d]
                ]
                for d in holders:
                    del buf[d][e]
                    drops[d] += 1
            total += len(holders)
        # age-out accounting is population-wide and carries no per-node
        # payload (unlike overflow's drop-age signal), so one weighted
        # series add replaces len(holders) identical on_drop calls —
        # integer-valued float adds, exactly equal either way
        if total:
            self.collector.drops_age_out.add(now, total)

    # ------------------------------------------------------------------
    # the delivery instant
    # ------------------------------------------------------------------
    def _deliver_instant(self, rows, sizes, unsat_snap) -> None:
        # Mirrors Network._deliver_batch: arrivals land first, and one
        # same-instant re-post orders the fold after every event already
        # scheduled for this timestamp (sender ticks included).
        self.sim.post(0.0, self._fold_instant, rows, sizes, unsat_snap)

    def _fold_instant(self, rows, sizes, unsat_snap) -> None:
        now = self.sim.now
        self.net_stats.delivered += self.n * self._tlen
        self._snap_cache = {}
        # The batched fold assumes tick-time holder rows are still holders
        # and that no dedup store can overflow this instant; otherwise the
        # per-message reference fold replays the exact sequential semantics.
        if (
            self._np is not None
            and not self._evicted_since_tick
            and self._known_peak + len(unsat_snap) <= self._dedup_cap
        ):
            self._fold_batched(rows, sizes, unsat_snap, now)
        else:
            self._fold_sequential(rows, now)

    def _fold_batched(self, rows, sizes, unsat_snap, now: float) -> None:
        np_ = self._np
        n = self.n
        k = self._tlen
        tflat = np_.fromiter(
            itertools.chain.from_iterable(rows), dtype=np_.intp, count=n * k
        )
        counts = np_.bincount(tflat, minlength=n)
        items = np_.bincount(
            tflat, weights=np_.repeat(np_.asarray(sizes, dtype=np_.float64), k), minlength=n
        )
        self._st_received += counts
        T = tflat.reshape(n, k)
        K = self._K
        H = self._H
        buf = self._buf
        nknown = self._nknown
        unsat = self._unsat
        # first receipts: for each still-spreading event, the lowest
        # emitter that holds it and targeted a node unaware of it wins.
        # The (s, position-at-s) ordering keys are read here, *before*
        # any staging/eviction mutates a buffer — nothing has been
        # evicted since tick, so buf[s][e] is still the position e held
        # in s's emitted summary.
        d_parts: list = []
        s_parts: list = []
        p_parts: list = []
        deliveries: list[tuple[int, int]] = []  # (event, receiver count)
        for e, emitters in unsat_snap:
            cand = T[emitters].ravel()
            mask = ~K[e][cand]
            if not mask.any():
                continue
            cd = cand[mask]
            cs = np_.repeat(emitters, k)[mask]
            order = np_.lexsort((cs, cd))
            cd = cd[order]
            cs = cs[order]
            keep = np_.ones(cd.shape[0], dtype=bool)
            keep[1:] = cd[1:] != cd[:-1]
            cd = cd[keep]
            cs = cs[keep]
            be = buf.__getitem__
            pos = np_.fromiter(
                (be(s)[e] for s in cs.tolist()), dtype=np_.int64, count=cd.shape[0]
            )
            K[e][cd] = True
            H[e][cd] = True
            nk = nknown[e] + cd.shape[0]
            nknown[e] = nk
            if nk >= n:
                unsat.pop(e, None)
            d_parts.append(cd)
            s_parts.append(cs)
            p_parts.append(pos)
            deliveries.append((e, cd.shape[0]))
        collector = self.collector
        aggregate = getattr(collector, "aggregate", False)
        eids = self._eids
        known = self._known
        cap = self._cap
        arrival = self._arrival
        new_counts = np_.zeros(n, dtype=np_.int64)
        if d_parts:
            D = np_.concatenate(d_parts)
            S = np_.concatenate(s_parts)
            P = np_.concatenate(p_parts)
            E = np_.concatenate(
                [np_.full(c, e, dtype=np_.int64) for e, c in deliveries]
            )
            # one global sort gives every receiver its fold order:
            # emitter id, then the event's position in that emitter's
            # summary — exactly the sequential per-message order
            order = np_.lexsort((P, S, D))
            new_counts += np_.bincount(D, minlength=n)
            peak = self._known_peak
            prev_d = -1
            kd = bd = None
            arr = 0
            for d, e in zip(D[order].tolist(), E[order].tolist()):
                if d != prev_d:
                    if prev_d >= 0:
                        arrival[prev_d] = arr
                        if len(kd) > peak:
                            peak = len(kd)
                        if len(bd) > cap[prev_d]:
                            self._evict_overflow(prev_d, now, "overflow")
                    prev_d = d
                    kd = known[d]
                    bd = buf[d]
                    arr = arrival[d]
                kd[e] = None
                bd[e] = arr
                arr += 1
                if not aggregate:
                    collector.on_deliver(d, eids[e], now)
            arrival[prev_d] = arr
            if len(kd) > peak:
                peak = len(kd)
            if len(bd) > cap[prev_d]:
                self._evict_overflow(prev_d, now, "overflow")
            self._known_peak = peak
            self._st_delivered += new_counts
            if aggregate:
                bulk = collector.on_deliver_bulk
                for e, c in deliveries:
                    bulk(eids[e], c, now)
        self._st_dups += items.astype(np_.int64) - new_counts

    def _fold_sequential(self, rows, now: float) -> None:
        """Per-message reference fold: exactly ``_receive_many`` per node."""
        inbox: dict[int, list[int]] = {}
        for s, row in enumerate(rows):
            for d in row:
                q = inbox.get(d)
                if q is None:
                    inbox[d] = [s]
                else:
                    q.append(s)
        known = self._known
        buf = self._buf
        st_received = self._st_received
        st_delivered = self._st_delivered
        st_dups = self._st_dups
        collector = self.collector
        eids = self._eids
        np_ = self._np
        log = self._tick_log
        dedup_cap = self._dedup_cap
        for d, emitters in inbox.items():
            st_received[d] += len(emitters)
            kd = known[d]
            kd_keys = kd.keys()
            bd = buf[d]
            dups_d = 0
            for s in emitters:
                ids, idset = self._tick_snapshot(s)
                if not ids:
                    continue
                if kd_keys >= idset:
                    # steady state: every summary a duplicate — nothing
                    # staged, no overflow possible, ages already global
                    dups_d += len(ids)
                    continue
                arr = self._arrival[d]
                for e in ids:
                    if e in kd:
                        dups_d += 1
                        continue
                    kd[e] = None
                    st_delivered[d] += 1
                    collector.on_deliver(d, eids[e], now)
                    if e in bd:
                        raise ValueError(f"event {eids[e]!r} already buffered")
                    bd[e] = arr
                    arr += 1
                    log.append(("stage", d, e))
                    if np_ is not None:
                        self._K[e][d] = True
                        self._H[e][d] = True
                        nk = self._nknown[e] + 1
                        self._nknown[e] = nk
                        if nk >= self.n:
                            self._unsat.pop(e, None)
                    else:
                        hl = self._holders.get(e)
                        if hl is None:
                            self._holders[e] = [d]
                        else:
                            hl.append(d)
                self._arrival[d] = arr
                if len(kd) > dedup_cap:
                    self._trim_known(d)
                elif len(kd) > self._known_peak:
                    self._known_peak = len(kd)
                if len(bd) > self._cap[d]:
                    self._evict_overflow(d, now, "overflow")
            if dups_d:
                st_dups[d] += dups_d

    def _tick_snapshot(self, s: int) -> tuple[tuple, frozenset]:
        """What node ``s`` emitted this instant: its buffer at tick time.

        Reconstructed from the live buffer by undoing the stage/evict log
        in reverse — zero copies on the common no-mutation instants.
        """
        snap = self._snap_cache.get(s)
        if snap is not None:
            return snap
        mutations = [entry for entry in self._tick_log if entry[1] == s]
        if not mutations:
            ids = tuple(self._buf[s])
        else:
            d = dict(self._buf[s])
            for entry in reversed(mutations):
                if entry[0] == "stage":
                    d.pop(entry[2], None)
                else:
                    d[entry[2]] = entry[3]
            ids = tuple(e for e, _arr in sorted(d.items(), key=lambda kv: kv[1]))
        snap = (ids, frozenset(ids))
        self._snap_cache[s] = snap
        return snap

    # ------------------------------------------------------------------
    # facade entry points
    # ------------------------------------------------------------------
    def _broadcast(self, i: int, payload: Any, now: float) -> EventId:
        e = len(self._eids)
        eid = EventId(i, self._next_seq[i])
        self._next_seq[i] += 1
        self._eids.append(eid)
        birth = self._round
        self._birth.append(birth)
        bb = self._by_birth.get(birth)
        if bb is None:
            self._by_birth[birth] = [e]
        else:
            bb.append(e)
        kd = self._known[i]
        kd[e] = None
        if len(kd) > self._dedup_cap:
            self._trim_known(i)
        elif len(kd) > self._known_peak:
            self._known_peak = len(kd)
        self._st_broadcasts[i] += 1
        self._st_delivered[i] += 1
        # parked by the collector until the sender's on_admitted lands
        self.collector.on_deliver(i, eid, now)
        np_ = self._np
        if np_ is not None:
            row = np_.zeros(self.n, dtype=bool)
            row[i] = True
            self._K[e] = row
            self._H[e] = row.copy()
            self._nknown[e] = 1
            if self.n > 1:
                self._unsat[e] = None
        else:
            self._holders[e] = [i]
        bd = self._buf[i]
        bd[e] = self._arrival[i]
        self._arrival[i] += 1
        self._tick_log.append(("stage", i, e))
        if len(bd) > self._cap[i]:
            self._evict_overflow(i, now, "overflow")
        return eid

    def _set_capacity(self, i: int, capacity: int, now: float) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self._cap[i] = int(capacity)
        self._evict_overflow(i, now, "resize")

    # ------------------------------------------------------------------
    # shared mutation helpers
    # ------------------------------------------------------------------
    def _evict_overflow(self, d: int, now: float, reason: str) -> None:
        bd = self._buf[d]
        excess = len(bd) - self._cap[d]
        if excess <= 0:
            return
        self._evicted_since_tick = True
        birth = self._birth
        victims = heapq.nsmallest(
            excess, ((birth[e], arr, e) for e, arr in bd.items())
        )
        st = self._st_drop_over if reason == "overflow" else self._st_drop_resize
        eids = self._eids
        collector = self.collector
        log = self._tick_log
        np_ = self._np
        round_ = self._round
        for b, arr, e in victims:
            del bd[e]
            log.append(("evict", d, e, arr))
            if np_ is not None:
                self._H[e][d] = False
            st[d] += 1
            collector.on_drop(d, eids[e], round_ - b, reason, now)

    def _trim_known(self, d: int) -> None:
        kd = self._known[d]
        excess = len(kd) - self._dedup_cap
        if excess <= 0:
            return
        np_ = self._np
        for e in list(itertools.islice(iter(kd), excess)):
            del kd[e]
            if np_ is not None:
                row = self._K.get(e)
                if row is not None and row[d]:
                    row[d] = False
                    self._nknown[e] -= 1
                    self._unsat[e] = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def _stats_of(self, i: int) -> ProtocolStats:
        return ProtocolStats(
            rounds=self._round,
            broadcasts=int(self._st_broadcasts[i]),
            messages_sent=self._round * self._tlen,
            messages_received=int(self._st_received[i]),
            events_delivered=int(self._st_delivered[i]),
            duplicates_seen=int(self._st_dups[i]),
            drops_overflow=int(self._st_drop_over[i]),
            drops_age_out=int(self._st_drop_age[i]),
            drops_resize=int(self._st_drop_resize[i]),
            drops_obsolete=0,
        )

    @property
    def live_events(self) -> int:
        """Number of events still circulating (diagnostics)."""
        return sum(len(v) for v in self._by_birth.values())
