"""Simulated message transport with pluggable latency and loss models.

The :class:`Network` connects simulated processes by address. ``send``
samples a latency (and possibly a loss decision) and schedules the
receiver's handler on the simulator. Latency models, loss models and
partitions compose independently so experiments can dial in exactly the
network pathology they need.

The paper's experiments run on a 60-workstation Ethernet LAN; the default
model is therefore a low, lightly-jittered latency with no loss. Loss and
burst-loss models exist for the robustness studies (the paper notes that
correlated loss degrades gossip reliability, §5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Optional, Protocol

from repro.sim.engine import Simulator

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "LossModel",
    "NoLoss",
    "BernoulliLoss",
    "BurstLoss",
    "NetworkStats",
    "Network",
    "RateWindow",
    "build_partition_map",
    "crosses_partition",
    "crosses_oneway",
]

Address = Hashable
Handler = Callable[[Any, Address, float], None]


# ----------------------------------------------------------------------
# shared network-rule building blocks
#
# The threaded runtime's ChaosTransport injects the same conditions this
# simulated network models; partition semantics and bandwidth-window
# accounting live here, once, so the two drivers cannot silently
# diverge (driver parity is asserted scenario-by-scenario in CI).
# ----------------------------------------------------------------------
def build_partition_map(groups) -> dict:
    """``address -> group id`` for a partition; unmentioned addresses
    share the implicit group ``-1`` and can still talk to each other."""
    partition_of: dict = {}
    for gid, group in enumerate(groups):
        for addr in group:
            partition_of[addr] = gid
    return partition_of


def crosses_partition(partition_of: dict, src, dst) -> bool:
    """Whether a (src, dst) message crosses an open partition."""
    if not partition_of:
        return False
    return partition_of.get(src, -1) != partition_of.get(dst, -1)


def crosses_oneway(oneway_of: dict, blocked: frozenset, src, dst) -> bool:
    """Whether a (src, dst) message crosses a *directed* blocked group edge.

    ``oneway_of`` maps addresses to group ids (implicit group ``-1`` for
    unmentioned addresses, as in :func:`build_partition_map`); ``blocked``
    holds the directed ``(src_group, dst_group)`` pairs that are cut.
    Unlike a symmetric partition, the reverse direction still flows.
    """
    if not blocked:
        return False
    return (oneway_of.get(src, -1), oneway_of.get(dst, -1)) in blocked


class RateWindow:
    """A bandwidth cap accounted in one-second windows.

    Once ``rate`` messages have entered within a window, further sends
    in that window are refused — a blunt but deterministic model of a
    saturated link or switch. ``rate=None`` disables the cap. The clock
    is the caller's (virtual time for the simulator, wall time for the
    chaos transport); only window identity ``int(now)`` matters.
    """

    __slots__ = ("rate", "_window", "_used")

    def __init__(self) -> None:
        self.rate: Optional[float] = None
        self._window = -1
        self._used = 0

    def set(self, rate: Optional[float]) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("bandwidth cap must be > 0 msg/s (or None)")
        self.rate = rate
        self._window = -1
        self._used = 0

    def exceeded(self, now: float) -> bool:
        """Account one send at time ``now``; True if over budget."""
        window = int(now)
        if window != self._window:
            self._window = window
            self._used = 0
        if self._used >= self.rate:
            return True
        self._used += 1
        return False


class LatencyModel(Protocol):
    """Samples a one-way delay for a (src, dst) message."""

    def sample(self, src: Address, dst: Address, rng) -> float: ...


class LossModel(Protocol):
    """Decides whether a (src, dst) message is dropped."""

    def is_lost(self, src: Address, dst: Address, rng) -> bool: ...


@dataclass(frozen=True)
class ConstantLatency:
    """Every message takes exactly ``delay`` seconds."""

    delay: float = 0.01

    def sample(self, src: Address, dst: Address, rng) -> float:
        """Return the fixed delay."""
        return self.delay


@dataclass(frozen=True)
class UniformLatency:
    """Latency uniform in [low, high] — the default LAN-ish model."""

    low: float = 0.005
    high: float = 0.05

    def sample(self, src: Address, dst: Address, rng) -> float:
        """Draw a delay uniformly from [low, high]."""
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class LogNormalLatency:
    """Heavy-tailed latency, parameterised by median and sigma.

    ``median`` is the median one-way delay; ``sigma`` the log-space
    standard deviation (0.5 gives a moderate tail). An optional ``cap``
    bounds pathological samples.
    """

    median: float = 0.02
    sigma: float = 0.5
    cap: float = 2.0

    def sample(self, src: Address, dst: Address, rng) -> float:
        """Draw a capped log-normal delay."""
        return min(self.cap, rng.lognormvariate(math.log(self.median), self.sigma))


@dataclass(frozen=True)
class NoLoss:
    """Perfect network: nothing is ever dropped."""

    def is_lost(self, src: Address, dst: Address, rng) -> bool:
        """Always False."""
        return False


@dataclass(frozen=True)
class BernoulliLoss:
    """Independent loss with probability ``p`` per message."""

    p: float = 0.01

    def is_lost(self, src: Address, dst: Address, rng) -> bool:
        """Independent coin flip per message."""
        return rng.random() < self.p


class BurstLoss:
    """Gilbert–Elliott two-state burst loss.

    ``p_enter`` is the probability of moving from the good to the bad
    state per message; ``p_exit`` of leaving the bad state; ``p_bad`` the
    loss probability while in the bad state. State is kept per network
    (correlated loss — the pathology the paper warns about in §5).
    """

    def __init__(self, p_enter: float = 0.005, p_exit: float = 0.2, p_bad: float = 0.8):
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.p_bad = p_bad
        self._bad = False

    def is_lost(self, src: Address, dst: Address, rng) -> bool:
        """Advance the two-state chain and sample loss in the bad state."""
        if self._bad:
            if rng.random() < self.p_exit:
                self._bad = False
        else:
            if rng.random() < self.p_enter:
                self._bad = True
        return self._bad and rng.random() < self.p_bad


@dataclass
class NetworkStats:
    """Counters maintained by :class:`Network`."""

    sent: int = 0
    delivered: int = 0
    lost: int = 0
    partitioned: int = 0
    oneway_blocked: int = 0
    link_lost: int = 0
    no_route: int = 0
    payload_items: int = 0
    capped: int = 0

    def reset(self) -> None:
        self.sent = self.delivered = self.lost = 0
        self.partitioned = self.no_route = self.payload_items = 0
        self.oneway_blocked = self.link_lost = 0
        self.capped = 0


class Network:
    """Delivers messages between attached handlers through the simulator.

    Deliveries are *coalesced per instant*: every message arriving at one
    virtual timestamp is queued, and a single flush event — ordered after
    all of that instant's arrivals — hands each destination its messages
    in arrival order. Receivers that registered a ``batch_handler`` get
    them in one call (the simulator's counterpart of the threaded
    runtime's bulk queue drain, feeding
    :meth:`~repro.gossip.protocol.GossipProtocol.on_receive_batch`);
    plain handlers are invoked once per message, unchanged. Both round
    dispatch modes share this path, so runs remain byte-identical across
    them.

    Parameters
    ----------
    sim:
        The simulator used for scheduling deliveries and as RNG source.
    latency:
        A :class:`LatencyModel`; defaults to :class:`UniformLatency`.
    loss:
        A :class:`LossModel`; defaults to :class:`NoLoss`.
    """

    def __init__(
        self,
        sim: Simulator,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
    ) -> None:
        self._sim = sim
        self._latency = latency if latency is not None else UniformLatency()
        self._loss = loss if loss is not None else NoLoss()
        self._rng = sim.rngs.stream("network")
        self._handlers: dict[Address, Handler] = {}
        self._batch_handlers: dict[Address, Callable] = {}
        self._partition_of: dict[Address, int] = {}
        # One-way partition (independent knob: may be open at the same
        # time as a symmetric partition, a loss window or a cap).
        self._oneway_of: dict[Address, int] = {}
        self._oneway_blocked: frozenset = frozenset()
        # Sparse per-link loss matrix ((src, dst) -> p); None when closed.
        self._link_loss: Optional[dict] = None
        # Bandwidth cap: at most _cap.rate messages may enter the network
        # per one-second window; None disables the cap entirely.
        self._cap = RateWindow()
        # (message, src) pairs queued per destination for the current
        # instant, drained by one _flush_pending event per timestamp.
        self._pending: dict[Address, list] = {}
        self._flush_scheduled = False
        self.stats = NetworkStats()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(
        self,
        address: Address,
        handler: Handler,
        batch_handler: Optional[Callable] = None,
    ) -> None:
        """Register ``handler(message, src, now)`` as receiver for ``address``.

        ``batch_handler(messages, now)`` — ``messages`` a list in arrival
        order — takes precedence when several messages land at one
        instant (and is also used for single messages, so a receiver
        sees exactly one code path). Batch receivers that need the
        source must read it from the message itself.
        """
        if address in self._handlers:
            raise ValueError(f"address {address!r} already attached")
        self._handlers[address] = handler
        if batch_handler is not None:
            self._batch_handlers[address] = batch_handler

    def detach(self, address: Address) -> None:
        """Remove an address; in-flight messages to it are dropped on arrival."""
        self._handlers.pop(address, None)
        self._batch_handlers.pop(address, None)

    def set_loss(self, loss: Optional[LossModel]) -> None:
        """Swap the loss model at runtime (fault injection)."""
        self._loss = loss if loss is not None else NoLoss()

    def is_attached(self, address: Address) -> bool:
        """Whether ``address`` currently has a receiver."""
        return address in self._handlers

    @property
    def addresses(self) -> list[Address]:
        """All currently attached addresses."""
        return list(self._handlers)

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def partition(self, groups: list[list[Address]]) -> None:
        """Split the network: messages may only cross within one group.

        Addresses not mentioned in any group remain in the implicit group
        ``-1`` and can still talk to each other.
        """
        self._partition_of = build_partition_map(groups)

    def heal(self) -> None:
        """Remove any symmetric partition (one-way cuts are a separate knob)."""
        self._partition_of = {}

    def partition_oneway(self, groups: list[list[Address]], blocked) -> None:
        """Cut the *directed* group edges in ``blocked``.

        ``groups`` splits addresses as in :meth:`partition`; ``blocked``
        is an iterable of ``(src_group, dst_group)`` index pairs that can
        no longer be crossed. Traffic in the reverse direction — and any
        direction not listed — still flows. Independent of
        :meth:`partition`: both cuts may be open at once.
        """
        self._oneway_of = build_partition_map(groups)
        self._oneway_blocked = frozenset((a, b) for a, b in blocked)

    def heal_oneway(self) -> None:
        """Remove any one-way cut."""
        self._oneway_of = {}
        self._oneway_blocked = frozenset()

    def _crosses_partition(self, src: Address, dst: Address) -> bool:
        return crosses_partition(self._partition_of, src, dst)

    # ------------------------------------------------------------------
    # per-link loss
    # ------------------------------------------------------------------
    def set_link_loss(self, matrix: Optional[dict]) -> None:
        """Open (or with ``None`` close) a sparse per-link loss matrix.

        ``matrix`` maps ``(src, dst)`` to a loss probability; pairs not
        in it are unaffected. Applied *after* the global loss model, and
        only draws from the RNG for pairs with an entry, so runs without
        link loss consume an identical RNG stream.
        """
        self._link_loss = dict(matrix) if matrix else None

    # ------------------------------------------------------------------
    # bandwidth cap
    # ------------------------------------------------------------------
    def set_bandwidth_cap(self, rate: Optional[float]) -> None:
        """Cap network throughput at ``rate`` messages per second.

        The cap is accounted in one-second windows of virtual time:
        once ``rate`` messages have entered the network within a window,
        further sends in that window are dropped (counted in
        ``stats.capped``) — a blunt but deterministic model of a
        saturated link or switch. ``None`` removes the cap.
        """
        self._cap.set(rate)

    def _cap_exceeded(self) -> bool:
        # Only called while a cap is set; checked after partition/route
        # filtering and *before* the loss model so the RNG stream of an
        # uncapped run is untouched by this feature.
        if self._cap.exceeded(self._sim.now):
            self.stats.capped += 1
            return True
        return False

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, src: Address, dst: Address, message: Any, items: int = 1) -> bool:
        """Queue ``message`` from ``src`` to ``dst``.

        Returns True if the message was scheduled for delivery, False if
        it was dropped (loss, partition, or unknown destination). ``items``
        is an accounting hint (number of application events inside) used
        for payload statistics only.
        """
        self.stats.sent += 1
        self.stats.payload_items += items
        if self._crosses_partition(src, dst):
            self.stats.partitioned += 1
            return False
        if self._oneway_blocked and crosses_oneway(
            self._oneway_of, self._oneway_blocked, src, dst
        ):
            self.stats.oneway_blocked += 1
            return False
        if dst not in self._handlers:
            self.stats.no_route += 1
            return False
        if self._cap.rate is not None and self._cap_exceeded():
            return False
        if self._loss.is_lost(src, dst, self._rng):
            self.stats.lost += 1
            return False
        link_loss = self._link_loss
        if link_loss is not None:
            p = link_loss.get((src, dst))
            if p is not None and self._rng.random() < p:
                self.stats.link_lost += 1
                return False
        delay = self._latency.sample(src, dst, self._rng)
        self._sim.schedule(delay, self._deliver, dst, message, src)
        return True

    def multicast(self, src: Address, dsts, message: Any, items: int = 1) -> int:
        """Queue one ``message`` from ``src`` to every address in ``dsts``.

        The batched counterpart of calling :meth:`send` once per
        destination: statistics are updated in bulk, the loss/latency
        models are consulted per destination in ``dsts`` order (so RNG
        consumption — and therefore the whole run — is identical to the
        per-send path), and destinations whose sampled delays coincide are
        delivered by a single scheduled event. With a draw-free model pair
        like :class:`ConstantLatency` + :class:`NoLoss`, a whole fanout's
        deliveries collapse into one heap entry.

        Returns the number of destinations actually scheduled.
        """
        stats = self.stats
        n = len(dsts)
        stats.sent += n
        stats.payload_items += items * n
        handlers = self._handlers
        partition_of = self._partition_of
        partition_get = partition_of.get if partition_of else None
        src_group = partition_get(src, -1) if partition_get is not None else -1
        oneway_blocked = self._oneway_blocked
        oneway_get = self._oneway_of.get if oneway_blocked else None
        src_oneway = oneway_get(src, -1) if oneway_get is not None else -1
        loss = self._loss
        lossless = type(loss) is NoLoss
        link_loss = self._link_loss
        rng = self._rng
        latency = self._latency
        fixed_delay = latency.delay if type(latency) is ConstantLatency else None
        cap_rate = self._cap.rate
        if (
            fixed_delay is not None
            and lossless
            and partition_get is None
            and not oneway_blocked
            and link_loss is None
            and cap_rate is None
        ):
            # Draw-free models, no partition: every destination shares one
            # delay and nothing consults the RNG, so the whole fanout
            # reduces to a membership filter and a single scheduled event.
            batch = [dst for dst in dsts if dst in handlers]
            missing = n - len(batch)
            if missing:
                stats.no_route += missing
            if batch:
                self._sim.post(fixed_delay, self._deliver_batch, tuple(batch), message, src)
            return len(batch)
        post = self._sim.post
        scheduled = 0
        batch_delay = -1.0
        batch = []
        for dst in dsts:
            if partition_get is not None and partition_get(dst, -1) != src_group:
                stats.partitioned += 1
                continue
            if oneway_get is not None and (src_oneway, oneway_get(dst, -1)) in oneway_blocked:
                stats.oneway_blocked += 1
                continue
            if dst not in handlers:
                stats.no_route += 1
                continue
            if cap_rate is not None and self._cap_exceeded():
                continue
            if not lossless and loss.is_lost(src, dst, rng):
                stats.lost += 1
                continue
            if link_loss is not None:
                p = link_loss.get((src, dst))
                if p is not None and rng.random() < p:
                    stats.link_lost += 1
                    continue
            delay = fixed_delay if fixed_delay is not None else latency.sample(src, dst, rng)
            if delay == batch_delay:
                batch.append(dst)
            else:
                if batch:
                    post(batch_delay, self._deliver_batch, tuple(batch), message, src)
                batch = [dst]
                batch_delay = delay
            scheduled += 1
        if batch:
            post(batch_delay, self._deliver_batch, tuple(batch), message, src)
        return scheduled

    def _enqueue(self, dst: Address, message: Any, src: Address) -> None:
        # Batch-handled destinations queue bare messages (their handler
        # never sees the source); plain handlers queue (message, src).
        queue = self._pending.get(dst)
        item = message if dst in self._batch_handlers else (message, src)
        if queue is None:
            self._pending[dst] = [item]
        else:
            queue.append(item)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._sim.post(0.0, self._flush_pending)

    _deliver = _enqueue

    def _deliver_batch(self, dsts: tuple, message: Any, src: Address) -> None:
        pending = self._pending
        batched = self._batch_handlers
        for dst in dsts:
            queue = pending.get(dst)
            item = message if dst in batched else (message, src)
            if queue is None:
                pending[dst] = [item]
            else:
                queue.append(item)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            self._sim.post(0.0, self._flush_pending)

    def _flush_pending(self) -> None:
        # Runs at the same virtual time as the arrivals it drains: post()
        # sequencing orders it after every delivery event of this instant
        # (all were scheduled earlier), and anything a handler sends now
        # arrives strictly later, starting a fresh accumulation.
        self._flush_scheduled = False
        pending = self._pending
        if not pending:
            return
        self._pending = {}
        handlers = self._handlers
        batch_handlers = self._batch_handlers
        stats = self.stats
        now = self._sim.now
        for dst, items in pending.items():
            batch_handler = batch_handlers.get(dst)
            if batch_handler is not None:
                stats.delivered += len(items)
                batch_handler(items, now)
                continue
            handler = handlers.get(dst)
            if handler is None:
                # Receiver left while the messages were in flight.
                stats.no_route += len(items)
                continue
            stats.delivered += len(items)
            for message, src in items:
                handler(message, src, now)
