"""Discrete-event simulation substrate.

This package provides the deterministic event-driven kernel used by all
simulation experiments in the reproduction:

* :mod:`repro.sim.engine` — the event loop (:class:`Simulator`).
* :mod:`repro.sim.rng` — named, reproducible random streams.
* :mod:`repro.sim.network` — message transport with latency/loss models.
* :mod:`repro.sim.topology` — latency topologies (LAN, clustered, graph).
* :mod:`repro.sim.trace` — structured trace log.
* :mod:`repro.sim.process` — base class for simulated processes.

The kernel is intentionally generic: nothing in here knows about gossip.
"""

from repro.sim.engine import Simulator, TimerHandle
from repro.sim.faults import FaultScript, LossWindow, PartitionWindow
from repro.sim.network import (
    BernoulliLoss,
    BurstLoss,
    ConstantLatency,
    LogNormalLatency,
    Network,
    NetworkStats,
    NoLoss,
    UniformLatency,
)
from repro.sim.process import SimProcess
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.topology import ClusteredTopology, GraphTopology, UniformTopology
from repro.sim.trace import TraceLog, TraceRecord

__all__ = [
    "Simulator",
    "TimerHandle",
    "Network",
    "NetworkStats",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "NoLoss",
    "BernoulliLoss",
    "BurstLoss",
    "SimProcess",
    "RngRegistry",
    "derive_seed",
    "UniformTopology",
    "ClusteredTopology",
    "GraphTopology",
    "TraceLog",
    "TraceRecord",
    "FaultScript",
    "LossWindow",
    "PartitionWindow",
]
