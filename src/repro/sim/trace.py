"""Structured trace log for simulations.

A :class:`TraceLog` collects ``(time, category, node, fields)`` records.
It is the debugging and verification backbone: the determinism tests
assert that two runs with the same seed produce identical traces, and the
metrics pipeline can be cross-checked against raw trace queries.

Tracing is off by default; a disabled log rejects records at a cost of a
single attribute check, so leaving trace calls in hot paths is fine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

__all__ = ["TraceRecord", "TraceLog"]


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry."""

    time: float
    category: str
    node: Any
    fields: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        d = {"time": self.time, "category": self.category, "node": self.node}
        d.update(self.fields)
        return d


@dataclass
class TraceLog:
    """Append-only in-memory trace with simple query helpers.

    Parameters
    ----------
    enabled:
        When False (the default), :meth:`record` is a no-op.
    capacity:
        Optional bound on retained records; older records are discarded
        (FIFO) once exceeded. ``None`` keeps everything.
    categories:
        Optional allow-list; when set, only these categories are recorded.
    """

    enabled: bool = False
    capacity: Optional[int] = None
    categories: Optional[frozenset[str]] = None
    records: list[TraceRecord] = field(default_factory=list)
    dropped: int = 0

    def record(self, time: float, category: str, node: Any, **fields: Any) -> None:
        """Append a record (no-op when disabled or category filtered out)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, node, tuple(sorted(fields.items()))))
        if self.capacity is not None and len(self.records) > self.capacity:
            overflow = len(self.records) - self.capacity
            del self.records[:overflow]
            self.dropped += overflow

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def select(
        self,
        category: Optional[str] = None,
        node: Any = None,
        since: float = float("-inf"),
        until: float = float("inf"),
        where: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> Iterator[TraceRecord]:
        """Yield records matching all the given filters, in time order."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if node is not None and rec.node != node:
                continue
            if not (since <= rec.time <= until):
                continue
            if where is not None and not where(rec):
                continue
            yield rec

    def count(self, category: Optional[str] = None, **kwargs: Any) -> int:
        return sum(1 for _ in self.select(category=category, **kwargs))

    def fingerprint(self) -> int:
        """A stable hash of the whole trace, for determinism tests."""
        acc = 0
        for rec in self.records:
            acc = hash((acc, rec.time, rec.category, repr(rec.node), rec.fields))
        return acc

    def clear(self) -> None:
        self.records.clear()
        self.dropped = 0

    @staticmethod
    def merge(traces: Iterable["TraceLog"]) -> "TraceLog":
        """Merge several traces into one, sorted by time."""
        merged = TraceLog(enabled=True)
        for tr in traces:
            merged.records.extend(tr.records)
        merged.records.sort(key=lambda r: r.time)
        return merged
