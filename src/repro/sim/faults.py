"""Declarative fault injection for simulations.

The paper's §5 is candid about a weakness: "network congestion also
results in correlated message loss thus degrading reliability. This is a
potential weakness of the approach". A :class:`FaultScript` schedules
exactly such pathologies — loss windows and partition windows — onto a
running network so experiments can measure what the adaptation can and
cannot rescue (see ``benchmarks/test_ablation_correlated_loss.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.sim.engine import Simulator
from repro.sim.network import BernoulliLoss, LossModel, Network, NoLoss

__all__ = ["LossWindow", "PartitionWindow", "FaultScript"]


@dataclass(frozen=True, slots=True)
class LossWindow:
    """Bernoulli loss at probability ``p`` during [time, time+duration)."""

    time: float
    duration: float
    p: float

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if not 0 < self.p <= 1:
            raise ValueError("p must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class PartitionWindow:
    """Network split into ``groups`` during [time, time+duration)."""

    time: float
    duration: float
    groups: tuple[tuple, ...]

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")


Fault = Union[LossWindow, PartitionWindow]


@dataclass
class FaultScript:
    """An ordered schedule of network faults."""

    faults: list[Fault] = field(default_factory=list)

    def loss(self, time: float, duration: float, p: float) -> "FaultScript":
        self.faults.append(LossWindow(time, duration, p))
        return self

    def partition(
        self, time: float, duration: float, groups: Sequence[Sequence]
    ) -> "FaultScript":
        self.faults.append(
            PartitionWindow(time, duration, tuple(tuple(g) for g in groups))
        )
        return self

    def __len__(self) -> int:
        return len(self.faults)

    def apply(self, sim: Simulator, network: Network,
              baseline_loss: Optional[LossModel] = None) -> None:
        """Schedule every fault window on the simulator.

        ``baseline_loss`` is restored when a loss window closes (defaults
        to no loss). Overlapping loss windows are not supported — the
        later window simply wins while it is open.
        """
        restore = baseline_loss if baseline_loss is not None else NoLoss()
        for fault in sorted(self.faults, key=lambda f: f.time):
            if isinstance(fault, LossWindow):
                sim.schedule_at(fault.time, network.set_loss, BernoulliLoss(fault.p))
                sim.schedule_at(fault.time + fault.duration, network.set_loss, restore)
            else:
                sim.schedule_at(fault.time, network.partition, [list(g) for g in fault.groups])
                sim.schedule_at(fault.time + fault.duration, network.heal)
