"""Declarative fault injection for simulations.

The paper's §5 is candid about a weakness: "network congestion also
results in correlated message loss thus degrading reliability. This is a
potential weakness of the approach". A :class:`FaultScript` schedules
exactly such pathologies — loss windows, partition windows, node
crashes (with optional restart) and bandwidth caps — onto a running
system so experiments can measure what the adaptation can and cannot
rescue (see ``benchmarks/test_ablation_correlated_loss.py`` and the
scenario library in :mod:`repro.scenarios`).

Loss and bandwidth windows mutate *global* network state, so two open
windows of the same kind would silently fight over it (the later one
would win while open, and its close would clobber the earlier one's
restore). :meth:`FaultScript.validate` therefore rejects overlapping
windows of the same kind with a clear error; :meth:`FaultScript.apply`
validates before scheduling anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.sim.engine import Simulator
from repro.sim.network import BernoulliLoss, LossModel, Network, NoLoss

__all__ = [
    "LossWindow",
    "PartitionWindow",
    "CrashWindow",
    "BandwidthCapWindow",
    "FaultScript",
    "OverlappingFaultsError",
]


class OverlappingFaultsError(ValueError):
    """Two same-kind fault windows overlap in time (ambiguous schedule)."""


@dataclass(frozen=True, slots=True)
class LossWindow:
    """Bernoulli loss at probability ``p`` during [time, time+duration)."""

    time: float
    duration: float
    p: float

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if not 0 < self.p <= 1:
            raise ValueError("p must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class PartitionWindow:
    """Network split into ``groups`` during [time, time+duration)."""

    time: float
    duration: float
    groups: tuple[tuple, ...]

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """Nodes crash silently at ``time``; with ``restart_at`` they rejoin.

    A restarted node is a *fresh* process (empty buffers, new protocol
    state) that re-enters under its old identity — the realistic model
    for a process restart. Crashes need a cluster driver to act on, so
    :meth:`FaultScript.apply` must be handed one when crash windows are
    present.
    """

    time: float
    nodes: tuple
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be >= 0")
        if not self.nodes:
            raise ValueError("a crash window needs at least one node")
        if self.restart_at is not None and self.restart_at <= self.time:
            raise ValueError("restart_at must be after the crash time")


@dataclass(frozen=True, slots=True)
class BandwidthCapWindow:
    """Network throughput capped at ``rate`` msg/s during [time, time+duration)."""

    time: float
    duration: float
    rate: float

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if self.rate <= 0:
            raise ValueError("bandwidth cap rate must be > 0")


Fault = Union[LossWindow, PartitionWindow, CrashWindow, BandwidthCapWindow]

# window kinds whose open/close mutates one global network knob — these
# must not overlap among themselves (see module docstring)
_EXCLUSIVE_KINDS = (LossWindow, PartitionWindow, BandwidthCapWindow)


@dataclass
class FaultScript:
    """An ordered schedule of faults."""

    faults: list[Fault] = field(default_factory=list)

    def loss(self, time: float, duration: float, p: float) -> "FaultScript":
        self.faults.append(LossWindow(time, duration, p))
        return self

    def partition(
        self, time: float, duration: float, groups: Sequence[Sequence]
    ) -> "FaultScript":
        self.faults.append(
            PartitionWindow(time, duration, tuple(tuple(g) for g in groups))
        )
        return self

    def crash(
        self, time: float, nodes: Sequence, restart_at: Optional[float] = None
    ) -> "FaultScript":
        self.faults.append(CrashWindow(time, tuple(nodes), restart_at))
        return self

    def bandwidth_cap(self, time: float, duration: float, rate: float) -> "FaultScript":
        self.faults.append(BandwidthCapWindow(time, duration, rate))
        return self

    def __len__(self) -> int:
        return len(self.faults)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Reject ambiguous schedules before anything is scheduled.

        Overlapping windows of one kind do not compose (two open loss
        windows do not multiply their probabilities — the network holds a
        single loss model), so instead of silently letting the later
        window clobber the earlier one this raises
        :class:`OverlappingFaultsError` naming the offending pair.
        """
        for kind in _EXCLUSIVE_KINDS:
            windows = sorted(
                (f for f in self.faults if isinstance(f, kind)),
                key=lambda f: (f.time, f.duration),
            )
            for earlier, later in zip(windows, windows[1:]):
                if later.time < earlier.time + earlier.duration:
                    raise OverlappingFaultsError(
                        f"overlapping {kind.__name__}s: {earlier} is still open "
                        f"at t={later.time} when {later} starts; overlapping "
                        "windows of one kind do not compose — merge them into "
                        "one window or separate them in time"
                    )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def apply(
        self,
        sim: Simulator,
        network: Network,
        baseline_loss: Optional[LossModel] = None,
        cluster=None,
    ) -> None:
        """Validate, then schedule every fault window on the simulator.

        ``baseline_loss`` is restored when a loss window closes (defaults
        to no loss). ``cluster`` — a :class:`~repro.workload.cluster.SimCluster`
        — is required when the script contains :class:`CrashWindow`s
        (crash/restart acts on nodes, not on the network).
        """
        self.validate()
        restore = baseline_loss if baseline_loss is not None else NoLoss()
        for fault in sorted(self.faults, key=lambda f: f.time):
            if isinstance(fault, LossWindow):
                sim.schedule_at(fault.time, network.set_loss, BernoulliLoss(fault.p))
                sim.schedule_at(fault.time + fault.duration, network.set_loss, restore)
            elif isinstance(fault, PartitionWindow):
                sim.schedule_at(fault.time, network.partition, [list(g) for g in fault.groups])
                sim.schedule_at(fault.time + fault.duration, network.heal)
            elif isinstance(fault, BandwidthCapWindow):
                sim.schedule_at(fault.time, network.set_bandwidth_cap, fault.rate)
                sim.schedule_at(fault.time + fault.duration, network.set_bandwidth_cap, None)
            else:  # CrashWindow
                if cluster is None:
                    raise ValueError(
                        "FaultScript contains crash windows; pass the cluster "
                        "(e.g. SimCluster.apply_faults) so nodes can be crashed"
                    )
                for node in fault.nodes:
                    sim.schedule_at(fault.time, cluster.crash_node, node)
                if fault.restart_at is not None:
                    for node in fault.nodes:
                        sim.schedule_at(fault.restart_at, cluster.join_node, node)
