"""Declarative fault injection for simulations.

The paper's §5 is candid about a weakness: "network congestion also
results in correlated message loss thus degrading reliability. This is a
potential weakness of the approach". A :class:`FaultScript` schedules
exactly such pathologies — loss windows, partition windows, node
crashes (with optional restart) and bandwidth caps — onto a running
system so experiments can measure what the adaptation can and cannot
rescue (see ``benchmarks/test_ablation_correlated_loss.py`` and the
scenario library in :mod:`repro.scenarios`).

Loss and bandwidth windows mutate *global* network state, so two open
windows of the same kind would silently fight over it (the later one
would win while open, and its close would clobber the earlier one's
restore). :meth:`FaultScript.validate` therefore rejects overlapping
windows of the same kind with a clear error; :meth:`FaultScript.apply`
validates before scheduling anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.sim.engine import Simulator
from repro.sim.network import BernoulliLoss, LossModel, Network, NoLoss

__all__ = [
    "LossWindow",
    "LinkLossWindow",
    "PartitionWindow",
    "AsymmetricPartitionWindow",
    "CrashWindow",
    "BandwidthCapWindow",
    "FaultScript",
    "OverlappingFaultsError",
]


class OverlappingFaultsError(ValueError):
    """Two fault windows of one knob family overlap in time (ambiguous)."""


@dataclass(frozen=True, slots=True)
class LossWindow:
    """Bernoulli loss at probability ``p`` during [time, time+duration)."""

    time: float
    duration: float
    p: float

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if not 0 < self.p <= 1:
            raise ValueError("p must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class PartitionWindow:
    """Network split into ``groups`` during [time, time+duration)."""

    time: float
    duration: float
    groups: tuple[tuple, ...]

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if len(self.groups) < 2:
            raise ValueError("a partition needs at least two groups")


@dataclass(frozen=True, slots=True)
class AsymmetricPartitionWindow:
    """One-way reachability cut during [time, time+duration).

    ``groups`` splits the nodes like :class:`PartitionWindow`; ``blocked``
    is a tuple of directed ``(src_group, dst_group)`` index pairs that
    cannot be crossed — traffic in the *other* direction still flows.
    This models the asymmetric links of wireless/NAT deployments where a
    node can hear the cluster but not speak to it (or vice versa), a
    regime where probabilistic broadcast degrades non-obviously.
    """

    time: float
    duration: float
    groups: tuple[tuple, ...]
    blocked: tuple[tuple[int, int], ...] = ((0, 1),)

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if len(self.groups) < 2:
            raise ValueError("a one-way partition needs at least two groups")
        if not self.blocked:
            raise ValueError("a one-way partition needs at least one blocked pair")
        for pair in self.blocked:
            if len(pair) != 2:
                raise ValueError(f"blocked pair {pair!r} is not a (src, dst) pair")
            a, b = pair
            if not (0 <= a < len(self.groups) and 0 <= b < len(self.groups)):
                raise ValueError(
                    f"blocked pair {pair!r} references a group outside "
                    f"0..{len(self.groups) - 1}"
                )
            if a == b:
                raise ValueError(f"blocked pair {pair!r} cuts a group from itself")


@dataclass(frozen=True, slots=True)
class LinkLossWindow:
    """Per-link Bernoulli loss during [time, time+duration).

    ``links`` is a sparse loss matrix: at construction it may be a dict
    keyed by ``(src, dst)`` with loss probabilities as values, or an
    iterable of ``(src, dst, p)`` triples; it is normalised to a sorted
    tuple of triples so the window stays hashable, picklable and
    deterministic. Pairs not in the matrix are untouched (the global
    loss model still applies to everything).
    """

    time: float
    duration: float
    links: tuple[tuple, ...]

    def __init__(self, time: float, duration: float, links) -> None:
        if hasattr(links, "items"):
            entries = [(src, dst, p) for (src, dst), p in links.items()]
        else:
            entries = [tuple(e) for e in links]
        entries.sort(key=lambda e: (repr(e[0]), repr(e[1])))
        object.__setattr__(self, "time", time)
        object.__setattr__(self, "duration", duration)
        object.__setattr__(self, "links", tuple(entries))
        self.__post_init__()

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if not self.links:
            raise ValueError("a link-loss window needs at least one link")
        seen = set()
        for entry in self.links:
            if len(entry) != 3:
                raise ValueError(f"link entry {entry!r} is not a (src, dst, p) triple")
            src, dst, p = entry
            if not 0 < p <= 1:
                raise ValueError(f"link ({src!r}, {dst!r}) loss p={p!r} not in (0, 1]")
            if (src, dst) in seen:
                raise ValueError(f"duplicate link entry for ({src!r}, {dst!r})")
            seen.add((src, dst))

    @property
    def matrix(self) -> dict:
        """The sparse ``(src, dst) -> p`` dict form of :attr:`links`."""
        return {(src, dst): p for src, dst, p in self.links}


@dataclass(frozen=True, slots=True)
class CrashWindow:
    """Nodes crash silently at ``time``; with ``restart_at`` they rejoin.

    A restarted node is a *fresh* process (empty buffers, new protocol
    state) that re-enters under its old identity — the realistic model
    for a process restart. Crashes need a cluster driver to act on, so
    :meth:`FaultScript.apply` must be handed one when crash windows are
    present.
    """

    time: float
    nodes: tuple
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("crash time must be >= 0")
        if not self.nodes:
            raise ValueError("a crash window needs at least one node")
        if self.restart_at is not None and self.restart_at <= self.time:
            raise ValueError("restart_at must be after the crash time")


@dataclass(frozen=True, slots=True)
class BandwidthCapWindow:
    """Network throughput capped at ``rate`` msg/s during [time, time+duration)."""

    time: float
    duration: float
    rate: float

    def __post_init__(self) -> None:
        if self.time < 0 or self.duration <= 0:
            raise ValueError("need time >= 0 and duration > 0")
        if self.rate <= 0:
            raise ValueError("bandwidth cap rate must be > 0")


Fault = Union[
    LossWindow,
    LinkLossWindow,
    PartitionWindow,
    AsymmetricPartitionWindow,
    CrashWindow,
    BandwidthCapWindow,
]

# Exclusivity is per knob *family*: each entry groups the window kinds
# whose open/close mutates one global network knob, and only windows
# within one family must not overlap among themselves (see module
# docstring). Kinds in different families hold independent knobs — a
# LinkLossWindow may legally overlap a PartitionWindow or a LossWindow.
_EXCLUSIVE_FAMILIES: tuple[tuple[str, tuple[type, ...]], ...] = (
    ("LossWindow", (LossWindow,)),
    ("LinkLossWindow", (LinkLossWindow,)),
    ("PartitionWindow", (PartitionWindow,)),
    ("AsymmetricPartitionWindow", (AsymmetricPartitionWindow,)),
    ("BandwidthCapWindow", (BandwidthCapWindow,)),
)


@dataclass
class FaultScript:
    """An ordered schedule of faults."""

    faults: list[Fault] = field(default_factory=list)

    def loss(self, time: float, duration: float, p: float) -> "FaultScript":
        self.faults.append(LossWindow(time, duration, p))
        return self

    def partition(
        self, time: float, duration: float, groups: Sequence[Sequence]
    ) -> "FaultScript":
        self.faults.append(
            PartitionWindow(time, duration, tuple(tuple(g) for g in groups))
        )
        return self

    def crash(
        self, time: float, nodes: Sequence, restart_at: Optional[float] = None
    ) -> "FaultScript":
        self.faults.append(CrashWindow(time, tuple(nodes), restart_at))
        return self

    def bandwidth_cap(self, time: float, duration: float, rate: float) -> "FaultScript":
        self.faults.append(BandwidthCapWindow(time, duration, rate))
        return self

    def oneway_partition(
        self,
        time: float,
        duration: float,
        groups: Sequence[Sequence],
        blocked: Sequence[Sequence[int]] = ((0, 1),),
    ) -> "FaultScript":
        self.faults.append(
            AsymmetricPartitionWindow(
                time,
                duration,
                tuple(tuple(g) for g in groups),
                tuple((int(a), int(b)) for a, b in blocked),
            )
        )
        return self

    def link_loss(self, time: float, duration: float, links) -> "FaultScript":
        self.faults.append(LinkLossWindow(time, duration, links))
        return self

    def __len__(self) -> int:
        return len(self.faults)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Reject ambiguous schedules before anything is scheduled.

        Overlapping windows of one knob family do not compose (two open
        loss windows do not multiply their probabilities — the network
        holds a single loss model), so instead of silently letting the
        later window clobber the earlier one this raises
        :class:`OverlappingFaultsError` naming the offending pair.
        Windows of *different* families hold independent knobs and may
        overlap freely — per-link loss during a partition is a legal,
        meaningful composition.
        """
        for family, kinds in _EXCLUSIVE_FAMILIES:
            windows = sorted(
                (f for f in self.faults if isinstance(f, kinds)),
                key=lambda f: (f.time, f.duration),
            )
            for earlier, later in zip(windows, windows[1:]):
                if later.time < earlier.time + earlier.duration:
                    raise OverlappingFaultsError(
                        f"overlapping {family}s: {earlier} is still open "
                        f"at t={later.time} when {later} starts; overlapping "
                        "windows of one knob family do not compose — merge "
                        "them into one window or separate them in time"
                    )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def apply(
        self,
        sim: Simulator,
        network: Network,
        baseline_loss: Optional[LossModel] = None,
        cluster=None,
    ) -> None:
        """Validate, then schedule every fault window on the simulator.

        ``baseline_loss`` is restored when a loss window closes (defaults
        to no loss). ``cluster`` — a :class:`~repro.workload.cluster.SimCluster`
        — is required when the script contains :class:`CrashWindow`s
        (crash/restart acts on nodes, not on the network).
        """
        self.validate()
        restore = baseline_loss if baseline_loss is not None else NoLoss()
        for fault in sorted(self.faults, key=lambda f: f.time):
            if isinstance(fault, LossWindow):
                sim.schedule_at(fault.time, network.set_loss, BernoulliLoss(fault.p))
                sim.schedule_at(fault.time + fault.duration, network.set_loss, restore)
            elif isinstance(fault, LinkLossWindow):
                sim.schedule_at(fault.time, network.set_link_loss, fault.matrix)
                sim.schedule_at(fault.time + fault.duration, network.set_link_loss, None)
            elif isinstance(fault, PartitionWindow):
                sim.schedule_at(fault.time, network.partition, [list(g) for g in fault.groups])
                sim.schedule_at(fault.time + fault.duration, network.heal)
            elif isinstance(fault, AsymmetricPartitionWindow):
                sim.schedule_at(
                    fault.time,
                    network.partition_oneway,
                    [list(g) for g in fault.groups],
                    fault.blocked,
                )
                sim.schedule_at(fault.time + fault.duration, network.heal_oneway)
            elif isinstance(fault, BandwidthCapWindow):
                sim.schedule_at(fault.time, network.set_bandwidth_cap, fault.rate)
                sim.schedule_at(fault.time + fault.duration, network.set_bandwidth_cap, None)
            else:  # CrashWindow
                if cluster is None:
                    raise ValueError(
                        "FaultScript contains crash windows; pass the cluster "
                        "(e.g. SimCluster.apply_faults) so nodes can be crashed"
                    )
                for node in fault.nodes:
                    sim.schedule_at(fault.time, cluster.crash_node, node)
                if fault.restart_at is not None:
                    for node in fault.nodes:
                        sim.schedule_at(fault.restart_at, cluster.join_node, node)
