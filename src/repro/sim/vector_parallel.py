"""Multicore mega-sim: shard the columnar sampling hot loop across cores.

:class:`ParallelVectorExecutor` is the ``--dispatch vector --shards N``
lane. It subclasses :class:`~repro.sim.vector.VectorRoundExecutor` and
keeps every behaviour — chaos filtering, the delivery folds, crash/churn
column resets, stats, metrics — on the proven single-core columnar code.
What it parallelises is the one part of the round that is pure-python
per-node work and dominates wall clock at 100k+ nodes: the per-node
target-sampling loop (O(n·fanout) rejection draws against the stdlib
Mersenne Twister).

Shard model
-----------
The node population is split into contiguous id ranges, one per
persistent worker process. Each worker owns the *only* live replicas of
its shard's per-node ``("protocol", i)`` RNG streams, recreated from the
root seed via :func:`~repro.sim.rng.derive_seed` (SHA-256 of
``(seed, name)`` — stable across processes, and creating a stream
consumes no draws). In vector mode those streams have exactly one
consumer — target sampling — so the workers' replicas stay draw-for-draw
in sync with what the single-core lane would have consumed, by
construction.

Each virtual round runs as *local-advance → deterministic cross-shard
exchange → barrier*:

1. **dispatch** — as soon as the tick's ``(order, a, m, k)`` are fixed,
   the parent publishes the alive emission order to a shared-memory
   block (only when it changed; a version counter lets workers cache
   their position lists) and signals every worker over its pipe. The
   parent then overlaps its own per-node bookkeeping (round counters,
   buffer sizes, gauges) with the workers' sampling.
2. **local advance** — each worker samples targets for the emission
   positions whose node ids fall in its shard, writing each row into
   the shared rows block at its emission position. The inner loop is
   allocation-free: the row and pool scratch lists are pre-allocated
   and refilled in place.
3. **exchange + barrier** — the parent waits for every worker's ack,
   then materialises the full ``rows`` list from the shared block in
   emission order (one C-level ``reshape(...).tolist()``), i.e. the
   deterministic cross-shard merge in node-emission order. Everything
   downstream is the inherited single-core fold.

Because shard boundaries only decide *which process* replays a node's
stream, the sampled rows — and therefore the entire run — are
byte-identical to the single-core vector lane at any shard count. The
registry-wide parity suite enforces this.

Zero-draw ticks (``k >= m``: every peer is returned without consuming
the RNG; or ``k <= 0``) are not dispatched — the parent handles them
inline, exactly as the single-core lane does, so worker stream replicas
never drift.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import random
import traceback
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Optional

from repro.sim.rng import derive_seed
from repro.sim.vector import HAVE_NUMPY, VectorRoundExecutor

try:  # the parallel lane requires the numpy fast path
    import numpy as _np
except ImportError:  # pragma: no cover - stdlib-only installs fall back
    _np = None

__all__ = [
    "ParallelVectorExecutor",
    "ShardConfig",
    "parallel_ineligible_reason",
    "resolve_shards",
    "shard_bounds",
    "shard_worker_main",
]


def resolve_shards(shards: Optional[int], cpu_count: Optional[int] = None) -> int:
    """Resolve the user-facing ``--shards`` value to a worker count.

    ``None`` → 1 (the single-core vector lane); ``0`` → auto
    (``cores - 1``, floored at 1); explicit positive counts pass
    through. Negative counts are rejected.
    """
    if shards is None:
        return 1
    shards = int(shards)
    if shards < 0:
        raise ValueError(f"shards must be >= 0, got {shards}")
    if shards == 0:
        cores = cpu_count if cpu_count is not None else (os.cpu_count() or 2)
        return max(1, cores - 1)
    return shards


def parallel_ineligible_reason(
    *, shards: int, n_nodes: int, vector_numpy: Optional[bool] = None
) -> Optional[str]:
    """Why a vector-eligible run cannot use ``shards`` worker processes.

    Returns ``None`` when the parallel lane can engage. The caller has
    already established vector eligibility and ``shards >= 2``; this
    names the parallel-specific refusals, and the run falls back to the
    single-core vector lane (still columnar, still byte-identical).
    """
    if not HAVE_NUMPY:
        return (
            f"shards={shards} needs the numpy fast path, but numpy is not "
            "installed (pip install .[accel])"
        )
    if vector_numpy is False:
        return (
            f"shards={shards} needs the numpy fast path, but use_numpy=False "
            "forces the stdlib reference path"
        )
    if n_nodes < shards:
        return (
            f"n_nodes={n_nodes} < shards={shards}: every worker needs at "
            "least one node"
        )
    return None


def shard_bounds(n_nodes: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous, balanced ``[lo, hi)`` node-id ranges, one per worker."""
    base, extra = divmod(n_nodes, shards)
    bounds = []
    lo = 0
    for w in range(shards):
        hi = lo + base + (1 if w < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


@dataclass(frozen=True)
class ShardConfig:
    """Everything a sampling worker needs, picklable for spawn."""

    worker_id: int
    seed: int
    lo: int  # shard node-id range [lo, hi)
    hi: int
    n_nodes: int
    fanout: int
    shm_name: str


def shard_worker_main(conn, cfg: ShardConfig, close_first=()) -> None:
    """Persistent sampling worker: replay the shard's RNG streams.

    Protocol over ``conn``: ``("tick", a, m, k, version)`` → sample the
    shard's emission positions into the shared rows block and ack with
    ``("done", worker_id)``; ``("exit",)`` or pipe EOF (orphaned worker)
    → clean exit. Any unexpected failure is reported back as
    ``("error", traceback)`` before the worker dies, so the parent's
    barrier raises with the real cause instead of a bare EOF.

    ``close_first`` holds pipe ends this process inherited but does not
    own (fork copies every fd that exists at spawn time). Closing them
    immediately keeps the EOF signalling exact: a worker's recv hits EOF
    the moment the *parent* drops the write end, instead of waiting for
    sibling workers that also inherited it.
    """
    for other in close_first:
        try:
            other.close()
        except OSError:  # pragma: no cover - already closed
            pass
    shm = shared_memory.SharedMemory(name=cfg.shm_name)
    order_arr = rows_arr = None
    try:
        order_arr = _np.ndarray((cfg.n_nodes,), dtype=_np.int32, buffer=shm.buf)
        rows_arr = _np.ndarray(
            (cfg.n_nodes * cfg.fanout,),
            dtype=_np.int32,
            buffer=shm.buf,
            offset=cfg.n_nodes * 4,
        )
        lo, hi = cfg.lo, cfg.hi
        # the shard's only state: its nodes' sampling streams, recreated
        # from the root seed exactly as RngRegistry.stream would
        streams = [
            random.Random(derive_seed(cfg.seed, "protocol", i)).getrandbits
            for i in range(lo, hi)
        ]
        cached_version = -1
        cached_m = -1
        cached_k = -1
        order_list: list[int] = []
        my_pis: list[int] = []
        base_pool: list[int] = []
        pool: list[int] = []
        row: list[int] = []
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                return  # parent vanished: exit on our own
            if msg[0] == "exit":
                return
            _, a, m, k, version = msg
            if version != cached_version:
                # the emission order changed (compaction or restart):
                # re-read it and recompute which positions are ours
                order_list = order_arr[:a].tolist()
                my_pis = [pi for pi, i in enumerate(order_list) if lo <= i < hi]
                cached_version = version
            if k != cached_k:
                row = [0] * k
                cached_k = k
            setsize = 21  # stdlib heuristic: set cost vs copying the pool
            if k > 5:
                setsize += 4 ** math.ceil(math.log(k * 3, 4))
            if m <= setsize:
                if m != cached_m:
                    base_pool = list(range(m))
                    pool = list(base_pool)
                    cached_m = m
                for pi in my_pis:
                    grb = streams[order_list[pi] - lo]
                    pool[:] = base_pool
                    for t in range(k):
                        bound = m - t
                        bits = bound.bit_length()
                        j = grb(bits)
                        while j >= bound:
                            j = grb(bits)
                        v = pool[j]
                        pool[j] = pool[bound - 1]
                        row[t] = order_list[v] if v < pi else order_list[v + 1]
                    rows_arr[pi * k : pi * k + k] = row
            else:
                cached_m = -1  # pool scratch is stale if m shrinks back
                bits = m.bit_length()
                for pi in my_pis:
                    grb = streams[order_list[pi] - lo]
                    selected: set[int] = set()
                    add = selected.add
                    for t in range(k):
                        j = grb(bits)
                        while j >= m or j in selected:
                            j = grb(bits)
                        add(j)
                        row[t] = order_list[j] if j < pi else order_list[j + 1]
                    rows_arr[pi * k : pi * k + k] = row
            conn.send(("done", cfg.worker_id))
    except Exception:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
            pass
        raise
    finally:
        del order_arr, rows_arr  # release the buffer exports before close
        shm.close()


def _teardown(procs, conns, shm) -> None:
    """Stop workers and release the shared block (idempotent, self-free).

    Module-level so :class:`weakref.finalize` can call it without
    keeping the executor alive: exit message → join → terminate → kill,
    then close pipes and close+unlink the shared memory.
    """
    for conn in conns:
        try:
            conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
    for proc in procs:
        proc.join(timeout=5.0)
    for proc in procs:
        if proc.is_alive():  # pragma: no cover - stuck worker
            proc.terminate()
            proc.join(timeout=1.0)
        if proc.is_alive():  # pragma: no cover - unkillable worker
            proc.kill()
            proc.join(timeout=1.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:  # pragma: no cover
            pass
    if shm is not None:
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view outlived us
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class ParallelVectorExecutor(VectorRoundExecutor):
    """The sharded vector lane: N worker processes replay the sampling.

    Drop-in subclass of :class:`VectorRoundExecutor` — construction,
    facades, crash/churn, folds and stats are all inherited. The
    differences are confined to target sampling:

    * the parent builds **no** per-node RNG streams (the workers own
      them);
    * draw-consuming ticks are dispatched to the workers and the rows
      are merged back from shared memory in emission order;
    * crash/restart bump an order version so workers re-read the
      emission order only when it actually changed.

    Call :meth:`close` when done (``SimCluster.close`` does); a
    finalizer tears the workers down if the executor is dropped.
    """

    def __init__(
        self,
        sim,
        network,
        collector,
        system,
        n_nodes: int,
        latency,
        rounds,
        sample_gauges: bool = True,
        use_numpy: Optional[bool] = None,
        shards: int = 2,
    ) -> None:
        if _np is None:
            raise RuntimeError(
                "the parallel vector lane requires numpy (pip install .[accel])"
            )
        if use_numpy is None:
            use_numpy = True
        if not use_numpy:
            raise RuntimeError(
                "the parallel vector lane requires the numpy fast path "
                "(use_numpy=False keeps the single-core reference lane)"
            )
        shards = int(shards)
        if shards < 2:
            raise ValueError(f"ParallelVectorExecutor needs shards >= 2, got {shards}")
        if n_nodes < shards:
            raise ValueError(
                f"n_nodes={n_nodes} < shards={shards}: every worker needs "
                "at least one node"
            )
        self.shards = shards
        self._closed = False
        self._procs: list = []
        self._conns: list = []
        self._shm = None
        self._finalizer = None
        super().__init__(
            sim,
            network,
            collector,
            system,
            n_nodes,
            latency,
            rounds,
            sample_gauges=sample_gauges,
            use_numpy=use_numpy,
        )
        fanout = max(1, int(system.fanout))
        order_bytes = n_nodes * 4
        try:
            self._shm = shared_memory.SharedMemory(
                create=True, size=order_bytes + n_nodes * fanout * 4
            )
            self._finalizer = weakref.finalize(
                self, _teardown, self._procs, self._conns, self._shm
            )
            self._order_arr = _np.ndarray(
                (n_nodes,), dtype=_np.int32, buffer=self._shm.buf
            )
            self._rows_arr = _np.ndarray(
                (n_nodes * fanout,),
                dtype=_np.int32,
                buffer=self._shm.buf,
                offset=order_bytes,
            )
            self._order_version = 0
            self._order_changed = True  # publish the initial order
            # fork shares the parent's pages copy-on-write (cheap); fall
            # back to spawn where fork is unavailable — workers rebuild
            # everything from the picklable config either way
            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
            seed = sim.rngs.seed
            bounds = shard_bounds(n_nodes, shards)
            # all pipes exist before the first fork, so each worker can
            # be handed the sibling/parent ends it inherits and close
            # them (see shard_worker_main's close_first)
            pipe_pairs = [ctx.Pipe() for _ in bounds]
            use_fork = ctx.get_start_method() == "fork"
            for w, (lo, hi) in enumerate(bounds):
                cfg = ShardConfig(
                    worker_id=w,
                    seed=seed,
                    lo=lo,
                    hi=hi,
                    n_nodes=n_nodes,
                    fanout=fanout,
                    shm_name=self._shm.name,
                )
                parent_conn, child_conn = pipe_pairs[w]
                inherited = (
                    [pc for pc, _ in pipe_pairs]
                    + [cc for i, (_, cc) in enumerate(pipe_pairs) if i != w]
                    if use_fork
                    else []  # spawn children only receive their own conn
                )
                proc = ctx.Process(
                    target=shard_worker_main,
                    args=(child_conn, cfg, inherited),
                    daemon=True,
                )
                proc.start()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            for _, child_conn in pipe_pairs:
                child_conn.close()
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # the sampling split
    # ------------------------------------------------------------------
    def _build_streams(self):
        # the workers own the per-node streams; the parent never draws
        # from them (and skips materialising n Random objects)
        return None

    def _dispatch_sampling(self, order, a: int, m: int, k: int) -> None:
        if k >= m:
            return  # zero-draw tick: handled inline by _sample_rows
        if self._order_changed:
            self._order_arr[:a] = order
            self._order_version += 1
            self._order_changed = False
        msg = ("tick", a, m, k, self._order_version)
        for conn in self._conns:
            conn.send(msg)

    def _sample_rows(self, order, a: int, m: int, k: int) -> list[list[int]]:
        if k >= m:
            return super()._sample_rows(order, a, m, k)
        # the barrier: every worker has written its rows before we read
        for conn in self._conns:
            try:
                ack = conn.recv()
            except EOFError:
                raise RuntimeError(
                    "a sampling worker died mid-round (EOF on its pipe)"
                ) from None
            if ack[0] == "error":
                raise RuntimeError(f"sampling worker failed:\n{ack[1]}")
        # one C-level pass merges the shards in emission order and
        # yields plain python ints (downstream code uses them as keys)
        return self._rows_arr[: a * k].reshape(a, k).tolist()

    # ------------------------------------------------------------------
    # order-version maintenance (the only churn-facing difference)
    # ------------------------------------------------------------------
    def crash(self, node_id: int) -> None:
        super().crash(node_id)
        # the order compacts at the next tick; republish it then
        self._order_changed = True

    def restart(self, node_id: int) -> None:
        super().restart(node_id)
        self._order_changed = True

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and release the shared block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        # drop our views first so the finalizer can close the mapping
        self._order_arr = None
        self._rows_arr = None
        if self._finalizer is not None:
            self._finalizer()
        elif self._shm is not None:  # pragma: no cover - init failed early
            _teardown(self._procs, self._conns, self._shm)
