"""Latency topologies.

These wrap a base-latency function ``(src, dst) -> seconds`` behind the
:class:`repro.sim.network.LatencyModel` protocol, optionally adding jitter.
They let experiments move from the paper's single-LAN setting to clustered
(multi-site) or arbitrary-graph settings, which the paper's §5 mentions as
the motivation for topology-aware gossip (directional gossip).
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

__all__ = ["UniformTopology", "ClusteredTopology", "GraphTopology"]

Address = Hashable


class UniformTopology:
    """All pairs share one base latency with multiplicative jitter."""

    def __init__(self, base: float = 0.02, jitter: float = 0.5) -> None:
        if base < 0:
            raise ValueError("base latency must be >= 0")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self.base = base
        self.jitter = jitter

    def sample(self, src: Address, dst: Address, rng) -> float:
        if self.jitter == 0:
            return self.base
        return self.base * rng.uniform(1 - self.jitter, 1 + self.jitter)


class ClusteredTopology:
    """Two-level latency: cheap intra-cluster, expensive inter-cluster.

    ``cluster_of`` maps address -> cluster id; unknown addresses are
    treated as their own singleton cluster.
    """

    def __init__(
        self,
        cluster_of: Mapping[Address, int],
        intra: float = 0.005,
        inter: float = 0.08,
        jitter: float = 0.3,
    ) -> None:
        self.cluster_of = dict(cluster_of)
        self.intra = intra
        self.inter = inter
        self.jitter = jitter

    def _cluster(self, addr: Address) -> object:
        return self.cluster_of.get(addr, ("singleton", addr))

    def sample(self, src: Address, dst: Address, rng) -> float:
        base = self.intra if self._cluster(src) == self._cluster(dst) else self.inter
        if self.jitter == 0:
            return base
        return base * rng.uniform(1 - self.jitter, 1 + self.jitter)


class GraphTopology:
    """Latency proportional to shortest-path distance in a graph.

    Accepts any ``networkx``-style graph (only ``nodes`` and adjacency are
    required). Distances are precomputed with BFS (unweighted hops) and
    multiplied by ``per_hop``; disconnected pairs fall back to ``default``.
    """

    def __init__(
        self,
        graph,
        per_hop: float = 0.01,
        default: float = 0.2,
        jitter: float = 0.2,
    ) -> None:
        self.per_hop = per_hop
        self.default = default
        self.jitter = jitter
        self._dist: dict[Address, dict[Address, int]] = {}
        nodes = list(graph.nodes) if hasattr(graph, "nodes") else list(graph)
        adjacency = {n: list(graph[n]) for n in nodes}
        for start in nodes:
            dist = {start: 0}
            frontier = [start]
            while frontier:
                nxt: list[Address] = []
                for u in frontier:
                    for v in adjacency[u]:
                        if v not in dist:
                            dist[v] = dist[u] + 1
                            nxt.append(v)
                frontier = nxt
            self._dist[start] = dist

    def hops(self, src: Address, dst: Address) -> Optional[int]:
        """Shortest-path hop count, or None if unreachable/unknown."""
        if src == dst:
            return 0
        return self._dist.get(src, {}).get(dst)

    def sample(self, src: Address, dst: Address, rng) -> float:
        hops = self.hops(src, dst)
        base = self.default if hops is None else max(1, hops) * self.per_hop
        if self.jitter == 0:
            return base
        return base * rng.uniform(1 - self.jitter, 1 + self.jitter)
