"""Base class for simulated processes.

A :class:`SimProcess` is anything with an identity that lives on the
simulator: gossip nodes, workload generators, scenario scripts. It wraps
the common chores — periodic timers with per-process phase jitter, a named
RNG stream, tracing — so protocol code stays focused on protocol logic.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from repro.sim.engine import Simulator, TimerHandle

__all__ = ["SimProcess"]


class SimProcess:
    """A named participant in a simulation.

    Subclasses typically call :meth:`every` in their constructor to start
    periodic work and use :attr:`rng` for all their random choices.
    """

    def __init__(self, sim: Simulator, name: Hashable) -> None:
        self.sim = sim
        self.name = name
        self.rng = sim.rngs.stream("process", name)
        self._timers: list[TimerHandle] = []
        self._stopped = False

    # ------------------------------------------------------------------
    # timers
    # ------------------------------------------------------------------
    def every(
        self,
        period: float,
        fn: Callable[[], None],
        phase: Optional[float] = None,
        jitter: float = 0.0,
    ) -> None:
        """Run ``fn()`` every ``period`` seconds.

        ``phase`` sets the first firing offset; by default a random phase
        in ``[0, period)`` desynchronises processes, matching how real
        deployments drift apart. ``jitter`` (fraction of the period) adds
        per-tick noise thereafter.
        """
        if period <= 0:
            raise ValueError("period must be positive")
        if phase is None:
            phase = self.rng.uniform(0, period)

        def tick() -> None:
            if self._stopped:
                return
            fn()
            delay = period
            if jitter:
                delay *= self.rng.uniform(1 - jitter, 1 + jitter)
            self._timers.append(self.sim.schedule(delay, tick))

        self._timers.append(self.sim.schedule(phase, tick))

    def after(self, delay: float, fn: Callable[[], None], *args: Any) -> TimerHandle:
        """One-shot timer that is suppressed once the process stops."""

        def guarded() -> None:
            if not self._stopped:
                fn(*args)

        handle = self.sim.schedule(delay, guarded)
        self._timers.append(handle)
        return handle

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Stop all periodic activity. Idempotent."""
        self._stopped = True
        for t in self._timers:
            t.cancel()
        self._timers.clear()

    @property
    def stopped(self) -> bool:
        return self._stopped

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def trace(self, category: str, **fields: Any) -> None:
        self.sim.trace.record(self.sim.now, category, self.name, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
