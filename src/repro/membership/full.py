"""Full-membership directory, as used in the paper's 60-node experiments.

A single :class:`Directory` is shared by all nodes of a simulation (it is
bookkeeping, not a protocol — the paper's testbed configures membership
statically). Each node holds a :class:`FullMembershipView` that samples
uniform gossip targets among the other alive nodes.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from repro.gossip.protocol import NodeId
from repro.sim.rng import uniform_sample

__all__ = ["Directory", "FullMembershipView"]


class Directory:
    """Registry of alive node ids with cheap change detection.

    Thread-safe: the threaded runtime's fault scheduler joins and
    removes members from its own thread while every node thread reads
    the directory through its view, so mutation and the snapshot in
    :meth:`alive` are serialised behind a lock. The hot path — views
    polling :attr:`version` to validate their cached peer list — is a
    lockless int read, so the simulator's single-threaded runs pay
    nothing for this.
    """

    def __init__(self, members: Optional[Iterable[NodeId]] = None) -> None:
        self._alive: dict[NodeId, None] = {}
        self._version = 0
        self._lock = threading.Lock()
        for m in members or ():
            self.join(m)

    @property
    def version(self) -> int:
        """Bumped on every join/leave; views use it to invalidate caches."""
        return self._version

    def join(self, node: NodeId) -> None:
        """Add a member (idempotent)."""
        with self._lock:
            if node not in self._alive:
                self._alive[node] = None
                self._version += 1

    def leave(self, node: NodeId) -> None:
        """Remove a member (idempotent)."""
        with self._lock:
            if node in self._alive:
                del self._alive[node]
                self._version += 1

    def is_alive(self, node: NodeId) -> bool:
        """Whether ``node`` is currently a member."""
        return node in self._alive

    def alive(self) -> list[NodeId]:
        """All current members, in join order."""
        with self._lock:
            return list(self._alive)

    def __len__(self) -> int:
        return len(self._alive)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._alive


class FullMembershipView:
    """A node's view over a shared :class:`Directory` (itself excluded)."""

    # Full views learn nothing from gossip: protocols may skip the
    # per-message on_gossip_receive call entirely (hot-path contract).
    gossip_passive = True

    def __init__(self, directory: Directory, owner: NodeId) -> None:
        self._directory = directory
        self._owner = owner
        self._cache_version = -1
        self._cache: list[NodeId] = []

    def _peers(self) -> list[NodeId]:
        # read the version before the snapshot: a concurrent change then
        # at worst stamps fresher data with an older version, and the
        # next call re-validates (stamping after could mask the change)
        version = self._directory.version
        if self._cache_version != version:
            self._cache = [n for n in self._directory.alive() if n != self._owner]
            self._cache_version = version
        return self._cache

    def size(self) -> int:
        """Number of known peers (excluding the owner)."""
        return len(self._peers())

    def contains(self, node: NodeId) -> bool:
        """Whether ``node`` is a known peer (the owner never is)."""
        return node != self._owner and self._directory.is_alive(node)

    def sample_targets(self, count: int, rng) -> list[NodeId]:
        """Uniform sample (without replacement) of up to ``count`` peers."""
        peers = self._peers()
        if count >= len(peers):
            return list(peers)
        return uniform_sample(rng, peers, count)

    # Partial-view protocol compatibility: full views ignore gossip.
    def on_gossip_emit(self, rng):  # pragma: no cover - trivial
        return None

    def on_gossip_receive(self, header, sender: NodeId, rng) -> None:
        return None
