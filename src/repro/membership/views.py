"""lpbcast-style partial membership views.

Each node knows only a bounded random *view* of the group. Membership
information travels inside normal gossip messages as subscription
(``subs``) and unsubscription (``unsubs``) lists — exactly the mechanism
of the lpbcast paper the reproduction's baseline comes from. When a view
or buffer overflows, a uniformly random element is discarded, which keeps
views converging to uniform samples of the group.

The adaptive mechanism composes with this unchanged: its headers ride the
same messages, and its minimum aggregation only needs the gossip overlay
to be connected, not complete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.gossip.protocol import MembershipHeader, NodeId
from repro.sim.rng import uniform_sample

__all__ = ["ViewConfig", "PartialViewMembership"]


@dataclass(frozen=True, slots=True)
class ViewConfig:
    """Bounds for the partial-view state.

    ``view_size`` bounds the gossip target view; ``subs_size`` and
    ``unsubs_size`` bound the subscription buffers; ``subs_per_gossip`` /
    ``unsubs_per_gossip`` bound how many entries ride each message.
    """

    view_size: int = 12
    subs_size: int = 20
    unsubs_size: int = 20
    subs_per_gossip: int = 4
    unsubs_per_gossip: int = 4

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ValueError("view_size must be >= 1")
        if min(self.subs_size, self.unsubs_size) < 1:
            raise ValueError("subs/unsubs buffers must hold >= 1 entry")
        if min(self.subs_per_gossip, self.unsubs_per_gossip) < 0:
            raise ValueError("per-gossip counts must be >= 0")


class PartialViewMembership:
    """A node's partial view plus subs/unsubs gossip buffers."""

    def __init__(
        self,
        owner: NodeId,
        config: Optional[ViewConfig] = None,
        initial_view: Optional[list[NodeId]] = None,
    ) -> None:
        self.owner = owner
        self.config = config or ViewConfig()
        self._view: dict[NodeId, None] = {}
        self._subs: dict[NodeId, None] = {}
        self._unsubs: dict[NodeId, None] = {}
        self.unsubscribed = False
        for node in initial_view or ():
            self._add_to_view(node, rng=None)

    # ------------------------------------------------------------------
    # view maintenance
    # ------------------------------------------------------------------
    def _trim(self, store: dict[NodeId, None], limit: int, rng) -> None:
        while len(store) > limit:
            if rng is None:
                victim = next(iter(store))
            else:
                victim = rng.choice(list(store))
            del store[victim]

    def _add_to_view(self, node: NodeId, rng) -> None:
        if node == self.owner or node in self._view:
            return
        self._view[node] = None
        if len(self._view) > self.config.view_size:
            # lpbcast: evict a random element, remembering it as a sub so
            # knowledge of it keeps circulating.
            victims = [n for n in self._view if n != node] or [node]
            victim = victims[0] if rng is None else rng.choice(victims)
            del self._view[victim]
            self._subs[victim] = None
            self._trim(self._subs, self.config.subs_size, rng)

    def view(self) -> list[NodeId]:
        return list(self._view)

    def size(self) -> int:
        return len(self._view)

    def contains(self, node: NodeId) -> bool:
        return node in self._view

    def sample_targets(self, count: int, rng) -> list[NodeId]:
        view = list(self._view)
        if count >= len(view):
            return view
        return uniform_sample(rng, view, count)

    # ------------------------------------------------------------------
    # subscription management
    # ------------------------------------------------------------------
    def unsubscribe(self) -> None:
        """Announce departure: future gossip carries our unsubscription."""
        self.unsubscribed = True

    # ------------------------------------------------------------------
    # gossip integration
    # ------------------------------------------------------------------
    def on_gossip_emit(self, rng) -> MembershipHeader:
        """Build the membership header for an outgoing gossip message."""
        cfg = self.config
        subs_pool = list(self._subs)
        n_subs = min(len(subs_pool), max(0, cfg.subs_per_gossip - 1))
        subs = rng.sample(subs_pool, n_subs) if n_subs else []
        if not self.unsubscribed:
            subs.append(self.owner)  # keep (re-)subscribing ourselves

        unsubs_pool = list(self._unsubs)
        n_unsubs = min(len(unsubs_pool), cfg.unsubs_per_gossip)
        unsubs = rng.sample(unsubs_pool, n_unsubs) if n_unsubs else []
        if self.unsubscribed:
            unsubs.append(self.owner)
        return MembershipHeader(subs=tuple(subs), unsubs=tuple(unsubs))

    def on_gossip_receive(
        self, header: Optional[MembershipHeader], sender: NodeId, rng
    ) -> None:
        """Fold a received membership header into local state."""
        if header is None:
            header = MembershipHeader(subs=(), unsubs=())
        cfg = self.config
        for node in header.unsubs:
            if node == self.owner:
                continue
            self._view.pop(node, None)
            self._subs.pop(node, None)
            self._unsubs[node] = None
        self._trim(self._unsubs, cfg.unsubs_size, rng)

        for node in (sender, *header.subs):
            if node == self.owner or node in self._unsubs:
                continue
            self._add_to_view(node, rng)
            if node != sender:
                self._subs[node] = None
        self._trim(self._subs, cfg.subs_size, rng)
