"""Scripted membership churn.

The paper motivates adaptation with dynamic systems: nodes join and leave
groups at runtime, which both changes where the minimum buffer sits and
how much load the group can carry. A :class:`ChurnScript` is a declarative
schedule of join/leave actions that a cluster driver replays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal, Sequence

from repro.gossip.protocol import NodeId

__all__ = ["ChurnEvent", "ChurnScript"]


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One membership change at an absolute simulation time."""

    time: float
    action: Literal["join", "leave", "crash"]
    node: NodeId

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("churn time must be >= 0")
        if self.action not in ("join", "leave", "crash"):
            raise ValueError(f"unknown churn action {self.action!r}")


@dataclass
class ChurnScript:
    """An ordered schedule of churn events.

    ``leave`` is a graceful departure (the node unsubscribes and stops);
    ``crash`` is silent (the node just stops answering), which exercises
    the gossip redundancy the paper relies on as a safety margin.
    """

    events: list[ChurnEvent] = field(default_factory=list)

    def join(self, time: float, node: NodeId) -> "ChurnScript":
        self.events.append(ChurnEvent(time, "join", node))
        return self

    def leave(self, time: float, node: NodeId) -> "ChurnScript":
        self.events.append(ChurnEvent(time, "leave", node))
        return self

    def crash(self, time: float, node: NodeId) -> "ChurnScript":
        self.events.append(ChurnEvent(time, "crash", node))
        return self

    def extend(self, events: Iterable[ChurnEvent]) -> "ChurnScript":
        self.events.extend(events)
        return self

    def rolling(
        self,
        start: float,
        interval: float,
        nodes: Sequence[NodeId],
        rejoin_after: float | None = None,
        action: Literal["leave", "crash"] = "leave",
    ) -> "ChurnScript":
        """One node departs every ``interval`` seconds, starting at ``start``.

        The canonical rolling-upgrade / flaky-fleet shape: node ``i``
        departs at ``start + i * interval`` via ``action`` and, when
        ``rejoin_after`` is given, rejoins that many seconds later (a
        node may thus be down while the next one departs — exactly the
        overlap a rolling restart produces).
        """
        if interval <= 0:
            raise ValueError("interval must be > 0")
        if rejoin_after is not None and rejoin_after <= 0:
            raise ValueError("rejoin_after must be > 0")
        for i, node in enumerate(nodes):
            t = start + i * interval
            self.events.append(ChurnEvent(t, action, node))
            if rejoin_after is not None:
                self.events.append(ChurnEvent(t + rejoin_after, "join", node))
        return self

    def sorted_events(self) -> list[ChurnEvent]:
        """Events in replay order (stable for equal times)."""
        return sorted(self.events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)
