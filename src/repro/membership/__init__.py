"""Membership substrates for gossip target selection.

The paper's experiments use a fixed group of 60 processes with full
membership knowledge; its mechanism is explicitly designed to also work
with *partial* membership views ("our mechanisms could be applied to a
gossip-based algorithm relying on a partial membership knowledge", §5).
Both are provided:

* :mod:`repro.membership.full` — a shared :class:`Directory` of alive
  nodes plus per-node full views.
* :mod:`repro.membership.views` — lpbcast-style partial views maintained
  by piggybacked subscription/unsubscription gossip.
* :mod:`repro.membership.churn` — scripted join/leave schedules.
"""

from repro.membership.full import Directory, FullMembershipView
from repro.membership.views import PartialViewMembership, ViewConfig
from repro.membership.churn import ChurnEvent, ChurnScript

__all__ = [
    "Directory",
    "FullMembershipView",
    "PartialViewMembership",
    "ViewConfig",
    "ChurnEvent",
    "ChurnScript",
]
