"""repro — Adaptive Gossip-Based Broadcast (Rodrigues et al., DSN 2003).

A full reproduction of the paper's system: the lpbcast-style gossip
substrate (Figure 1), token-bucket admission (Figure 3), the adaptive
mechanism (Figure 5: distributed minimum-buffer discovery, local
congestion estimation from drop ages, thresholded rate control), a
deterministic discrete-event simulator, a threaded real-time runtime, the
§1 publish-subscribe motivating application, and an experiment harness
regenerating every figure of the paper's evaluation.

Quickstart
----------
>>> from repro import SimCluster, analyze_delivery
>>> cluster = SimCluster(n_nodes=30, protocol="adaptive", seed=7)
>>> senders = cluster.add_senders([0, 1, 2], rate_each=5.0)
>>> cluster.run(until=60.0)
>>> stats = analyze_delivery(
...     cluster.metrics.messages_in_window(20.0, 50.0), cluster.group_size
... )
"""

from repro.core.adaptive import AdaptiveLpbcastProtocol, StaticRateLpbcastProtocol
from repro.core.bimodal import AdaptiveBimodalProtocol
from repro.gossip.bimodal import BimodalProtocol
from repro.core.aggregation import (
    KSmallestAggregate,
    MinAggregate,
    ThresholdedKSmallestAggregate,
)
from repro.core.config import AdaptiveConfig
from repro.driver import Driver
from repro.gossip.config import SystemConfig
from repro.gossip.lpbcast import LpbcastProtocol
from repro.metrics.collector import MetricsCollector
from repro.metrics.delivery import DeliveryStats, analyze_delivery, atomicity_series
from repro.membership.churn import ChurnScript
from repro.scenarios.registry import get_scenario, list_scenarios, scenario
from repro.scenarios.spec import ScenarioSpec, SenderSpec
from repro.sim.engine import Simulator
from repro.sim.faults import FaultScript
from repro.workload.cluster import SimCluster, make_protocol_factory
from repro.workload.dynamics import ResourceScript
from repro.workload.pubsub import PubSubSystem
from repro.workload.senders import OnOffArrivals, PeriodicArrivals, PoissonArrivals

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "SystemConfig",
    "AdaptiveConfig",
    "LpbcastProtocol",
    "StaticRateLpbcastProtocol",
    "AdaptiveLpbcastProtocol",
    "BimodalProtocol",
    "AdaptiveBimodalProtocol",
    "MinAggregate",
    "KSmallestAggregate",
    "ThresholdedKSmallestAggregate",
    "Simulator",
    "Driver",
    "SimCluster",
    "make_protocol_factory",
    "ScenarioSpec",
    "SenderSpec",
    "scenario",
    "get_scenario",
    "list_scenarios",
    "FaultScript",
    "ChurnScript",
    "ResourceScript",
    "PubSubSystem",
    "PeriodicArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "MetricsCollector",
    "DeliveryStats",
    "analyze_delivery",
    "atomicity_series",
]
