"""The discrete-event cluster driver.

:class:`SimCluster` assembles a complete simulated system: a
:class:`~repro.sim.engine.Simulator`, a :class:`~repro.sim.network.Network`,
membership, one protocol instance per node, round dispatch, senders, and
a :class:`~repro.metrics.collector.MetricsCollector`. The shared wiring
(factory resolution, metrics binding, directory) lives in the
:class:`~repro.driver.Driver` base class that the threaded runtime's
cluster also builds on.

It reproduces the paper's experimental setting with defaults of 60 nodes,
fanout 4 and a uniform low-latency LAN, and exposes the runtime controls
the evaluation needs: changing node buffer capacities mid-run (Figure 9),
scripted churn, and partial-view membership.

Round dispatch comes in two flavours selected by ``dispatch``:

* ``"batched"`` (default) — rounds are driven by the simulator's
  :class:`~repro.sim.engine.RoundDispatcher` and emissions go through
  :meth:`~repro.gossip.protocol.GossipProtocol.on_round_batch` and
  :meth:`~repro.sim.network.Network.multicast`. With a fixed
  ``round_phase`` and zero ``round_jitter`` this fires *all* node rounds
  from one heap pop per cluster round.
* ``"timers"`` — the original per-node timer path (one
  :meth:`~repro.sim.process.SimProcess.every` loop and one
  :meth:`~repro.sim.network.Network.send` per emission per node). Kept as
  the reference implementation; a run is byte-identical under either
  dispatch mode (the determinism tests assert this).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.driver import Driver, ProtocolFactory, make_protocol_factory
from repro.core.aggregation import Aggregate
from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.gossip.protocol import GossipMessage, NodeId
from repro.membership.churn import ChurnScript
from repro.membership.full import FullMembershipView
from repro.membership.views import PartialViewMembership, ViewConfig
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import RoundDispatcher, Simulator
from repro.sim.network import LatencyModel, LossModel, Network, UniformLatency
from repro.sim.process import SimProcess
from repro.sim.trace import TraceLog
from repro.sim.vector import (
    VectorRoundExecutor,
    mega_schedule_reason,
    vector_eligible,
)
from repro.sim.vector_parallel import (
    ParallelVectorExecutor,
    parallel_ineligible_reason,
    resolve_shards,
)
from repro.workload.senders import PeriodicArrivals, Sender

__all__ = ["ClusterNode", "SimCluster", "make_protocol_factory", "ProtocolFactory"]


class ClusterNode(SimProcess):
    """One simulated node: a protocol instance plus its round dispatch."""

    GAUGES_EVERY_ROUND = ("allowed_rate", "avg_age", "min_buff", "buffer_len")

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        node_id: NodeId,
        protocol,
        system: SystemConfig,
        collector: MetricsCollector,
        sample_gauges: bool = True,
        rounds: Optional[RoundDispatcher] = None,
    ) -> None:
        super().__init__(sim, ("node", node_id))
        self.node_id = node_id
        self.network = network
        self.protocol = protocol
        self.system = system
        self.collector = collector
        self.sample_gauges = sample_gauges
        self._round_member = None
        # The network's per-instant delivery coalescing feeds everything
        # through the batch handler; push-only protocols (never a reply)
        # get the variant without reply dispatch. The plain handler is
        # the Network API's per-message fallback and is not used while a
        # batch handler is registered.
        batch = (
            self._on_message_batch
            if getattr(protocol, "may_reply", True)
            else self._on_message_batch_push_only
        )
        network.attach(node_id, self._on_message, batch_handler=batch)
        if rounds is not None:
            self._round_member = rounds.add(
                self._on_round_batched,
                system.gossip_period,
                phase=system.round_phase,
                jitter=system.round_jitter,
                rng=self.rng,
            )
        else:
            self.every(
                system.gossip_period,
                self._on_round,
                phase=system.round_phase,
                jitter=system.round_jitter,
            )

    # ------------------------------------------------------------------
    # driver plumbing
    # ------------------------------------------------------------------
    def _on_round(self) -> None:
        """Per-node-timer round: one send per emission (reference path)."""
        now = self.sim.now
        for dest, message in self.protocol.on_round(now):
            self.network.send(self.node_id, dest, message, items=message.n_events)
        if self.sample_gauges:
            self._sample_gauges(now)

    def _on_round_batched(self) -> None:
        """Batched round: one multicast per (destinations, message) group."""
        now = self.sim.now
        node_id = self.node_id
        multicast = self.network.multicast
        for dests, message in self.protocol.on_round_batch(now):
            multicast(node_id, dests, message, items=message.n_events)
        if self.sample_gauges:
            self._sample_gauges(now)

    def _on_message(self, message: GossipMessage, src: NodeId, now: float) -> None:
        replies = self.protocol.on_receive(message, now)
        if replies:
            for dest, reply in replies:
                self.network.send(self.node_id, dest, reply, items=reply.n_events)

    def _on_message_batch(self, messages: list, now: float) -> None:
        replies = self.protocol.on_receive_batch(messages, now)
        if replies:
            for dest, reply in replies:
                self.network.send(self.node_id, dest, reply, items=reply.n_events)

    def _on_message_batch_push_only(self, messages: list, now: float) -> None:
        self.protocol.on_receive_batch(messages, now)

    def _sample_gauges(self, now: float) -> None:
        collector = self.collector
        protocol = self.protocol
        rate = getattr(protocol, "allowed_rate", None)
        if rate is not None:
            collector.sample_gauge("allowed_rate", self.node_id, now, rate)
        avg_age = getattr(protocol, "avg_age", None)
        if avg_age is not None:
            collector.sample_gauge("avg_age", self.node_id, now, avg_age)
        min_buff = getattr(protocol, "min_buff_estimate", None)
        if min_buff is not None:
            collector.sample_gauge("min_buff", self.node_id, now, min_buff)
        collector.sample_gauge("buffer_len", self.node_id, now, len(protocol.buffer))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop rounds and detach from the network (leave/crash)."""
        self.stop()
        if self._round_member is not None:
            self._round_member.cancel()
        self.network.detach(self.node_id)


class SimCluster(Driver):
    """A complete simulated gossip group.

    Parameters
    ----------
    n_nodes:
        Group size (the paper uses 60).
    system:
        Gossip substrate parameters.
    protocol:
        Either a kind string (see :func:`repro.driver.make_protocol_factory`)
        or a ready factory.
    adaptive / rate_limit / aggregate:
        Forwarded to the factory when ``protocol`` is a kind string.
    seed:
        Root seed — everything (phases, targets, latencies, workloads)
        derives from it; same seed, same run.
    latency / loss:
        Network models; defaults to a jittered LAN with no loss.
    membership:
        ``"full"`` (paper's setting) or ``"partial"`` (lpbcast views).
    bucket_width:
        Metrics time-bucket width in seconds.
    trace:
        Enable the structured trace log (slower; for debugging/tests).
    dispatch:
        ``"batched"`` (default), ``"timers"``, or ``"vector"`` — see the
        module docstring and :mod:`repro.sim.vector`.
    aggregate_metrics:
        Aggregate-only metrics (no per-node receiver sets or gauges) —
        the memory mode for 10k+-node runs.
    allow_mega:
        Permission for ``dispatch="vector"`` to use the whole-population
        columnar lane when the configuration qualifies. Loss, partition,
        one-way, link-loss, bandwidth-cap, crash and aligned churn
        schedules lower onto the lane; callers that will apply a
        schedule it cannot honour (see
        :func:`~repro.sim.vector.mega_schedule_reason`) pass ``False``
        — the harness screens specs and does this automatically.
    vector_numpy:
        Force the vector lane's numpy fast path on/off; ``None``
        auto-detects. Results are identical either way.
    shards:
        Worker-process count for the multicore vector lane
        (:class:`~repro.sim.vector_parallel.ParallelVectorExecutor`).
        ``None``/``1`` keep the single-core vector lane, ``0`` resolves
        to ``cores - 1``, and ``>= 2`` shards the sampling hot loop
        across that many persistent worker processes — byte-identical
        at any shard count. When the parallel lane cannot engage (no
        numpy, fewer nodes than shards, or the vector lane itself fell
        back) the run proceeds single-core and
        ``parallel_fallback_reason`` says why.
    """

    def __init__(
        self,
        n_nodes: int = 60,
        system: Optional[SystemConfig] = None,
        protocol: Any = "lpbcast",
        adaptive: Optional[AdaptiveConfig] = None,
        rate_limit: Optional[float] = None,
        aggregate: Optional[Aggregate] = None,
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        loss: Optional[LossModel] = None,
        membership: str = "full",
        view_config: Optional[ViewConfig] = None,
        bucket_width: float = 1.0,
        trace: bool = False,
        sample_gauges: bool = True,
        dispatch: str = "batched",
        aggregate_metrics: bool = False,
        allow_mega: bool = True,
        vector_numpy: Optional[bool] = None,
        shards: Optional[int] = None,
    ) -> None:
        super().__init__(
            n_nodes,
            system=system,
            protocol=protocol,
            adaptive=adaptive,
            rate_limit=rate_limit,
            aggregate=aggregate,
            bucket_width=bucket_width,
            aggregate_metrics=aggregate_metrics,
        )
        if dispatch not in ("batched", "timers", "vector"):
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        self.dispatch = dispatch
        self.sim = Simulator(seed=seed, trace=TraceLog(enabled=trace))
        resolved_latency = latency if latency is not None else UniformLatency(0.005, 0.05)
        self.network = Network(self.sim, latency=resolved_latency, loss=loss)
        self.rounds = (
            RoundDispatcher(self.sim) if dispatch in ("batched", "vector") else None
        )
        self.membership_kind = membership
        self.view_config = view_config
        self.nodes: dict[NodeId, ClusterNode] = {}
        self.senders: dict[NodeId, Sender] = {}
        self._sample_gauges = sample_gauges
        # group size over time, for delivery analysis under churn
        self._size_log: list[tuple[float, int]] = []
        # The vector dispatch mode routes qualifying configurations onto
        # the whole-population columnar lane; everything else (and both
        # classic modes) materialises real per-node protocol instances,
        # for which vector dispatch is identical to batched.
        self.vector: Optional[VectorRoundExecutor] = None
        self.parallel_fallback_reason: Optional[str] = None
        self.shards = 1  # effective sampling-worker count
        resolved_shards = resolve_shards(shards)
        if dispatch == "vector" and vector_eligible(
            protocol=protocol,
            membership=membership,
            system=self.system,
            latency=resolved_latency,
            loss=loss,
            trace=trace,
            aggregate=aggregate,
            rate_limit=rate_limit,
            n_nodes=n_nodes,
            allow_mega=allow_mega,
        ):
            if resolved_shards >= 2:
                reason = parallel_ineligible_reason(
                    shards=resolved_shards,
                    n_nodes=n_nodes,
                    vector_numpy=vector_numpy,
                )
                if reason is None:
                    self.shards = resolved_shards
                else:
                    self.parallel_fallback_reason = reason
            if self.shards >= 2:
                self.vector = ParallelVectorExecutor(
                    self.sim,
                    self.network,
                    self.metrics,
                    self.system,
                    n_nodes,
                    resolved_latency,
                    self.rounds,
                    sample_gauges=sample_gauges,
                    use_numpy=vector_numpy,
                    shards=self.shards,
                )
            else:
                self.vector = VectorRoundExecutor(
                    self.sim,
                    self.network,
                    self.metrics,
                    self.system,
                    n_nodes,
                    resolved_latency,
                    self.rounds,
                    sample_gauges=sample_gauges,
                    use_numpy=vector_numpy,
                )
            self.nodes.update(self.vector.nodes)
            self._log_size()
        else:
            if resolved_shards >= 2:
                self.parallel_fallback_reason = (
                    f"shards={resolved_shards} needs the vector lane, which "
                    "did not engage"
                )
            for node_id in range(n_nodes):
                self._spawn_node(node_id)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(cls, spec, dispatch: str = "batched", **overrides) -> "SimCluster":
        """Instantiate a declarative scenario on the simulator.

        ``spec`` is a :class:`~repro.scenarios.spec.ScenarioSpec`; the
        cluster comes back fully wired — topology, senders, fault/churn/
        resource schedules — and ready for ``run(until=spec.duration)``.
        """
        # Local import: the experiments layer sits above this driver, so
        # pulling the lowering helper in at call time keeps the module
        # graph acyclic while sharing one code path with RunSpec sweeps.
        from repro.experiments.harness import build_cluster, spec_for_scenario

        return build_cluster(spec_for_scenario(spec, dispatch=dispatch, **overrides))

    def _make_membership(self, node_id: NodeId):
        if self.membership_kind == "full":
            return FullMembershipView(self.directory, node_id)
        if self.membership_kind == "partial":
            rng = self.sim.rngs.stream("bootstrap_view", node_id)
            others = [n for n in self.directory.alive() if n != node_id]
            cfg = self.view_config or ViewConfig()
            bootstrap = rng.sample(others, min(len(others), cfg.view_size))
            return PartialViewMembership(node_id, cfg, initial_view=bootstrap)
        raise ValueError(f"unknown membership kind {self.membership_kind!r}")

    def _spawn_node(self, node_id: NodeId) -> ClusterNode:
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} already exists")
        self.directory.join(node_id)
        protocol = self._build_protocol(
            node_id,
            self._make_membership(node_id),
            self.sim.rngs.stream("protocol", node_id),
            self.sim.now,
        )
        node = ClusterNode(
            self.sim,
            self.network,
            node_id,
            protocol,
            self.system,
            self.metrics,
            sample_gauges=self._sample_gauges,
            rounds=self.rounds,
        )
        self.nodes[node_id] = node
        self._log_size()
        return node

    # ------------------------------------------------------------------
    # workload
    # ------------------------------------------------------------------
    def add_sender(
        self,
        node_id: NodeId,
        rate: float,
        arrivals: Any = None,
        start: float = 0.0,
        stop: Optional[float] = None,
        queue_limit: int = 100,
        payload_fn: Optional[Callable[[int], Any]] = None,
    ) -> Sender:
        """Attach an application sender to ``node_id``.

        ``arrivals`` defaults to :class:`PeriodicArrivals` at ``rate``;
        pass a custom arrival process to override (its own rate wins).
        ``payload_fn(seq)`` builds payloads (None payloads by default).
        """
        if node_id not in self.nodes:
            raise ValueError(f"unknown node {node_id!r}")
        if node_id in self.senders:
            raise ValueError(f"node {node_id!r} already has a sender")
        sender = Sender(
            self.sim,
            ("sender", node_id),
            self.nodes[node_id].protocol,
            arrivals if arrivals is not None else PeriodicArrivals(rate),
            self.metrics,
            payload_fn=payload_fn,
            start=start,
            stop=stop,
            queue_limit=queue_limit,
        )
        self.senders[node_id] = sender
        return sender

    def add_senders(self, node_ids, rate_each: float, **kwargs: Any) -> list[Sender]:
        """Attach identical periodic senders to several nodes."""
        return [self.add_sender(n, rate_each, **kwargs) for n in node_ids]

    # ------------------------------------------------------------------
    # runtime control
    # ------------------------------------------------------------------
    def set_capacity(self, node_id: NodeId, capacity: int) -> None:
        """Change a node's buffer capacity now (Figure 9's resource change)."""
        self.nodes[node_id].protocol.set_buffer_capacity(capacity, self.sim.now)

    def at(self, time: float, fn: Callable[[], None]) -> None:
        """Schedule a scenario action at an absolute simulation time."""
        self.sim.schedule_at(time, fn)

    def _check_mega_schedule(self, faults=None, churn=None) -> None:
        """Refuse schedules the columnar lane cannot lower, up front.

        The harness pre-screens specs (``allow_mega`` in
        :func:`~repro.experiments.harness.build_cluster`), so on that path
        the vector lane only engages for supported schedules; this guards
        direct callers that construct a vector cluster and then apply an
        unsupported script.
        """
        if self.vector is None:
            return
        reason = mega_schedule_reason(
            system=self.system,
            n_nodes=self.vector.n,
            faults=faults,
            churn=churn,
            sender_ids=tuple(self.senders),
        )
        if reason is not None:
            raise RuntimeError(
                f"schedule is not supported on the vectorized mega lane "
                f"({reason}); construct the cluster with allow_mega=False "
                "(the harness does this automatically for such specs)"
            )

    def _vector_depart(self, node_id: NodeId, operation: str) -> None:
        """Crash/leave on the columnar lane: column reset, same identity."""
        if node_id in self.senders:
            raise RuntimeError(
                f"{operation} of sender node {node_id!r} is not supported "
                "on the vectorized mega lane (its sender process keeps "
                "broadcasting); construct the cluster with allow_mega=False"
            )
        node = self.nodes.pop(node_id, None)
        if node is None:
            return
        self.directory.leave(node_id)
        self.vector.crash(node_id)
        self._log_size()

    def join_node(self, node_id: NodeId):
        """Add a node to the running group (on the mega lane: re-admit a
        crashed identity as a fresh process)."""
        if self.vector is not None:
            self.vector.restart(node_id)
            self.directory.join(node_id)
            node = self.vector.nodes[node_id]
            self.nodes[node_id] = node
            self._log_size()
            return node
        return self._spawn_node(node_id)

    def leave_node(self, node_id: NodeId) -> None:
        """Graceful departure: announce unsubscription, then stop."""
        if self.vector is not None:
            # full membership has no unsubscription traffic, so a leave
            # and a crash lower identically on the columnar lane
            self._vector_depart(node_id, "leave_node")
            return
        node = self.nodes.pop(node_id, None)
        if node is None:
            return
        membership = node.protocol.membership
        if isinstance(membership, PartialViewMembership):
            membership.unsubscribe()
        self.directory.leave(node_id)
        node.shutdown()
        self.senders.pop(node_id, None)
        self._log_size()

    def crash_node(self, node_id: NodeId) -> None:
        """Silent failure: the node just stops (no unsubscription)."""
        if self.vector is not None:
            self._vector_depart(node_id, "crash_node")
            return
        node = self.nodes.pop(node_id, None)
        if node is None:
            return
        self.directory.leave(node_id)
        node.shutdown()
        self.senders.pop(node_id, None)
        self._log_size()

    def apply_churn(self, script: ChurnScript) -> None:
        """Schedule a churn script's events on the simulator."""
        self._check_mega_schedule(churn=script)
        for event in script.sorted_events():
            action = {
                "join": self.join_node,
                "leave": self.leave_node,
                "crash": self.crash_node,
            }[event.action]
            self.sim.schedule_at(event.time, action, event.node)

    def apply_faults(self, script, baseline_loss=None) -> None:
        """Validate and schedule a :class:`~repro.sim.faults.FaultScript`.

        Passes this cluster along so crash/restart windows can act on
        nodes; ``baseline_loss`` is what loss windows restore on close
        (defaults to a perfect network).
        """
        self._check_mega_schedule(faults=script)
        script.apply(self.sim, self.network, baseline_loss=baseline_loss, cluster=self)

    # ------------------------------------------------------------------
    # execution & analysis
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Advance the simulation to absolute time ``until``."""
        self.sim.run(until=until)

    def run_for(self, duration: float) -> None:
        """Advance the simulation by ``duration`` virtual seconds."""
        self.sim.run(until=self.sim.now + duration)

    def close(self) -> None:
        """Release driver-owned resources (idempotent).

        On the multicore vector lane this stops the sampling workers and
        unlinks their shared-memory block; all metrics and stats remain
        readable afterwards (the parent owns every column).
        """
        if self.vector is not None:
            self.vector.close()

    def _log_size(self) -> None:
        self._size_log.append((self.sim.now, len(self.directory)))

    def group_size_at(self, time: float) -> int:
        """The group size in force at a (past) simulation time.

        Delivery analysis under churn should compare each message against
        the group it was broadcast into, not against the final group.
        """
        size = self._size_log[0][1] if self._size_log else len(self.directory)
        for t, s in self._size_log:
            if t > time:
                break
            size = s
        return size
