"""Workloads and drivers for simulation experiments.

* :mod:`repro.workload.senders` — arrival processes and the
  :class:`Sender` that implements the paper's blocking ``BROADCAST`` on
  top of the protocols' non-blocking admission interface.
* :mod:`repro.workload.cluster` — :class:`SimCluster`, the discrete-event
  driver that wires protocols, network, membership, metrics and senders
  into a runnable system.
* :mod:`repro.workload.dynamics` — scripted runtime resource changes
  (the Figure 9 scenario).
* :mod:`repro.workload.pubsub` — the §1 motivating application: a
  topic-based publish-subscribe layer with per-node buffer budgets split
  across subscribed topics.
"""

from repro.workload.cluster import ClusterNode, SimCluster, make_protocol_factory
from repro.workload.dynamics import CapacityChange, OfferedRateChange, ResourceScript
from repro.workload.pubsub import PubSubHost, PubSubSystem
from repro.workload.senders import (
    OnOffArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    Sender,
)

__all__ = [
    "SimCluster",
    "ClusterNode",
    "make_protocol_factory",
    "Sender",
    "PeriodicArrivals",
    "PoissonArrivals",
    "OnOffArrivals",
    "ResourceScript",
    "CapacityChange",
    "OfferedRateChange",
    "PubSubSystem",
    "PubSubHost",
]
