"""Topic-based publish-subscribe over gossip groups (the §1 motivation).

The paper motivates adaptation with exactly this application: hosts
subscribe to topics; each topic is its own broadcast group; a host's
fixed buffer budget is *split across the groups it belongs to*, so every
subscribe/unsubscribe changes the resources available to each group —
invisibly to the publishers, unless the broadcast protocol adapts.

:class:`PubSubSystem` runs any number of topic groups over one simulator
and network. A :class:`PubSubHost` owns a buffer budget; subscribing
creates a protocol instance for that topic (addressed ``(topic, host)``),
and every membership change rebalances the host's per-topic capacities,
which flows into the adaptive mechanism through
``set_buffer_capacity`` → minBuff gossip → sender rates.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.membership.full import Directory, FullMembershipView
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, Network, UniformLatency
from repro.workload.cluster import ClusterNode, make_protocol_factory
from repro.workload.senders import PeriodicArrivals, Sender

__all__ = ["PubSubSystem", "PubSubHost"]


class PubSubHost:
    """A machine with a fixed buffer budget, subscribed to some topics."""

    def __init__(self, system: "PubSubSystem", host_id: Any, buffer_budget: int) -> None:
        if buffer_budget < system.min_buffer_per_topic:
            raise ValueError("buffer_budget below the per-topic minimum")
        self.system = system
        self.host_id = host_id
        self.buffer_budget = int(buffer_budget)
        self.nodes: dict[str, ClusterNode] = {}  # topic -> node
        self.publishers: dict[str, Sender] = {}

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    @property
    def topics(self) -> list[str]:
        return list(self.nodes)

    def per_topic_capacity(self) -> int:
        """The budget share each subscribed topic currently gets."""
        n = max(1, len(self.nodes))
        return max(self.system.min_buffer_per_topic, self.buffer_budget // n)

    def subscribe(self, topic: str) -> None:
        """Join a topic's broadcast group; rebalances the budget."""
        if topic in self.nodes:
            return
        # Compute the post-subscribe share first so the new protocol is
        # *born* with the right capacity — the minBuff estimator treats
        # increases conservatively (window-delayed), so starting low and
        # resizing up would depress the group estimate for W periods.
        n_after = len(self.nodes) + 1
        capacity = max(self.system.min_buffer_per_topic, self.buffer_budget // n_after)
        self.nodes[topic] = self.system._join_group(topic, self.host_id, capacity)
        self.rebalance()

    def unsubscribe(self, topic: str) -> None:
        """Leave a topic's group; rebalances the freed budget."""
        node = self.nodes.pop(topic, None)
        if node is None:
            return
        self.publishers.pop(topic, None)
        self.system._leave_group(topic, self.host_id, node)
        self.rebalance()

    def rebalance(self) -> None:
        """Split the budget equally across current subscriptions.

        This is the dynamic-resource event of §1: the adaptive protocol
        sees it as a local capacity change and gossips the new minimum.
        """
        capacity = self.per_topic_capacity()
        now = self.system.sim.now
        for node in self.nodes.values():
            node.protocol.set_buffer_capacity(capacity, now)

    # ------------------------------------------------------------------
    # publishing
    # ------------------------------------------------------------------
    def publish_at(self, topic: str, rate: float, start: float = 0.0,
                   stop: Optional[float] = None) -> Sender:
        """Attach a periodic publisher to one of our subscribed topics."""
        if topic not in self.nodes:
            raise ValueError(f"host {self.host_id!r} is not subscribed to {topic!r}")
        if topic in self.publishers:
            raise ValueError(f"host {self.host_id!r} already publishes to {topic!r}")
        sender = Sender(
            self.system.sim,
            ("publisher", topic, self.host_id),
            self.nodes[topic].protocol,
            PeriodicArrivals(rate),
            self.system.collector_for(topic),
            start=start,
            stop=stop,
        )
        self.publishers[topic] = sender
        return sender


class _TopicGroup:
    """Bookkeeping for one topic: membership directory + metrics."""

    def __init__(self, bucket_width: float) -> None:
        self.directory = Directory()
        self.collector = MetricsCollector(bucket_width=bucket_width)

    @property
    def size(self) -> int:
        return len(self.directory)


class PubSubSystem:
    """Any number of topic groups sharing one simulator and network."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        adaptive: Optional[AdaptiveConfig] = None,
        protocol: str = "adaptive",
        seed: int = 0,
        latency: Optional[LatencyModel] = None,
        bucket_width: float = 1.0,
        min_buffer_per_topic: int = 8,
    ) -> None:
        self.system_config = system if system is not None else SystemConfig()
        self.sim = Simulator(seed=seed)
        self.network = Network(
            self.sim, latency=latency if latency is not None else UniformLatency(0.005, 0.05)
        )
        self.min_buffer_per_topic = int(min_buffer_per_topic)
        self.bucket_width = bucket_width
        self._factory = make_protocol_factory(protocol, adaptive=adaptive)
        self._groups: dict[str, _TopicGroup] = {}
        self.hosts: dict[Any, PubSubHost] = {}

    # ------------------------------------------------------------------
    # hosts and groups
    # ------------------------------------------------------------------
    def add_host(self, host_id: Any, buffer_budget: int) -> PubSubHost:
        if host_id in self.hosts:
            raise ValueError(f"host {host_id!r} already exists")
        host = PubSubHost(self, host_id, buffer_budget)
        self.hosts[host_id] = host
        return host

    def group(self, topic: str) -> _TopicGroup:
        grp = self._groups.get(topic)
        if grp is None:
            grp = _TopicGroup(self.bucket_width)
            self._groups[topic] = grp
        return grp

    def collector_for(self, topic: str) -> MetricsCollector:
        return self.group(topic).collector

    def group_size(self, topic: str) -> int:
        return self.group(topic).size

    def topics(self) -> list[str]:
        return list(self._groups)

    # ------------------------------------------------------------------
    # internals used by PubSubHost
    # ------------------------------------------------------------------
    def _join_group(self, topic: str, host_id: Any, capacity: int) -> ClusterNode:
        group = self.group(topic)
        address = (topic, host_id)
        group.directory.join(address)
        membership = FullMembershipView(group.directory, address)
        collector = group.collector

        def deliver_fn(event_id, payload, now, _addr=address):
            collector.on_deliver(_addr, event_id, now)

        def drop_fn(event_id, age, reason, now, _addr=address):
            collector.on_drop(_addr, event_id, age, reason, now)

        config = self.system_config.with_buffer(capacity)
        protocol = self._factory(
            address,
            config,
            membership,
            self.sim.rngs.stream("protocol", topic, host_id),
            deliver_fn,
            drop_fn,
            self.sim.now,
        )
        return ClusterNode(
            self.sim, self.network, address, protocol, config, collector
        )

    def _leave_group(self, topic: str, host_id: Any, node: ClusterNode) -> None:
        group = self.group(topic)
        group.directory.leave((topic, host_id))
        node.shutdown()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        self.sim.run(until=until)
