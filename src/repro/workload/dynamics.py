"""Scripted runtime resource dynamics (the Figure 9 scenario).

The paper's dynamic experiment starts a 60-node group below capacity,
then at ``t1`` shrinks the buffers of 20% of the nodes from 90 to 45
messages, and at ``t2`` grows them back — but only to 60, still below the
initial provisioning. A :class:`ResourceScript` captures exactly this
kind of schedule declaratively so experiments, tests and examples replay
it identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.gossip.protocol import NodeId
from repro.workload.cluster import SimCluster

__all__ = ["CapacityChange", "OfferedRateChange", "ResourceScript"]


@dataclass(frozen=True, slots=True)
class CapacityChange:
    """Set the buffer capacity of some nodes at an absolute time."""

    time: float
    nodes: tuple[NodeId, ...]
    capacity: int

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("time must be >= 0")
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not self.nodes:
            raise ValueError("at least one node required")


@dataclass(frozen=True, slots=True)
class OfferedRateChange:
    """Change the offered rate of some senders at an absolute time."""

    time: float
    nodes: tuple[NodeId, ...]
    rate: float

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("time must be >= 0")
        if self.rate <= 0:
            raise ValueError("rate must be > 0")
        if not self.nodes:
            raise ValueError("at least one node required")


Change = Union[CapacityChange, OfferedRateChange]


@dataclass
class ResourceScript:
    """A declarative schedule of resource changes."""

    changes: list[Change] = field(default_factory=list)

    def set_capacity(
        self, time: float, nodes: Sequence[NodeId], capacity: int
    ) -> "ResourceScript":
        self.changes.append(CapacityChange(time, tuple(nodes), capacity))
        return self

    def set_offered_rate(
        self, time: float, nodes: Sequence[NodeId], rate: float
    ) -> "ResourceScript":
        self.changes.append(OfferedRateChange(time, tuple(nodes), rate))
        return self

    def squeeze(
        self,
        time: float,
        nodes: Sequence[NodeId],
        capacity: int,
        restore_at: float | None = None,
        restore_to: int | None = None,
    ) -> "ResourceScript":
        """Shrink some nodes' buffers, optionally growing them back later.

        The Figure 9 shape in one call: ``capacity`` from ``time`` on and,
        when ``restore_at`` is given, ``restore_to`` (default: the
        original is unknown here, so it must be passed explicitly) from
        then on.
        """
        self.set_capacity(time, nodes, capacity)
        if restore_at is not None:
            if restore_at <= time:
                raise ValueError("restore_at must be after the squeeze time")
            if restore_to is None:
                raise ValueError("restore_at needs restore_to (the new capacity)")
            self.set_capacity(restore_at, nodes, restore_to)
        return self

    def spike(
        self,
        time: float,
        duration: float,
        nodes: Sequence[NodeId],
        rate: float,
        base_rate: float,
    ) -> "ResourceScript":
        """Offered-rate spike: ``rate`` during [time, time+duration), then
        back to ``base_rate`` — the flash-crowd shape."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        self.set_offered_rate(time, nodes, rate)
        self.set_offered_rate(time + duration, nodes, base_rate)
        return self

    def apply(self, cluster: SimCluster) -> None:
        """Schedule every change on the cluster's simulator."""
        for change in sorted(self.changes, key=lambda c: c.time):
            if isinstance(change, CapacityChange):
                cluster.at(change.time, _capacity_action(cluster, change))
            else:
                cluster.at(change.time, _rate_action(cluster, change))

    def __len__(self) -> int:
        return len(self.changes)


def _capacity_action(cluster: SimCluster, change: CapacityChange):
    def action() -> None:
        for node in change.nodes:
            if node in cluster.nodes:
                cluster.set_capacity(node, change.capacity)

    return action


def _rate_action(cluster: SimCluster, change: OfferedRateChange):
    def action() -> None:
        for node in change.nodes:
            sender = cluster.senders.get(node)
            if sender is not None:
                sender.set_rate(change.rate)

    return action
