"""Application senders.

A :class:`Sender` offers broadcasts to one node at a configurable arrival
pattern and pushes them through the protocol's admission interface:

* the baseline admits everything immediately (unbounded input rate —
  Figure 7(a), "lpbcast");
* token-bucket protocols may refuse; refused messages wait in a bounded
  pending queue and are retried the moment a token is due — this is the
  paper's blocking ``BROADCAST`` (Figure 3) without blocking a thread.

Arrival patterns are small strategy objects exposing
``next_interval(rng) -> float`` and a mutable ``rate`` so scenario scripts
can change the offered load at runtime.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator, TimerHandle
from repro.sim.process import SimProcess

__all__ = ["PeriodicArrivals", "PoissonArrivals", "OnOffArrivals", "Sender"]


class PeriodicArrivals:
    """Strictly periodic offers at ``rate`` msg/s."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = float(rate)

    def next_interval(self, rng) -> float:
        return 1.0 / self.rate


class PoissonArrivals:
    """Exponential inter-arrival times with mean ``1/rate``."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.rate = float(rate)

    def next_interval(self, rng) -> float:
        return rng.expovariate(self.rate)


class OnOffArrivals:
    """Bursty traffic: periodic at ``rate`` for ``on`` seconds, silent for
    ``off`` seconds, repeating. Exercises the unused-grant decay rule of
    Figure 5(c) (§3.3's inflated-allowance attack)."""

    def __init__(self, rate: float, on: float, off: float) -> None:
        if rate <= 0 or on <= 0 or off < 0:
            raise ValueError("need rate > 0, on > 0, off >= 0")
        self.rate = float(rate)
        self.on = float(on)
        self.off = float(off)
        self._phase_left = self.on
        self._in_on = True

    def next_interval(self, rng) -> float:
        # The arrival clock only runs during ON phases; OFF phases add
        # silence to the returned interval without consuming it.
        remaining = 1.0 / self.rate
        interval = 0.0
        while True:
            if self._in_on:
                if remaining <= self._phase_left:
                    self._phase_left -= remaining
                    return interval + remaining
                interval += self._phase_left
                remaining -= self._phase_left
                self._in_on = False
                self._phase_left = self.off
            else:
                interval += self._phase_left
                self._in_on = True
                self._phase_left = self.on


class Sender(SimProcess):
    """Offers broadcasts to one protocol instance.

    Parameters
    ----------
    sim, name:
        Simulation process identity (name is usually ("sender", node_id)).
    protocol:
        The node's protocol; must expose ``try_broadcast`` and
        ``time_until_admission``.
    arrivals:
        Arrival pattern strategy.
    collector:
        Metrics sink (offered/admitted/rejected accounting).
    payload_fn:
        Builds payloads; defaults to None payloads (the experiments only
        study dissemination, not content).
    start / stop:
        Active interval; offers outside it are not generated.
    queue_limit:
        Bound on messages waiting for admission. When full, the *oldest*
        queued offer is discarded and counted as rejected — the
        application equivalent of giving up on a blocked ``BROADCAST``.
    """

    def __init__(
        self,
        sim: Simulator,
        name: Any,
        protocol,
        arrivals,
        collector: MetricsCollector,
        payload_fn: Optional[Callable[[int], Any]] = None,
        start: float = 0.0,
        stop: Optional[float] = None,
        queue_limit: int = 100,
    ) -> None:
        super().__init__(sim, name)
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self.protocol = protocol
        self.arrivals = arrivals
        self.collector = collector
        self.payload_fn = payload_fn
        self.start = start
        self.stop_time = stop
        self.queue_limit = queue_limit
        self._pending: list[Any] = []
        self._offer_seq = 0
        self._retry: Optional[TimerHandle] = None
        self.offered = 0
        self.admitted = 0
        self.rejected = 0
        self.after(max(0.0, start - sim.now), self._tick)

    # ------------------------------------------------------------------
    # offer loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        if self.stop_time is not None and now >= self.stop_time:
            return
        self._offer()
        self.after(self.arrivals.next_interval(self.rng), self._tick)

    def _offer(self) -> None:
        now = self.sim.now
        self.offered += 1
        self.collector.on_offered(self.protocol.node_id, now)
        payload = self.payload_fn(self._offer_seq) if self.payload_fn else None
        self._offer_seq += 1
        self._pending.append(payload)
        if len(self._pending) > self.queue_limit:
            self._pending.pop(0)
            self.rejected += 1
            self.collector.on_rejected(self.protocol.node_id, now)
        self._drain()

    def _drain(self) -> None:
        now = self.sim.now
        while self._pending:
            event_id = self.protocol.try_broadcast(self._pending[0], now)
            if event_id is None:
                self._schedule_retry(now)
                return
            self._pending.pop(0)
            self.admitted += 1
            self.collector.on_admitted(self.protocol.node_id, event_id, now)
        if self._retry is not None:
            self._retry.cancel()
            self._retry = None

    def _schedule_retry(self, now: float) -> None:
        if self._retry is not None and not self._retry.cancelled:
            return
        delay = max(self.protocol.time_until_admission(now), 1e-6)
        self._retry = self.after(delay, self._on_retry)

    def _on_retry(self) -> None:
        self._retry = None
        self._drain()

    # ------------------------------------------------------------------
    # runtime control
    # ------------------------------------------------------------------
    def set_rate(self, rate: float) -> None:
        """Change the offered rate (takes effect from the next arrival)."""
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self.arrivals.rate = rate

    @property
    def queue_depth(self) -> int:
        return len(self._pending)
