"""The unified driver abstraction over execution backends.

Every gossip variant in this library is a sans-IO state machine
(:mod:`repro.gossip.protocol`); a *driver* supplies the missing world —
clocks, transport, membership bootstrap and metrics wiring. Two drivers
exist and both subclass :class:`Driver`:

* :class:`repro.workload.cluster.SimCluster` — the discrete-event
  simulator (virtual time, deterministic);
* :class:`repro.runtime.cluster.ThreadedCluster` — the threaded
  real-time prototype (wall time, real transports).

The base class owns everything the two used to duplicate: protocol
factory resolution, the shared membership :class:`Directory`, the
:class:`MetricsCollector` and its per-node callback binding, and the
common inspection surface (``group_size``, ``protocol_of``). Subclasses
implement the execution substrate (:meth:`Driver.run_for`) and may
override the callback binding (the threaded driver serialises metrics
behind a lock).
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional

from repro.core.aggregation import Aggregate
from repro.core.config import AdaptiveConfig
from repro.gossip.config import SystemConfig
from repro.membership.full import Directory
from repro.metrics.collector import MetricsCollector

__all__ = ["Driver", "ProtocolFactory", "make_protocol_factory"]

# factory(node_id, system, membership, rng, deliver_fn, drop_fn, now) -> protocol
ProtocolFactory = Callable[..., Any]


def make_protocol_factory(
    kind: str = "lpbcast",
    adaptive: Optional[AdaptiveConfig] = None,
    rate_limit: Optional[float] = None,
    aggregate: Optional[Aggregate] = None,
) -> ProtocolFactory:
    """Build a protocol factory for a :class:`Driver`.

    ``kind`` is one of:

    * ``"lpbcast"`` — the Figure 1 baseline (no admission control);
    * ``"static"`` — baseline + fixed-rate token bucket (Figure 3);
      requires ``rate_limit``;
    * ``"adaptive"`` — the paper's adaptive protocol (Figure 5); takes an
      optional :class:`AdaptiveConfig` and aggregation strategy;
    * ``"bimodal"`` / ``"adaptive-bimodal"`` — the pbcast-style substrate
      of :mod:`repro.gossip.bimodal`, plain and adapted (§5 generality);
    * ``"bufferer-bimodal"`` — bimodal + [10]-style recovery bufferers
      (:mod:`repro.gossip.recovery`).
    """
    if kind == "lpbcast":

        def factory(node_id, system, membership, rng, deliver_fn, drop_fn, now):
            from repro.gossip.lpbcast import LpbcastProtocol

            return LpbcastProtocol(node_id, system, membership, rng, deliver_fn, drop_fn)

    elif kind == "bimodal":

        def factory(node_id, system, membership, rng, deliver_fn, drop_fn, now):
            from repro.gossip.bimodal import BimodalProtocol

            return BimodalProtocol(node_id, system, membership, rng, deliver_fn, drop_fn)

    elif kind == "bufferer-bimodal":

        def factory(node_id, system, membership, rng, deliver_fn, drop_fn, now):
            from repro.gossip.recovery import BuffererBimodalProtocol

            return BuffererBimodalProtocol(
                node_id, system, membership, rng, deliver_fn, drop_fn
            )

    elif kind == "adaptive-bimodal":

        def factory(node_id, system, membership, rng, deliver_fn, drop_fn, now):
            from repro.core.bimodal import AdaptiveBimodalProtocol

            return AdaptiveBimodalProtocol(
                node_id,
                system,
                membership,
                rng,
                adaptive=adaptive,
                deliver_fn=deliver_fn,
                drop_fn=drop_fn,
                aggregate=aggregate,
                now=now,
            )

    elif kind == "static":
        if rate_limit is None:
            raise ValueError("static protocol needs a rate_limit")

        def factory(node_id, system, membership, rng, deliver_fn, drop_fn, now):
            from repro.core.adaptive import StaticRateLpbcastProtocol

            return StaticRateLpbcastProtocol(
                node_id,
                system,
                membership,
                rng,
                rate_limit=rate_limit,
                deliver_fn=deliver_fn,
                drop_fn=drop_fn,
                now=now,
            )

    elif kind == "adaptive":

        def factory(node_id, system, membership, rng, deliver_fn, drop_fn, now):
            from repro.core.adaptive import AdaptiveLpbcastProtocol

            return AdaptiveLpbcastProtocol(
                node_id,
                system,
                membership,
                rng,
                adaptive=adaptive,
                deliver_fn=deliver_fn,
                drop_fn=drop_fn,
                aggregate=aggregate,
                now=now,
            )

    else:
        raise ValueError(f"unknown protocol kind {kind!r}")
    return factory


class Driver(abc.ABC):
    """Common wiring of a whole gossip group, whatever executes it.

    Parameters
    ----------
    n_nodes:
        Group size (the paper uses 60).
    system:
        Gossip substrate parameters; ``None`` uses the subclass default.
    protocol:
        Either a kind string (see :func:`make_protocol_factory`) or a
        ready :data:`ProtocolFactory`.
    adaptive / rate_limit / aggregate:
        Forwarded to :func:`make_protocol_factory` when ``protocol`` is a
        kind string.
    bucket_width:
        Metrics time-bucket width in seconds; ``None`` asks the subclass
        (:meth:`_default_bucket_width`, which may depend on the resolved
        system config).
    aggregate_metrics:
        Run the collector in aggregate-only mode (per-event counts, no
        per-node receiver sets or gauges) — for very large groups.
    """

    def __init__(
        self,
        n_nodes: int,
        system: Optional[SystemConfig] = None,
        protocol: Any = "lpbcast",
        adaptive: Optional[AdaptiveConfig] = None,
        rate_limit: Optional[float] = None,
        aggregate: Optional[Aggregate] = None,
        bucket_width: Optional[float] = None,
        aggregate_metrics: bool = False,
    ) -> None:
        if n_nodes < 2:
            raise ValueError("need at least 2 nodes")
        self.system = system if system is not None else self._default_system()
        if bucket_width is None:
            bucket_width = self._default_bucket_width()
        self.metrics = MetricsCollector(
            bucket_width=bucket_width, aggregate=aggregate_metrics
        )
        self.directory = Directory(range(n_nodes))
        if callable(protocol):
            self._factory: ProtocolFactory = protocol
        else:
            self._factory = make_protocol_factory(
                protocol, adaptive=adaptive, rate_limit=rate_limit, aggregate=aggregate
            )
        self.nodes: dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # shared construction helpers
    # ------------------------------------------------------------------
    def _default_system(self) -> SystemConfig:
        """Substrate parameters used when the caller passes none."""
        return SystemConfig()

    def _default_bucket_width(self) -> float:
        """Metrics bucket width used when the caller passes none."""
        return 1.0

    def _bind_deliver(self, node_id: Any):
        """Deliver callback wired into ``node_id``'s protocol instance."""
        collector = self.metrics

        def deliver_fn(event_id, payload, now):
            collector.on_deliver(node_id, event_id, now)

        return deliver_fn

    def _bind_drop(self, node_id: Any):
        """Drop callback wired into ``node_id``'s protocol instance."""
        collector = self.metrics

        def drop_fn(event_id, age, reason, now):
            collector.on_drop(node_id, event_id, age, reason, now)

        return drop_fn

    def _build_protocol(self, node_id: Any, membership: Any, rng: Any, now: float):
        """Instantiate the configured protocol for one node."""
        return self._factory(
            node_id,
            self.system,
            membership,
            rng,
            self._bind_deliver(node_id),
            self._bind_drop(node_id),
            now,
        )

    # ------------------------------------------------------------------
    # the unified surface
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(cls, spec, **overrides) -> "Driver":
        """Instantiate a declarative :class:`~repro.scenarios.spec.ScenarioSpec`
        on this driver.

        Both concrete drivers implement it: the simulator materialises
        every schedule the spec carries; the threaded runtime applies
        what real threads can honour (workload, capacity changes) and
        reports what it skipped (see
        :func:`repro.scenarios.runner.run_scenario_threaded`).
        """
        raise NotImplementedError(f"{cls.__name__} cannot instantiate scenarios")

    @abc.abstractmethod
    def run_for(self, duration: float) -> None:
        """Advance the group by ``duration`` seconds of *its* time —
        virtual for the simulator, wall-clock for the threaded runtime.
        The simulator's is repeatable; the threaded driver's is one-shot
        (its threads cannot restart after the teardown on return)."""

    @property
    def group_size(self) -> int:
        """Number of currently alive members."""
        return len(self.directory)

    def protocol_of(self, node_id: Any):
        """The protocol instance running on ``node_id``."""
        return self.nodes[node_id].protocol
