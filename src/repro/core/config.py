"""Configuration of the adaptive mechanism (paper §3.4).

Every constant the paper discusses is a field here, with the paper's own
selection guidance quoted in the docstrings. Where the available text of
the paper garbles a numeric value, the default follows the stated guidance
and DESIGN.md records the substitution; the ablation benchmarks sweep each
of them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.gossip.config import SystemConfig

__all__ = ["AdaptiveConfig"]


@dataclass(frozen=True, slots=True)
class AdaptiveConfig:
    """Parameters of Figures 3 and 5.

    Attributes
    ----------
    age_critical:
        ``τ`` — the age the oldest events should reach before being
        dropped for the system to meet its reliability target (delivery
        to ≥95% of members). "Obtained analytically or experimentally"
        (§3.3); :func:`repro.experiments.calibrate.calibrate` measures it
        with the paper's §2.3 procedure. The paper's testbed had τ = 5.3.
    low_mark / high_mark:
        ``L`` and ``H`` — hysteresis thresholds around ``τ``. Decrease
        when ``avgAge < L``; allow increase when ``avgAge > H``. §3.4:
        both close to τ, with "a considerable difference between" them.
        ``None`` derives ``τ ∓ mark_offset``.
    mark_offset:
        Offset used to derive the marks when they are not given.
    alpha:
        ``α`` — moving-average weight for ``avgAge``/``avgTokens``.
        §3.4: "close to 1" for traffic with high inter-arrival variance.
    sample_period:
        ``s`` — seconds per minBuff sample period. §3.4: at least the
        time a value needs to reach everyone, ``τ·T``. ``None`` derives
        ``ceil(τ)·T`` from the system config at resolution time.
    window:
        ``W`` — number of recent sample periods whose minima are combined.
        §3.4: higher values ride out flapping resources at the cost of
        slower reclamation of released capacity.
    dec / inc:
        ``Δdec`` / ``Δinc`` — multiplicative rate adjustments. §3.4 keeps
        them equal ("closer to each other is more forgiving").
    rho:
        ``ρ`` — probability that a sender eligible to increase actually
        does so this round, de-synchronising group-wide ramps. §3.4: "on
        average only ρ of the nodes increase their rate".
    max_tokens:
        Token bucket depth of Figure 3.
    initial_rate:
        Sender's allowed rate at start-up (msg/s).
    min_rate / max_rate:
        Safety bounds for the allowed rate. The paper leaves the floor
        implicit; production code needs one so a sender can always probe
        the system again.
    tokens_low_frac / tokens_high_frac:
        Fractions of ``max_tokens`` interpreting ``avgTokens``: below
        ``low`` the grant counts as fully used (increase permitted),
        above ``high`` as unused (decrease forced). Figure 5(c) uses
        ``max/2`` for both; keeping them separate allows hysteresis.
    initial_avg_age:
        Starting value of ``avgAge``. ``None`` (default) starts the
        estimator empty: until somebody would have dropped something the
        system is treated as uncongested, which matches the paper's
        start-below-capacity scenarios. Set to e.g. ``age_critical`` for
        a neutral start inside the hysteresis band.
    evidence_ttl_rounds:
        Congestion-evidence time-to-live, in gossip rounds. ``avgAge``
        only receives samples while a hypothetical ``minBuff`` buffer
        would be dropping something; if the congestion disappears
        entirely (e.g. resources grew a lot), the stale average would
        otherwise freeze — possibly inside the hysteresis band, pinning
        the rate forever. After this many consecutive sample-free rounds
        the evidence expires and the system counts as uncongested again.
        The paper's pseudo-code does not need this because its scenarios
        keep buffers pressured; see DESIGN.md (substitutions).
    """

    age_critical: float = 5.3
    low_mark: Optional[float] = None
    high_mark: Optional[float] = None
    mark_offset: float = 0.5
    alpha: float = 0.9
    sample_period: Optional[float] = None
    window: int = 4
    dec: float = 0.05
    inc: float = 0.05
    rho: float = 0.2
    max_tokens: int = 5
    initial_rate: float = 10.0
    min_rate: float = 0.25
    max_rate: float = 1000.0
    tokens_low_frac: float = 0.5
    tokens_high_frac: float = 0.5
    initial_avg_age: Optional[float] = None
    evidence_ttl_rounds: int = 10

    def __post_init__(self) -> None:
        if self.evidence_ttl_rounds < 1:
            raise ValueError("evidence_ttl_rounds must be >= 1")
        if self.age_critical <= 0:
            raise ValueError("age_critical must be > 0")
        if self.mark_offset < 0:
            raise ValueError("mark_offset must be >= 0")
        if not 0.0 <= self.alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 < self.dec < 1.0:
            raise ValueError("dec must be in (0, 1)")
        if self.inc <= 0:
            raise ValueError("inc must be > 0")
        if not 0.0 < self.rho <= 1.0:
            raise ValueError("rho must be in (0, 1]")
        if self.max_tokens < 1:
            raise ValueError("max_tokens must be >= 1")
        if self.initial_rate <= 0:
            raise ValueError("initial_rate must be > 0")
        if not 0 < self.min_rate <= self.max_rate:
            raise ValueError("need 0 < min_rate <= max_rate")
        if self.initial_rate > self.max_rate or self.initial_rate < self.min_rate:
            raise ValueError("initial_rate must lie within [min_rate, max_rate]")
        if self.sample_period is not None and self.sample_period <= 0:
            raise ValueError("sample_period must be > 0")
        low, high = self.resolved_marks()
        if low >= high:
            raise ValueError("low_mark must be < high_mark")
        if not 0.0 <= self.tokens_low_frac <= 1.0 or not 0.0 <= self.tokens_high_frac <= 1.0:
            raise ValueError("token fractions must be in [0, 1]")
        if self.tokens_low_frac > self.tokens_high_frac:
            raise ValueError("tokens_low_frac must be <= tokens_high_frac")

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    def resolved_marks(self) -> tuple[float, float]:
        """The (L, H) pair actually used."""
        low = self.low_mark if self.low_mark is not None else self.age_critical - self.mark_offset
        high = (
            self.high_mark if self.high_mark is not None else self.age_critical + self.mark_offset
        )
        return low, high

    def resolved_sample_period(self, system: SystemConfig) -> float:
        """``s`` in seconds: explicit value or ``ceil(τ)·T`` (§3.4)."""
        if self.sample_period is not None:
            return self.sample_period
        return math.ceil(self.age_critical) * system.gossip_period

    def with_age_critical(self, tau: float) -> "AdaptiveConfig":
        """Copy with a newly calibrated ``τ`` (marks re-derived unless fixed)."""
        return replace(self, age_critical=tau)
