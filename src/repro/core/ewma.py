"""Exponentially weighted moving average.

The paper smooths both its congestion signal (``avgAge``) and its grant
usage signal (``avgTokens``) with a moving average weighted by ``α``
(§3.4: close to 1 for bursty traffic — slow and stable; lower for periodic
traffic — fast reaction). The update rule is the paper's:

    avg ← α · avg + (1 − α) · sample
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Ewma"]


class Ewma:
    """A single exponentially weighted moving average cell."""

    __slots__ = ("alpha", "_value", "samples")

    def __init__(self, alpha: float, initial: Optional[float] = None) -> None:
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must be in [0, 1)")
        self.alpha = alpha
        self._value = initial
        self.samples = 0

    @property
    def value(self) -> Optional[float]:
        """Current average, or None before any sample/initial value."""
        return self._value

    def update(self, sample: float) -> float:
        """Fold one sample in and return the new average."""
        self.samples += 1
        if self._value is None:
            self._value = float(sample)
        else:
            self._value = self.alpha * self._value + (1.0 - self.alpha) * sample
        return self._value

    def reset(self, initial: Optional[float] = None) -> None:
        self._value = initial
        self.samples = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Ewma(alpha={self.alpha}, value={self._value}, samples={self.samples})"
