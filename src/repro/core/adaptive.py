"""The adaptive gossip broadcast protocol — paper Figure 5, integrated.

:class:`AdaptiveLpbcastProtocol` binds the reusable
:class:`~repro.core.machinery.AdaptiveMachinery` (Figures 3 + 5) to the
Figure 1 baseline through the latter's protected hooks:

* outgoing gossip carries the ``(period, minBuff)`` header and incoming
  headers feed the minimum-buffer estimator (5a);
* after each received message — before garbage collection — the
  congestion estimator accounts the events a ``minBuff``-sized buffer
  would have dropped (5b);
* once per round the rate controller adjusts the allowed rate, which
  drives the Figure 3 token bucket admitting application broadcasts (5c).

:class:`StaticRateLpbcastProtocol` is Figure 3 alone — the baseline plus
a *fixed* token-bucket rate limit. It is the "calibrate a priori"
strawman of §1, used by the calibration experiments and ablations.

The same machinery also drives the anti-entropy substrate in
:mod:`repro.gossip.bimodal` — the paper's §5 claim that the mechanism is
substrate-agnostic.

Because both variants hook into the baseline rather than reimplement its
round/receive loops, they inherit the batched hot path too: one
``on_round_batch`` call produces the round's ``(targets, message)`` pair
with the adaptive header attached — the events embedded as the buffer's
cached columnar snapshot — and drivers multicast it without
per-destination tuples. The receive side likewise inherits the batched
duplicate folding (and ``on_receive_reference``); the Figure 5(b)
``_after_receive`` hook runs after the fold against the un-trimmed
buffer exactly as before, so the congestion signal is unchanged.

Admission interface
-------------------
``try_broadcast(payload, now)`` returns the new :class:`EventId` or
``None`` when no token is available; ``time_until_admission(now)`` tells
the caller when to retry. The paper's blocking ``BROADCAST`` is built on
top by the workload senders (queue + retry), which keeps the protocol
itself non-blocking and sans-IO.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.aggregation import Aggregate
from repro.core.config import AdaptiveConfig
from repro.core.machinery import AdaptiveMachinery
from repro.core.rate_controller import RateDecision
from repro.core.tokens import TokenBucket
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId
from repro.gossip.lpbcast import LpbcastProtocol
from repro.gossip.peer_sampling import TargetSampler
from repro.gossip.protocol import AdaptiveHeader, DeliverFn, DropFn, GossipMessage, NodeId

__all__ = ["AdaptiveLpbcastProtocol", "StaticRateLpbcastProtocol"]


class StaticRateLpbcastProtocol(LpbcastProtocol):
    """Figure 1 + Figure 3: lpbcast behind a *fixed-rate* token bucket.

    This is the naive a-priori calibration the paper argues against: it
    protects the system only if the configured rate was right for the
    resources actually present.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: SystemConfig,
        membership,
        rng,
        rate_limit: float,
        max_tokens: float = 5.0,
        deliver_fn: Optional[DeliverFn] = None,
        drop_fn: Optional[DropFn] = None,
        sampler: Optional[TargetSampler] = None,
        now: float = 0.0,
    ) -> None:
        super().__init__(node_id, config, membership, rng, deliver_fn, drop_fn, sampler)
        self.bucket = TokenBucket(rate_limit, max_tokens, now=now)

    def try_broadcast(self, payload: Any, now: float) -> Optional[EventId]:
        """Admit one broadcast if a token is available."""
        if not self.bucket.try_consume(now):
            return None
        return self.broadcast(payload, now)

    def time_until_admission(self, now: float) -> float:
        """Seconds until the fixed-rate bucket grants the next token."""
        return self.bucket.time_until(1.0, now)

    @property
    def allowed_rate(self) -> float:
        """The statically configured rate limit (msg/s)."""
        return self.bucket.rate


class AdaptiveLpbcastProtocol(LpbcastProtocol):
    """The paper's contribution: fully adaptive gossip broadcast.

    Parameters beyond the baseline's:

    adaptive:
        The :class:`AdaptiveConfig` (§3.4 knobs).
    aggregate:
        Optional :class:`~repro.core.aggregation.Aggregate` strategy for
        the resource discovery — the plain minimum by default, or one of
        the §6 κ-smallest variants.
    now:
        Clock at construction (anchors sample periods and the bucket).
    """

    def __init__(
        self,
        node_id: NodeId,
        config: SystemConfig,
        membership,
        rng,
        adaptive: Optional[AdaptiveConfig] = None,
        deliver_fn: Optional[DeliverFn] = None,
        drop_fn: Optional[DropFn] = None,
        sampler: Optional[TargetSampler] = None,
        aggregate: Optional[Aggregate] = None,
        now: float = 0.0,
    ) -> None:
        super().__init__(node_id, config, membership, rng, deliver_fn, drop_fn, sampler)
        self.adaptive_config = adaptive if adaptive is not None else AdaptiveConfig()
        self.machinery = AdaptiveMachinery(
            node_id, config, self.adaptive_config, rng, aggregate=aggregate, now=now
        )

    # ------------------------------------------------------------------
    # component access (tests, metrics, examples)
    # ------------------------------------------------------------------
    @property
    def minbuff(self):
        """The Figure 5(a) estimator (delegates to the machinery)."""
        return self.machinery.minbuff

    @property
    def congestion(self):
        """The Figure 5(b) estimator (delegates to the machinery)."""
        return self.machinery.congestion

    @property
    def controller(self):
        """The Figure 5(c) rate controller (delegates to the machinery)."""
        return self.machinery.controller

    @property
    def bucket(self):
        """The Figure 3 token bucket (delegates to the machinery)."""
        return self.machinery.bucket

    @property
    def avg_tokens(self):
        """The grant-usage EWMA (delegates to the machinery)."""
        return self.machinery.avg_tokens

    @property
    def last_decision(self) -> Optional[RateDecision]:
        """Outcome of the most recent Figure 5(c) adjustment."""
        return self.machinery.last_decision

    @property
    def allowed_rate(self) -> float:
        """The dynamically computed allowed sending rate (msg/s)."""
        return self.machinery.allowed_rate

    @property
    def min_buff_estimate(self) -> int:
        """Current windowed estimate of the group's smallest buffer."""
        return self.machinery.min_buff_estimate

    @property
    def avg_age(self) -> Optional[float]:
        """Current congestion estimate (``avgAge``), None if no evidence."""
        return self.machinery.avg_age

    # ------------------------------------------------------------------
    # admission (Figure 3 driven by Figure 5(c))
    # ------------------------------------------------------------------
    def try_broadcast(self, payload: Any, now: float) -> Optional[EventId]:
        """Admit one broadcast if the adaptive grant allows it now."""
        if not self.machinery.try_admit(now):
            return None
        return self.broadcast(payload, now)

    def time_until_admission(self, now: float) -> float:
        """Seconds until the adaptive grant admits the next broadcast."""
        return self.machinery.time_until_admission(now)

    # ------------------------------------------------------------------
    # Figure 5 hooks into the baseline
    # ------------------------------------------------------------------
    def _before_emission(self, now: float) -> None:
        # Figure 5(c): "every T ms — throttle sender".
        self.machinery.round_tick(now)

    def _emission_headers(self, now: float) -> AdaptiveHeader:
        return self.machinery.header(now)

    def _on_adaptive_header(self, header: AdaptiveHeader, now: float) -> None:
        self.machinery.on_header(header, now)

    def _after_receive(self, message: GossipMessage, now: float) -> None:
        # Figure 5(b): account what a minBuff-sized buffer would drop.
        self.machinery.observe_buffer(self.buffer, now)

    # ------------------------------------------------------------------
    # resource changes (Figure 9 scenario)
    # ------------------------------------------------------------------
    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        """Resize the buffer and inform the resource estimator (Fig 9)."""
        super().set_buffer_capacity(capacity, now)
        self.machinery.on_capacity_change(capacity, now)
