"""Bimodal multicast + the paper's adaptation (§5 generality claim).

:class:`AdaptiveBimodalProtocol` binds the shared
:class:`~repro.core.machinery.AdaptiveMachinery` to the pbcast-style
substrate of :mod:`repro.gossip.bimodal` exactly the way
:class:`~repro.core.adaptive.AdaptiveLpbcastProtocol` binds it to the
lpbcast substrate — which is the point: the mechanism never looks inside
the substrate, only at the event buffer and the piggybacked headers.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.aggregation import Aggregate
from repro.core.config import AdaptiveConfig
from repro.core.machinery import AdaptiveMachinery
from repro.gossip.bimodal import BimodalProtocol
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventId
from repro.gossip.peer_sampling import TargetSampler
from repro.gossip.protocol import AdaptiveHeader, DeliverFn, DropFn, GossipMessage, NodeId

__all__ = ["AdaptiveBimodalProtocol"]


class AdaptiveBimodalProtocol(BimodalProtocol):

    """Bimodal multicast + the paper's adaptation, via the shared machinery.

    The binding is identical to the lpbcast case — which is the point:
    the mechanism never looks inside the substrate, only at the buffer
    and the piggybacked headers.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: SystemConfig,
        membership,
        rng,
        adaptive: Optional[AdaptiveConfig] = None,
        deliver_fn: Optional[DeliverFn] = None,
        drop_fn: Optional[DropFn] = None,
        sampler: Optional[TargetSampler] = None,
        aggregate: Optional[Aggregate] = None,
        now: float = 0.0,
    ) -> None:
        super().__init__(node_id, config, membership, rng, deliver_fn, drop_fn, sampler)
        self.adaptive_config = adaptive if adaptive is not None else AdaptiveConfig()
        self.machinery = AdaptiveMachinery(
            node_id, config, self.adaptive_config, rng, aggregate=aggregate, now=now
        )

    def try_broadcast(self, payload: Any, now: float) -> Optional[EventId]:
        if not self.machinery.try_admit(now):
            return None
        return self.broadcast(payload, now)

    def time_until_admission(self, now: float) -> float:
        return self.machinery.time_until_admission(now)

    @property
    def allowed_rate(self) -> float:
        return self.machinery.allowed_rate

    @property
    def avg_age(self) -> Optional[float]:
        return self.machinery.avg_age

    @property
    def min_buff_estimate(self) -> int:
        return self.machinery.min_buff_estimate

    def _before_emission(self, now: float) -> None:
        self.machinery.round_tick(now)

    def _emission_headers(self, now: float) -> AdaptiveHeader:
        return self.machinery.header(now)

    def _on_adaptive_header(self, header: AdaptiveHeader, now: float) -> None:
        self.machinery.on_header(header, now)

    def _after_receive(self, message: GossipMessage, now: float) -> None:
        # Only data-bearing messages change the buffer contents; digests
        # and requests carry no new events to account.
        if message.kind in ("multicast", "reply", "gossip"):
            self.machinery.observe_buffer(self.buffer, now)

    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        super().set_buffer_capacity(capacity, now)
        self.machinery.on_capacity_change(capacity, now)
