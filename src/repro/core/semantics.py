"""Adaptation composed with semantic purging ([11] + Figure 5).

The paper's §5 positions semantic obsolescence (PSRM, [11]) as a
*complementary* optimisation: it changes **what** survives congestion
(the freshest event per key), while the adaptation mechanism changes
**whether** congestion happens at all. Since both are expressed as
orthogonal extensions of the same baseline, composing them is a
three-line class — and the ablation benchmark measures each alone and
both together.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.adaptive import AdaptiveLpbcastProtocol
from repro.gossip.semantics import ObsolescencePolicy, SemanticLpbcastProtocol

__all__ = ["AdaptiveSemanticLpbcastProtocol"]


class AdaptiveSemanticLpbcastProtocol(AdaptiveLpbcastProtocol, SemanticLpbcastProtocol):
    """Figure 5 adaptation + [11]-style obsolescence purging.

    The MRO stacks the two orthogonal extensions over the Figure 1
    baseline: the semantic layer intercepts buffering to purge obsolete
    events; the adaptive layer rides the protocol hooks (headers, round
    throttle, congestion observation). Neither knows about the other.
    """

    def __init__(self, *args: Any, policy: Optional[ObsolescencePolicy] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        if policy is not None:
            self.policy = policy
