"""Local congestion estimation (paper Figure 5(b)).

Knowing the group's smallest buffer ``minBuff``, a node can *simulate*
that minimal buffer against its own traffic: after folding each received
gossip message into the real buffer, the events that a buffer of size
``minBuff`` would have had to discard are identified (the oldest ones
beyond ``minBuff``) and their ages feed a moving average ``avgAge``.

``avgAge`` then estimates the age at which the most constrained member is
currently dropping events — the congestion signal of §2.3: low average
drop age ⇒ events die young ⇒ the system is overloaded.

Events already accounted are remembered (the paper's ``lost`` set) so each
contributes at most once; the real buffer keeps using its full capacity,
which is why heterogeneous groups retain better reliability than the
minimum alone would suggest (observed in the paper's Figure 9 discussion).
"""

from __future__ import annotations

from typing import Optional

from repro.core.ewma import Ewma
from repro.gossip.buffer import EventBuffer
from repro.gossip.events import EventId

__all__ = ["CongestionEstimator"]


class CongestionEstimator:
    """Moving average of the ages a ``minBuff``-sized buffer would drop."""

    def __init__(self, alpha: float, initial_age: Optional[float] = None) -> None:
        self._avg = Ewma(alpha, initial=initial_age)
        self._accounted: set[EventId] = set()
        self.events_accounted = 0

    @property
    def avg_age(self) -> Optional[float]:
        """Current ``avgAge`` (None until first sample if no initial)."""
        return self._avg.value

    @property
    def accounted_live(self) -> int:
        """Size of the ``lost`` bookkeeping set (for tests/metrics)."""
        return len(self._accounted)

    def update(self, buffer: EventBuffer, min_buff: int) -> int:
        """Account the events a ``min_buff`` buffer would drop now.

        Call after folding one received gossip message into ``buffer``
        (Figure 5(b) hooks into RECEIVE). Returns how many events were
        newly accounted.
        """
        if min_buff < 1:
            raise ValueError("min_buff must be >= 1")
        # Forget accounted events that have left the real buffer; their
        # ids can never be re-buffered (dedup) so they are dead weight.
        if self._accounted:
            self._accounted = {eid for eid in self._accounted if eid in buffer}
        excess = len(buffer) - len(self._accounted) - min_buff
        if excess <= 0:
            return 0
        victims = buffer.oldest_excluding(excess, self._accounted)
        for event_id, age in victims:
            self._avg.update(age)
            self._accounted.add(event_id)
        self.events_accounted += len(victims)
        return len(victims)

    def reset(self, initial_age: Optional[float] = None) -> None:
        self._avg.reset(initial_age)
        self._accounted.clear()
