"""Token-bucket admission control (paper Figure 3).

Figure 3 restores one token every ``1/rate`` seconds up to ``max`` and
makes ``BROADCAST`` wait for a token. Scheduling a timer per token would
flood a discrete-event simulator, so this bucket is *lazy*: the token
count is recomputed from elapsed time on access. Refill is continuous
(fractional tokens accumulate) which is equivalent to Figure 3's discrete
restore at every observation instant that matters (admission checks).

Rate changes re-anchor the accumulation so past time is always credited
at the rate that was in force when it elapsed.
"""

from __future__ import annotations

__all__ = ["TokenBucket"]


class TokenBucket:
    """Lazy token bucket with runtime-adjustable rate."""

    __slots__ = ("_rate", "_max", "_tokens", "_anchor")

    def __init__(
        self,
        rate: float,
        max_tokens: float,
        now: float = 0.0,
        initial: float | None = None,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be > 0")
        if max_tokens <= 0:
            raise ValueError("max_tokens must be > 0")
        self._rate = float(rate)
        self._max = float(max_tokens)
        self._tokens = float(max_tokens if initial is None else initial)
        if not 0 <= self._tokens <= self._max:
            raise ValueError("initial tokens must be within [0, max_tokens]")
        self._anchor = float(now)

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Tokens restored per second (the sender's allowed rate)."""
        return self._rate

    @property
    def max_tokens(self) -> float:
        return self._max

    def tokens(self, now: float) -> float:
        """Token level at time ``now`` (refills as a side effect)."""
        self._refill(now)
        return self._tokens

    def _refill(self, now: float) -> None:
        if now < self._anchor:
            # Clocks handed to us must be monotone; tolerate exact replays.
            raise ValueError(f"time went backwards: {now} < {self._anchor}")
        self._tokens = min(self._max, self._tokens + (now - self._anchor) * self._rate)
        self._anchor = now

    # ------------------------------------------------------------------
    # control
    # ------------------------------------------------------------------
    def set_rate(self, rate: float, now: float) -> None:
        """Change the refill rate, crediting elapsed time at the old rate."""
        if rate <= 0:
            raise ValueError("rate must be > 0")
        self._refill(now)
        self._rate = float(rate)

    def try_consume(self, now: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; False otherwise."""
        if amount <= 0:
            raise ValueError("amount must be > 0")
        self._refill(now)
        if self._tokens + 1e-12 >= amount:
            self._tokens = max(0.0, self._tokens - amount)
            return True
        return False

    def time_until(self, amount: float, now: float) -> float:
        """Seconds until ``amount`` tokens will be available (0 if now)."""
        self._refill(now)
        deficit = amount - self._tokens
        if deficit <= 0:
            return 0.0
        return deficit / self._rate
