"""The paper's contribution: the adaptive mechanism (Figures 3 and 5).

* :mod:`repro.core.config` — :class:`AdaptiveConfig`, every knob of §3.4.
* :mod:`repro.core.ewma` — the moving average used by Figures 5(b)/(c).
* :mod:`repro.core.tokens` — the token-bucket admission of Figure 3.
* :mod:`repro.core.minbuff` — distributed discovery of the group's
  minimum buffer size (Figure 5(a)).
* :mod:`repro.core.congestion` — local congestion estimation from the
  ages of hypothetically-dropped events (Figure 5(b)).
* :mod:`repro.core.rate_controller` — thresholded multiplicative rate
  adaptation with randomized increase (Figure 5(c)).
* :mod:`repro.core.aggregation` — windowed gossip aggregates, including
  the κ-smallest extension sketched in §6.
* :mod:`repro.core.machinery` — :class:`AdaptiveMachinery`, everything
  Figures 3+5 add, as one substrate-agnostic component.
* :mod:`repro.core.adaptive` — :class:`AdaptiveLpbcastProtocol`, the full
  integration of Figure 5 into the Figure 1 baseline, plus the statically
  rate-limited variant of Figure 3.
* :mod:`repro.core.bimodal` — the same machinery on the pbcast-style
  substrate (§5 generality).
* :mod:`repro.core.semantics` — adaptation composed with [11]-style
  semantic purging.
"""

from repro.core.adaptive import AdaptiveLpbcastProtocol, StaticRateLpbcastProtocol
from repro.core.bimodal import AdaptiveBimodalProtocol
from repro.core.semantics import AdaptiveSemanticLpbcastProtocol
from repro.core.aggregation import (
    KSmallestAggregate,
    MinAggregate,
    ThresholdedKSmallestAggregate,
)
from repro.core.config import AdaptiveConfig
from repro.core.congestion import CongestionEstimator
from repro.core.ewma import Ewma
from repro.core.machinery import AdaptiveMachinery
from repro.core.minbuff import MinBuffEstimator
from repro.core.rate_controller import RateController, RateDecision
from repro.core.tokens import TokenBucket

__all__ = [
    "AdaptiveConfig",
    "Ewma",
    "TokenBucket",
    "MinBuffEstimator",
    "CongestionEstimator",
    "RateController",
    "RateDecision",
    "MinAggregate",
    "KSmallestAggregate",
    "ThresholdedKSmallestAggregate",
    "AdaptiveLpbcastProtocol",
    "StaticRateLpbcastProtocol",
    "AdaptiveBimodalProtocol",
    "AdaptiveSemanticLpbcastProtocol",
    "AdaptiveMachinery",
]
