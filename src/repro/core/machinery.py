"""The adaptation mechanism as a reusable component.

The paper stresses that its mechanism "can be applied to all
gossip-based broadcast algorithms we know of" (§1, §5). To make that
concrete, everything Figure 5 adds to a protocol lives in one object —
:class:`AdaptiveMachinery` — with a small contract any gossip substrate
can satisfy:

* call :meth:`round_tick` once per gossip round (Figure 5(c) throttle);
* piggyback :meth:`header` on outgoing gossip and feed incoming headers
  to :meth:`on_header` (Figure 5(a) discovery);
* call :meth:`observe_buffer` after folding a message into the (not yet
  garbage-collected) event buffer (Figure 5(b) estimation);
* admit application sends through :meth:`try_admit` (Figure 3);
* report capacity changes via :meth:`on_capacity_change`.

:class:`repro.core.adaptive.AdaptiveLpbcastProtocol` (push gossip) and
:class:`repro.gossip.bimodal.AdaptiveBimodalProtocol` (multicast +
anti-entropy) are both thin bindings of this one object, which *is* the
paper's generality claim in code.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.aggregation import Aggregate
from repro.core.config import AdaptiveConfig
from repro.core.congestion import CongestionEstimator
from repro.core.ewma import Ewma
from repro.core.minbuff import MinBuffEstimator
from repro.core.rate_controller import RateController, RateDecision
from repro.core.tokens import TokenBucket
from repro.gossip.buffer import EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.protocol import AdaptiveHeader

__all__ = ["AdaptiveMachinery"]


class AdaptiveMachinery:
    """All Figure 3 + Figure 5 state for one node."""

    def __init__(
        self,
        node_id: Hashable,
        system: SystemConfig,
        adaptive: AdaptiveConfig,
        rng,
        aggregate: Optional[Aggregate] = None,
        now: float = 0.0,
    ) -> None:
        self.config = adaptive
        self.minbuff = MinBuffEstimator(
            node_id=node_id,
            local_capacity=system.buffer_capacity,
            sample_period=adaptive.resolved_sample_period(system),
            window=adaptive.window,
            aggregate=aggregate,
            now=now,
        )
        self.congestion = CongestionEstimator(
            adaptive.alpha, initial_age=adaptive.initial_avg_age
        )
        self.controller = RateController(adaptive, rng)
        self.bucket = TokenBucket(self.controller.rate, adaptive.max_tokens, now=now)
        self.avg_tokens = Ewma(adaptive.alpha, initial=float(adaptive.max_tokens))
        self.last_decision: Optional[RateDecision] = None
        # congestion-evidence freshness (see AdaptiveConfig.evidence_ttl_rounds)
        self._seen_accounted = 0
        self._quiet_rounds = 0

    # ------------------------------------------------------------------
    # Figure 5(c): once per round
    # ------------------------------------------------------------------
    def round_tick(self, now: float) -> RateDecision:
        """Sample grant usage and run one rate-adjustment step.

        ``avgAge`` only moves while the hypothetical minimal buffer would
        be dropping something; if no new evidence has arrived for
        ``evidence_ttl_rounds`` rounds the stale average is withheld from
        the controller (treated as "no congestion observed"), otherwise a
        frozen mid-band value could pin the rate forever after resources
        recover.
        """
        accounted = self.congestion.events_accounted
        if accounted != self._seen_accounted:
            self._seen_accounted = accounted
            self._quiet_rounds = 0
        else:
            self._quiet_rounds += 1
        avg_age = self.congestion.avg_age
        if self._quiet_rounds >= self.config.evidence_ttl_rounds:
            avg_age = None
        self.avg_tokens.update(self.bucket.tokens(now))
        self.last_decision = self.controller.step(avg_age, self.avg_tokens.value)
        self.bucket.set_rate(self.controller.rate, now)
        return self.last_decision

    @property
    def evidence_fresh(self) -> bool:
        """Whether the congestion evidence is recent enough to be used."""
        return self._quiet_rounds < self.config.evidence_ttl_rounds

    # ------------------------------------------------------------------
    # Figure 5(a): discovery via piggybacked headers
    # ------------------------------------------------------------------
    def header(self, now: float) -> AdaptiveHeader:
        """The ``(period, minBuff)`` pair to piggyback on outgoing gossip."""
        return self.minbuff.header(now)

    def on_header(self, header: AdaptiveHeader, now: float) -> None:
        """Fold a received adaptation header into the estimator."""
        self.minbuff.on_header(header, now)

    # ------------------------------------------------------------------
    # Figure 5(b): estimation against the un-trimmed buffer
    # ------------------------------------------------------------------
    def observe_buffer(self, buffer: EventBuffer, now: float) -> int:
        """Figure 5(b): account the un-trimmed buffer against minBuff."""
        return self.congestion.update(buffer, self.minbuff.min_buff(now))

    # ------------------------------------------------------------------
    # Figure 3: admission
    # ------------------------------------------------------------------
    def try_admit(self, now: float) -> bool:
        """Figure 3 admission: take one token if available."""
        return self.bucket.try_consume(now)

    def time_until_admission(self, now: float) -> float:
        """Seconds until :meth:`try_admit` can succeed."""
        return self.bucket.time_until(1.0, now)

    # ------------------------------------------------------------------
    # resources & observation
    # ------------------------------------------------------------------
    def on_capacity_change(self, capacity: int, now: float) -> None:
        """Report a local buffer resize to the resource estimator."""
        self.minbuff.set_local_capacity(capacity, now)

    @property
    def allowed_rate(self) -> float:
        """The currently allowed sending rate (msg/s)."""
        return self.controller.rate

    @property
    def avg_age(self) -> Optional[float]:
        """Current ``avgAge`` congestion estimate (may be stale; see TTL)."""
        return self.congestion.avg_age

    @property
    def min_buff_estimate(self) -> int:
        """Windowed estimate of the group's smallest buffer."""
        return self.minbuff.min_buff()
