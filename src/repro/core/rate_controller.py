"""Sender rate adaptation (paper Figure 5(c)).

Once per gossip round a sender compares its congestion estimate
(``avgAge``) with two thresholds around the critical age ``τ``:

* ``avgAge < L`` — events are dying young somewhere: the system is
  congested; **decrease** the allowed rate multiplicatively by ``Δdec``.
  The same applies when the sender is not using its grant (``avgTokens``
  high): an unused allowance must not accumulate, or the application
  could later burst into a stale grant and congest the system (§3.3).
* ``avgAge > H`` **and** the grant is fully used (``avgTokens`` low) —
  capacity is available; **increase** by ``Δinc``, but only with
  probability ``ρ``, so that a large sender population ramps up smoothly
  instead of stampeding from the low mark to the high mark (§3.3).

Between the marks the rate holds — the hysteresis that keeps the system
from oscillating on every minor fluctuation of ``avgAge``.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.config import AdaptiveConfig

__all__ = ["RateDecision", "RateController"]


class RateDecision(enum.Enum):
    """Outcome of one adaptation step (useful for traces and tests)."""

    DECREASE = "decrease"
    INCREASE = "increase"
    HOLD = "hold"
    SKIPPED_INCREASE = "skipped_increase"  # eligible, but lost the ρ coin-flip


class RateController:
    """Thresholded multiplicative-increase/decrease controller."""

    def __init__(self, config: AdaptiveConfig, rng, initial_rate: Optional[float] = None) -> None:
        self.config = config
        self.rng = rng
        rate = config.initial_rate if initial_rate is None else initial_rate
        self._rate = min(config.max_rate, max(config.min_rate, float(rate)))
        self.low_mark, self.high_mark = config.resolved_marks()
        self._tokens_low = config.tokens_low_frac * config.max_tokens
        self._tokens_high = config.tokens_high_frac * config.max_tokens
        self.decisions: dict[RateDecision, int] = {d: 0 for d in RateDecision}

    @property
    def rate(self) -> float:
        """The currently allowed sending rate (msg/s)."""
        return self._rate

    def step(self, avg_age: Optional[float], avg_tokens: float) -> RateDecision:
        """Run one Figure 5(c) adjustment; returns what happened.

        ``avg_age`` may be None while the congestion estimator has no
        samples yet: nothing would have been dropped anywhere, which is
        evidence of an *uncongested* system — the decrease rule cannot
        fire on age, and the increase rule treats it as above the high
        mark (a hypothetical minimal buffer with no evictions behaves
        like one dropping at infinite age).
        """
        cfg = self.config
        congested = avg_age is not None and avg_age < self.low_mark
        grant_unused = avg_tokens > self._tokens_high
        if congested or grant_unused:
            decision = RateDecision.DECREASE
            self._rate = max(cfg.min_rate, self._rate * (1.0 - cfg.dec))
        else:
            roomy = avg_age is None or avg_age > self.high_mark
            grant_used = avg_tokens < self._tokens_low
            if roomy and grant_used:
                if self.rng.random() < cfg.rho:
                    decision = RateDecision.INCREASE
                    self._rate = min(cfg.max_rate, self._rate * (1.0 + cfg.inc))
                else:
                    decision = RateDecision.SKIPPED_INCREASE
            else:
                decision = RateDecision.HOLD
        self.decisions[decision] += 1
        return decision

    def set_rate(self, rate: float) -> None:
        """Force the allowed rate (clamped); used by tests and scenarios."""
        self._rate = min(self.config.max_rate, max(self.config.min_rate, float(rate)))
