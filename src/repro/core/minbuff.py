"""Distributed discovery of the group's minimum buffer (paper Figure 5(a)).

Every node keeps, per *sample period* ``s``, a running aggregate of the
buffer capacities it has heard of, seeded with its own capacity. The pair
``(period, state)`` rides the header of every normal gossip message — no
extra traffic. On reception the local state for that period is merged
with the received one; because the aggregate is a gossip-min (or one of
the §6 variants), every node converges to the group value within ~τ
rounds, with high probability inside one period (that is how §3.4 sizes
``s ≥ τ·T``).

The value actually *used* is the aggregate over the last ``W`` periods
(:meth:`MinBuffEstimator.min_buff`), which

* bridges the start of each period, when the fresh sample has not yet
  converged and would otherwise cause rate fluctuation, and
* makes the estimate forget nodes that left or grew — resources released
  become visible after at most ``W`` periods, while resource *decreases*
  propagate within the current period (new minima win merges instantly).

Loosely synchronised period clocks are enough: a node receiving a header
from a later period jumps its own period forward (§3.1).
"""

from __future__ import annotations

import math
from typing import Hashable, Optional

from repro.core.aggregation import Aggregate, AggregateState, MinAggregate
from repro.gossip.protocol import AdaptiveHeader

__all__ = ["MinBuffEstimator"]


class MinBuffEstimator:
    """Windowed gossip aggregation of buffer capacities.

    Parameters
    ----------
    node_id:
        Identity used by id-aware aggregates (κ-smallest).
    local_capacity:
        This node's current ``|events|max``.
    sample_period:
        ``s`` in seconds.
    window:
        ``W`` — number of periods (including the current one) combined.
    aggregate:
        Merge strategy; defaults to the paper's plain minimum.
    now:
        Clock value at construction (periods are anchored at t=0).
    """

    def __init__(
        self,
        node_id: Hashable,
        local_capacity: int,
        sample_period: float,
        window: int,
        aggregate: Optional[Aggregate] = None,
        now: float = 0.0,
    ) -> None:
        if local_capacity < 1:
            raise ValueError("local_capacity must be >= 1")
        if sample_period <= 0:
            raise ValueError("sample_period must be > 0")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.node_id = node_id
        self._local_capacity = int(local_capacity)
        self._period_len = float(sample_period)
        self._window = int(window)
        self._aggregate = aggregate if aggregate is not None else MinAggregate()
        self._current = self._wall_period(now)
        self._samples: dict[int, AggregateState] = {
            self._current: self._aggregate.lift(self._local_capacity, node_id)
        }

    # ------------------------------------------------------------------
    # clock / periods
    # ------------------------------------------------------------------
    def _wall_period(self, now: float) -> int:
        return int(math.floor(now / self._period_len))

    @property
    def current_period(self) -> int:
        return self._current

    @property
    def window(self) -> int:
        return self._window

    @property
    def local_capacity(self) -> int:
        return self._local_capacity

    def advance(self, now: float) -> None:
        """Roll to the wall-clock period (monotone; never goes back)."""
        self._enter_period(max(self._wall_period(now), self._current))

    def _enter_period(self, period: int) -> None:
        if period <= self._current and period in self._samples:
            return
        self._current = max(self._current, period)
        if self._current not in self._samples:
            self._samples[self._current] = self._aggregate.lift(
                self._local_capacity, self.node_id
            )
        horizon = self._current - self._window
        for stale in [p for p in self._samples if p <= horizon]:
            del self._samples[stale]

    # ------------------------------------------------------------------
    # resource changes
    # ------------------------------------------------------------------
    def set_local_capacity(self, capacity: int, now: float) -> None:
        """Record a runtime change of the local buffer.

        Decreases take effect in the *current* period immediately (they
        merge in as new minima); increases only influence periods started
        after the change — the window then ages the old minimum out,
        which is the paper's deliberate slow-up / fast-down asymmetry.
        """
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.advance(now)
        self._local_capacity = int(capacity)
        lifted = self._aggregate.lift(capacity, self.node_id)
        self._samples[self._current] = self._aggregate.merge(
            self._samples[self._current], lifted
        )

    # ------------------------------------------------------------------
    # gossip integration
    # ------------------------------------------------------------------
    def header(self, now: float) -> AdaptiveHeader:
        """The ``(s, minBuff)`` pair to piggyback on an outgoing gossip."""
        self.advance(now)
        return AdaptiveHeader(period=self._current, min_buff=self._samples[self._current])

    def on_header(self, header: AdaptiveHeader, now: float) -> None:
        """Fold a received header in (may fast-forward our period clock)."""
        self.advance(now)
        if header.period > self._current:
            self._enter_period(header.period)
        if header.period <= self._current - self._window:
            return  # too old to matter
        existing = self._samples.get(header.period)
        if existing is None:
            # We lived through that period with our current capacity.
            existing = self._aggregate.lift(self._local_capacity, self.node_id)
        self._samples[header.period] = self._aggregate.merge(existing, header.min_buff)

    # ------------------------------------------------------------------
    # the estimate
    # ------------------------------------------------------------------
    def min_buff(self, now: Optional[float] = None) -> int:
        """The effective group capacity: aggregate over the last W periods."""
        if now is not None:
            self.advance(now)
        merged: Optional[AggregateState] = None
        horizon = self._current - self._window
        for period, state in self._samples.items():
            if period <= horizon:
                continue
            merged = state if merged is None else self._aggregate.merge(merged, state)
        assert merged is not None  # current period always has a sample
        return self._aggregate.result(merged)
