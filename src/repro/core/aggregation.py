"""Windowed gossip aggregates over buffer capacities.

The paper computes the group *minimum* buffer size by gossiping a running
minimum (§3.1, "similar to an aggregation function [6]"). Its §6 sketches
two refinements so a single under-provisioned node cannot throttle the
whole group: adapt to the **κ-th smallest** buffer, or to the κ-th
smallest **above a floor**. All three are provided behind one small
strategy interface so the :class:`repro.core.minbuff.MinBuffEstimator`
can use any of them.

An aggregate *state* is whatever rides the gossip header; it must be
mergeable commutatively/associatively/idempotently (gossip delivers
duplicates and has no ordering). The κ-smallest family therefore tracks
``(capacity, node)`` pairs — set-union merging then counts *nodes*, not
distinct values, and stays idempotent.
"""

from __future__ import annotations

from typing import Hashable, Protocol, Union

__all__ = [
    "AggregateState",
    "Aggregate",
    "MinAggregate",
    "KSmallestAggregate",
    "ThresholdedKSmallestAggregate",
]

# int for the plain minimum; sorted tuple of (capacity, node) pairs for κ-smallest
AggregateState = Union[int, tuple[tuple[int, Hashable], ...]]


class Aggregate(Protocol):
    """Strategy interface for gossip-mergeable capacity summaries."""

    def lift(self, capacity: int, node: Hashable) -> AggregateState:
        """State representing one node's local capacity."""

    def merge(self, a: AggregateState, b: AggregateState) -> AggregateState:
        """Combine two states (commutative, associative, idempotent)."""

    def result(self, state: AggregateState) -> int:
        """The effective group capacity this state implies."""


class MinAggregate:
    """The paper's §3.1 aggregate: the plain minimum."""

    def lift(self, capacity: int, node: Hashable) -> int:
        return int(capacity)

    def merge(self, a: int, b: int) -> int:
        return a if a <= b else b

    def result(self, state: int) -> int:
        return state


class KSmallestAggregate:
    """§6 extension: adapt to the κ-th smallest node's capacity.

    The state is the sorted tuple of (up to) κ smallest ``(capacity,
    node)`` pairs. A node appearing with several capacities (it was
    reconfigured mid-period) keeps only its smallest — the conservative
    reading. While fewer than κ nodes are known the *smallest* capacity is
    returned, identical to the plain minimum, because assuming a κ-th
    smallest before κ nodes reported would overestimate resources.
    """

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        self.k = k

    def lift(self, capacity: int, node: Hashable) -> tuple[tuple[int, Hashable], ...]:
        return ((int(capacity), node),)

    def merge(
        self,
        a: tuple[tuple[int, Hashable], ...],
        b: tuple[tuple[int, Hashable], ...],
    ) -> tuple[tuple[int, Hashable], ...]:
        best: dict[Hashable, int] = {}
        for capacity, node in (*a, *b):
            current = best.get(node)
            if current is None or capacity < current:
                best[node] = capacity
        pairs = sorted((capacity, node) for node, capacity in best.items())
        return tuple(pairs[: self.k])

    def result(self, state: tuple[tuple[int, Hashable], ...]) -> int:
        if not state:
            raise ValueError("empty aggregate state")
        if len(state) < self.k:
            return state[0][0]
        return state[self.k - 1][0]


class ThresholdedKSmallestAggregate(KSmallestAggregate):
    """§6 extension: κ-th smallest capacity **at or above** a floor.

    Capacities below ``floor`` are clamped up to it before aggregation —
    the group refuses to slow below the floor for pathologically small
    nodes (which will simply drop more; gossip redundancy is the safety
    margin, §3.1).
    """

    def __init__(self, k: int, floor: int) -> None:
        super().__init__(k)
        if floor < 1:
            raise ValueError("floor must be >= 1")
        self.floor = floor

    def lift(self, capacity: int, node: Hashable) -> tuple[tuple[int, Hashable], ...]:
        return ((max(int(capacity), self.floor), node),)
