"""Static configuration of the gossip substrate (paper Figure 1 parameters).

These are the parameters the paper treats as given (selected per [3],
the lpbcast paper) and does **not** adapt: fanout ``f``, gossip period
``T``, buffer bound ``|events|max``, dedup bound ``|eventIds|max`` and the
age-out limit ``k``. The adaptive mechanism's own parameters live in
:class:`repro.core.config.AdaptiveConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["SystemConfig"]


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Parameters of the baseline gossip algorithm.

    Attributes
    ----------
    fanout:
        ``f`` — number of random targets per gossip round (paper uses 4).
    gossip_period:
        ``T`` — seconds between gossip rounds. The paper's testbed used
        5 s; we default to 1 s (see DESIGN.md, substitutions) — all rates
        scale by ``1/T``, shapes are unaffected.
    buffer_capacity:
        ``|events|max`` — bound on buffered events. The evaluation sweeps
        this between 30 and 180.
    dedup_capacity:
        ``|eventIds|max`` — bound on remembered event ids. Must be large
        enough that ids outlive the circulation of their event.
    max_age:
        ``k`` — events older than this many rounds are purged
        unconditionally (they have been disseminated long enough).
    round_jitter:
        Fractional jitter applied to each node's gossip period by the
        drivers, desynchronising rounds as on a real network.
    round_phase:
        First-round offset in seconds. ``None`` (the default) draws a
        random phase per node in ``[0, T)`` — the desynchronised regime
        of a real deployment. A fixed value (with ``round_jitter=0``)
        makes execution *round-synchronous* in the style of deterministic
        gossip analyses: every node fires in the same instant, which the
        batched dispatcher turns into one heap event per cluster round.
    """

    fanout: int = 4
    gossip_period: float = 1.0
    buffer_capacity: int = 90
    dedup_capacity: int = 4000
    max_age: int = 10
    round_jitter: float = 0.05
    round_phase: Optional[float] = None

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError("fanout must be >= 1")
        if self.gossip_period <= 0:
            raise ValueError("gossip_period must be > 0")
        if self.buffer_capacity < 1:
            raise ValueError("buffer_capacity must be >= 1")
        if self.dedup_capacity < self.buffer_capacity:
            raise ValueError("dedup_capacity must be >= buffer_capacity")
        if self.max_age < 1:
            raise ValueError("max_age must be >= 1")
        if not 0 <= self.round_jitter < 0.5:
            raise ValueError("round_jitter must be in [0, 0.5)")
        if self.round_phase is not None and not 0 <= self.round_phase < self.gossip_period:
            raise ValueError("round_phase must be in [0, gossip_period)")

    def with_buffer(self, capacity: int) -> "SystemConfig":
        """Copy with a different buffer capacity (sweep helper)."""
        return replace(self, buffer_capacity=capacity)
