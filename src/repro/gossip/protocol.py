"""Wire messages and the sans-IO protocol interface.

All gossip variants in this library are *sans-IO* state machines: they
never touch clocks, sockets or the simulator. A **driver** (the discrete-
event simulator in :mod:`repro.workload.cluster_sim`, or the threaded
real-time runtime in :mod:`repro.runtime`) calls:

* :meth:`GossipProtocol.on_round` once per gossip period,
* :meth:`GossipProtocol.on_receive` for every arriving message,
* :meth:`GossipProtocol.broadcast` when the application sends,

and transmits the returned :class:`Emission` list however it likes. This
is how one protocol implementation backs both the paper's simulation and
its prototype deployment.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Hashable, NamedTuple, Optional, Sequence

from repro.gossip.events import EventId, EventSummary

__all__ = [
    "NodeId",
    "AdaptiveHeader",
    "MembershipHeader",
    "GossipMessage",
    "Emission",
    "DeliverFn",
    "DropFn",
    "GossipProtocol",
]

NodeId = Hashable


class AdaptiveHeader(NamedTuple):
    """Piggybacked adaptation state (paper Figure 5(a)).

    ``period`` is the sender's current sample period index ``s`` and
    ``min_buff`` its current minimum-buffer estimate for that period.
    """

    period: int
    min_buff: int


class MembershipHeader(NamedTuple):
    """Piggybacked membership gossip (lpbcast-style subs/unsubs)."""

    subs: tuple[NodeId, ...]
    unsubs: tuple[NodeId, ...]


class GossipMessage(NamedTuple):
    """One gossip message: event summaries plus optional headers.

    ``events`` may be shared between the ``f`` emissions of a round —
    receivers must treat it as immutable.
    """

    sender: NodeId
    events: tuple[EventSummary, ...]
    adaptive: Optional[AdaptiveHeader] = None
    membership: Optional[MembershipHeader] = None
    kind: str = "gossip"

    @property
    def n_events(self) -> int:
        return len(self.events)


class Emission(NamedTuple):
    """An outbound message produced by a protocol."""

    dest: NodeId
    message: GossipMessage


# deliver_fn(event_id, payload, now) — called exactly once per locally new event
DeliverFn = Callable[[EventId, Any, float], None]
# drop_fn(event_id, age, reason, now) — called when the real buffer drops an event
DropFn = Callable[[EventId, int, str, float], None]


class GossipProtocol(abc.ABC):
    """Interface implemented by every gossip variant."""

    node_id: NodeId

    @abc.abstractmethod
    def broadcast(self, payload: Any, now: float) -> EventId:
        """Inject an application broadcast; returns the new event's id."""

    @abc.abstractmethod
    def on_round(self, now: float) -> list[Emission]:
        """Advance one gossip round; returns the messages to transmit."""

    @abc.abstractmethod
    def on_receive(self, message: GossipMessage, now: float) -> list[Emission]:
        """Handle an arriving message; may return replies (pull variants)."""

    # Optional capabilities -------------------------------------------------
    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        """Change local buffer resources at runtime (Figure 9 scenario)."""
        raise NotImplementedError

    @property
    def buffer_capacity(self) -> int:
        raise NotImplementedError


def summaries_tuple(summaries: Sequence[EventSummary]) -> tuple[EventSummary, ...]:
    """Normalise a summary sequence for embedding in a message."""
    return tuple(summaries)
