"""Wire messages and the sans-IO protocol interface.

All gossip variants in this library are *sans-IO* state machines: they
never touch clocks, sockets or the simulator. A **driver** (see
:mod:`repro.driver` — the discrete-event :class:`~repro.workload.cluster.SimCluster`
or the threaded :class:`~repro.runtime.cluster.ThreadedCluster`) calls:

* :meth:`GossipProtocol.on_round` once per gossip period,
* :meth:`GossipProtocol.on_receive` for every arriving message,
* :meth:`GossipProtocol.broadcast` when the application sends,

and transmits the returned :class:`Emission` list however it likes. This
is how one protocol implementation backs both the paper's simulation and
its prototype deployment.

Batched variants exist for the hot path: :meth:`GossipProtocol.on_round_batch`
returns ``(destinations, message)`` pairs instead of one
:class:`Emission` per destination (a gossip round sends the *same*
message to ``f`` peers, so per-destination tuples are pure churn), and
:meth:`GossipProtocol.on_receive_batch` folds several queued messages in
one call. Both have default implementations in terms of the unbatched
methods, so protocol variants only override them for speed, never for
semantics.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Hashable, NamedTuple, Optional, Sequence, Union

from repro.gossip.events import EventColumns, EventId, EventSummary

__all__ = [
    "NodeId",
    "AdaptiveHeader",
    "MembershipHeader",
    "GossipMessage",
    "Emission",
    "EmissionBatch",
    "DeliverFn",
    "DropFn",
    "GossipProtocol",
]

NodeId = Hashable


class AdaptiveHeader(NamedTuple):
    """Piggybacked adaptation state (paper Figure 5(a)).

    ``period`` is the sender's current sample period index ``s`` and
    ``min_buff`` its current minimum-buffer estimate for that period.
    """

    period: int
    min_buff: int


class MembershipHeader(NamedTuple):
    """Piggybacked membership gossip (lpbcast-style subs/unsubs)."""

    subs: tuple[NodeId, ...]
    unsubs: tuple[NodeId, ...]


class GossipMessage(NamedTuple):
    """One gossip message: event summaries plus optional headers.

    ``events`` is either a plain tuple of :class:`EventSummary` (the row
    form, for small hand-built lists) or the columnar
    :class:`~repro.gossip.events.EventColumns` the hot paths emit — the
    two iterate and compare identically. ``events`` may be shared between
    the ``f`` emissions of a round — receivers must treat it as
    immutable.
    """

    sender: NodeId
    events: Union[tuple[EventSummary, ...], EventColumns]
    adaptive: Optional[AdaptiveHeader] = None
    membership: Optional[MembershipHeader] = None
    kind: str = "gossip"

    @property
    def n_events(self) -> int:
        return len(self.events)


class Emission(NamedTuple):
    """An outbound message produced by a protocol."""

    dest: NodeId
    message: GossipMessage


# One batched emission: a message shared by a group of destinations.
EmissionBatch = tuple[tuple[NodeId, ...], GossipMessage]


# deliver_fn(event_id, payload, now) — called exactly once per locally new event
DeliverFn = Callable[[EventId, Any, float], None]
# drop_fn(event_id, age, reason, now) — called when the real buffer drops an event
DropFn = Callable[[EventId, int, str, float], None]


class GossipProtocol(abc.ABC):
    """Interface implemented by every gossip variant."""

    node_id: NodeId

    @abc.abstractmethod
    def broadcast(self, payload: Any, now: float) -> EventId:
        """Inject an application broadcast; returns the new event's id."""

    @abc.abstractmethod
    def on_round(self, now: float) -> list[Emission]:
        """Advance one gossip round; returns the messages to transmit."""

    @abc.abstractmethod
    def on_receive(self, message: GossipMessage, now: float) -> list[Emission]:
        """Handle an arriving message; may return replies (pull variants)."""

    # Batched hot-path variants ---------------------------------------------
    def on_round_batch(self, now: float) -> list[EmissionBatch]:
        """Advance one round; returns ``(destinations, message)`` batches.

        Semantically identical to :meth:`on_round`. The default groups
        consecutive emissions that share one message object — exactly the
        structure every variant here produces (``f`` copies of a round's
        gossip, one push to everyone, one digest to ``f`` peers, ...) —
        so drivers can hand each group to a single network multicast.
        Hot protocols override this to skip :class:`Emission` churn
        entirely.
        """
        batches: list[tuple[list[NodeId], GossipMessage]] = []
        last: Optional[GossipMessage] = None
        for dest, message in self.on_round(now):
            if message is last:
                batches[-1][0].append(dest)
            else:
                batches.append(([dest], message))
                last = message
        return [(tuple(dests), message) for dests, message in batches]

    def on_receive_batch(
        self, messages: Sequence[GossipMessage], now: float
    ) -> list[Emission]:
        """Handle several queued messages arriving at one instant.

        Equivalent to calling :meth:`on_receive` per message in order;
        drivers that drain receive queues in bulk (the threaded runtime)
        use this to amortise per-call overhead.
        """
        replies: list[Emission] = []
        for message in messages:
            replies.extend(self.on_receive(message, now))
        return replies

    # Optional capabilities -------------------------------------------------
    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        """Change local buffer resources at runtime (Figure 9 scenario)."""
        raise NotImplementedError

    @property
    def buffer_capacity(self) -> int:
        raise NotImplementedError


def summaries_tuple(summaries: Sequence[EventSummary]) -> tuple[EventSummary, ...]:
    """Normalise a summary sequence for embedding in a message."""
    return tuple(summaries)
