"""Semantic obsolescence purging (related work [11], PSRM).

§5: "The usage of message semantics to discard obsolete messages in
order to ensure reliability for recent messages has also been proposed
[11]" — probabilistic semantically reliable multicast, by a subset of
this paper's own authors. The idea: many applications only care about
the *latest* event per logical key (a stock quote, a sensor reading);
once a newer event for a key exists, older ones are obsolete and may be
purged from buffers *before* anything the application still needs.

:class:`SemanticLpbcastProtocol` adds this to the Figure 1 baseline:

* an :class:`ObsolescencePolicy` extracts a key from each payload
  (``None`` = the event never becomes obsolete);
* when a newer event for a key is buffered, the older buffered event for
  that key is purged immediately (reason ``"obsolete"``) — freeing
  capacity for live information instead of waiting for age-ordering.

Orthogonal to the adaptive mechanism: purging changes *what* survives
overload, adaptation changes *whether* there is overload; they compose
(``benchmarks/test_ablation_semantics.py`` measures each alone and both).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Optional

from repro.gossip.events import EventId
from repro.gossip.lpbcast import LpbcastProtocol

__all__ = ["ObsolescencePolicy", "KeyedPayloadPolicy", "SemanticLpbcastProtocol"]

# policy(payload) -> key or None
ObsolescencePolicy = Callable[[Any], Optional[Hashable]]


def KeyedPayloadPolicy(payload: Any) -> Optional[Hashable]:
    """Default policy: payloads shaped ``(key, value)`` obsolete by key."""
    if isinstance(payload, tuple) and len(payload) == 2:
        return payload[0]
    return None


class SemanticLpbcastProtocol(LpbcastProtocol):
    """Figure 1 + [11]-style purging of semantically obsolete events.

    Additional parameters
    ---------------------
    policy:
        Maps payloads to obsolescence keys; defaults to
        :func:`KeyedPayloadPolicy`.

    Notes
    -----
    Obsolescence is decided by *local arrival order of buffering*: if an
    event for key k arrives after another is already buffered, the
    buffered one is purged. Delivery is unaffected (events are delivered
    on first receipt as usual); what changes is which events keep
    circulating — exactly [11]'s trade: reliability concentrates on the
    most recent event per key.
    """

    def __init__(self, *args: Any, policy: Optional[ObsolescencePolicy] = None,
                 **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.policy = policy if policy is not None else KeyedPayloadPolicy
        self._holder_of: dict[Hashable, EventId] = {}
        self.obsoleted = 0

    # The baseline buffers events in broadcast() and in on_receive()'s
    # fold loop; both go through buffer.stage / buffer.add. We hook the
    # two protocol-level entry points instead of the buffer so the keys
    # of *payload-bearing* insertions are tracked exactly once.
    def broadcast(self, payload: Any, now: float) -> EventId:
        event_id = super().broadcast(payload, now)
        self._note_insertion(event_id, payload, now)
        return event_id

    def on_receive(self, message, now: float):
        replies = super().on_receive(message, now)
        # Events newly buffered by this message: sweep any key conflicts.
        for event_id, _age, payload in message.events:
            if event_id in self.buffer:
                self._note_insertion(event_id, payload, now)
        return replies

    # ------------------------------------------------------------------
    def _note_insertion(self, event_id: EventId, payload: Any, now: float) -> None:
        key = self.policy(payload)
        if key is None:
            return
        previous = self._holder_of.get(key)
        if previous is not None and previous != event_id:
            removed = self.buffer.remove(previous, reason="obsolete")
            if removed is not None:
                self.obsoleted += 1
                self.stats.note_drop("obsolete")
                if self._drop_fn is not None:
                    self._drop_fn(removed.id, removed.age, "obsolete", now)
        # Track the newest holder even if the new event itself was already
        # evicted by overflow — its id still defines "newest seen".
        self._holder_of[key] = event_id
        self._bound_holders()

    def _bound_holders(self) -> None:
        # The key map must not grow without bound; forget keys whose
        # newest event no longer circulates locally (not in the buffer).
        if len(self._holder_of) <= 4 * self.config.buffer_capacity:
            return
        self._holder_of = {
            key: event_id
            for key, event_id in self._holder_of.items()
            if event_id in self.buffer
        }
