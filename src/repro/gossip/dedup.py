"""Bounded duplicate-detection store (the paper's ``eventIds``).

Figure 1 keeps a set of already-seen event identifiers so an event is
delivered at most once, and bounds it by evicting the *oldest* identifiers
first. We implement it as an insertion-ordered dict used as a FIFO set.

If an identifier is evicted while copies of the event still circulate, the
event can be re-delivered — a real lpbcast artefact. The store exposes its
eviction count so experiments can confirm it was sized adequately
(``|eventIds|max`` must comfortably exceed the number of ids seen during
an event's lifetime); duplicate deliveries themselves are detected by the
metrics collector, which tracks per-event receiver sets.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.gossip.events import EventId

__all__ = ["DedupStore"]


class DedupStore:
    """FIFO-bounded set of event identifiers."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("dedup capacity must be >= 1")
        self._capacity = int(capacity)
        self._ids: dict[EventId, None] = {}
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def backing(self) -> dict:
        """The insertion-ordered backing dict.

        The batched receive paths split a message's ids into new vs
        duplicate with set operations against this dict and bulk-insert
        the new ids directly (``backing[event_id] = None``), then call
        :meth:`trim` once — one capacity pass per message instead of one
        per event. Callers must only *append* ids through it; ordering is
        the eviction order.
        """
        return self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, event_id: EventId) -> bool:
        return event_id in self._ids

    def __iter__(self) -> Iterator[EventId]:
        return iter(self._ids)

    def add(self, event_id: EventId) -> bool:
        """Record an id. Returns True if it was new (not currently stored)."""
        if event_id in self._ids:
            return False
        self._ids[event_id] = None
        if len(self._ids) > self._capacity:
            self._evict_oldest()
        return True

    def trim(self) -> int:
        """Evict oldest ids until within capacity; returns evicted count.

        Complements bulk insertion through :attr:`backing`: the final
        state (last ``capacity`` ids in insertion order) is identical to
        per-:meth:`add` eviction, paid once per batch.
        """
        ids = self._ids
        excess = len(ids) - self._capacity
        if excess <= 0:
            return 0
        for event_id in list(itertools.islice(iter(ids), excess)):
            del ids[event_id]
        self.evictions += excess
        return excess

    def resize(self, capacity: int) -> None:
        """Change capacity; evicts oldest ids if shrinking."""
        if capacity < 1:
            raise ValueError("dedup capacity must be >= 1")
        self._capacity = int(capacity)
        while len(self._ids) > self._capacity:
            self._evict_oldest()

    def _evict_oldest(self) -> None:
        oldest = next(iter(self._ids))
        del self._ids[oldest]
        self.evictions += 1
