"""Gossip target selection strategies.

Figure 1 simply picks ``f`` uniformly random members per round. Real
deployments (and the lpbcast prototype) often refine this slightly; the
strategies here are all uniform-safe and interchangeable:

* :class:`UniformSampler` — the paper's choice.
* :class:`AvoidRepeatSampler` — avoids re-picking the previous round's
  targets when the view is large enough, reducing wasted duplicates.

Both draw from any membership view exposing ``sample_targets(count, rng)``.
"""

from __future__ import annotations

from typing import Protocol

from repro.gossip.protocol import NodeId

__all__ = ["TargetSampler", "UniformSampler", "AvoidRepeatSampler"]


class TargetSampler(Protocol):
    def select(self, membership, fanout: int, rng) -> list[NodeId]: ...


class UniformSampler:
    """Uniform random targets, the behaviour in the paper's Figure 1."""

    def select(self, membership, fanout: int, rng) -> list[NodeId]:
        return membership.sample_targets(fanout, rng)


class AvoidRepeatSampler:
    """Uniform targets, biased away from the immediately previous round.

    When the membership view holds more than ``fanout`` extra members,
    targets picked last round are excluded; otherwise it degrades to
    uniform sampling so small views still get full fanout.
    """

    def __init__(self) -> None:
        self._last: frozenset[NodeId] = frozenset()

    def select(self, membership, fanout: int, rng) -> list[NodeId]:
        candidates = membership.sample_targets(fanout + len(self._last), rng)
        fresh = [c for c in candidates if c not in self._last]
        if len(fresh) >= fanout:
            picked = fresh[:fanout]
        else:
            picked = candidates[:fanout]
        self._last = frozenset(picked)
        return picked
