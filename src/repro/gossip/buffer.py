"""The bounded, age-ordered event buffer (the paper's ``events`` store).

Semantics reproduced from the paper's Figure 1:

* every gossip round, **all** stored events age by one;
* events older than the age-out limit ``k`` are dropped;
* when the buffer exceeds its capacity, the *oldest* events (highest age,
  ties broken by arrival order) are discarded first — age-based purging;
* when a duplicate arrives with a higher age, the stored age is raised to
  the maximum (ages synchronise across copies).

Performance note — the "anchor" representation
----------------------------------------------
The naive implementation ages every buffered event every round (O(buffer)
per round per node) and scans for the oldest event on every overflow
(O(buffer) per drop). Both are on the simulator's hottest path. We instead
store, per event, the *anchor* ``round - age``: ageing everything is then a
single increment of the buffer's round counter, and "oldest first" is a
min-heap on ``(anchor, arrival_seq)``. Raising an age just lowers the
anchor and lazily re-pushes a heap entry; stale heap entries are discarded
on pop by validating against the live anchor, and the heap is rebuilt
automatically when stale strands outnumber live entries ~4:1 (heavy
duplicate age-raising would otherwise grow it without bound). The
observable behaviour is
identical to Figure 1 (the unit tests check this against a brute-force
model).

Performance note — the cached columnar snapshot
-----------------------------------------------
Every round every node re-gossips its whole buffer, but between rounds
the buffer is usually *unchanged* — anchors do not move on
:meth:`advance_round`, only on add/remove/``sync_age``. The buffer
therefore keeps its wire columns ``(ids, anchors, payloads)`` cached
under a mutation version counter: :meth:`snapshot_columns` is a pure
cache hit when nothing arrived between rounds, an O(new) append patch
when only new events were staged, and a full rebuild only after a
removal or an age raise. Batched duplicate folding goes through
:meth:`sync_ages`, which walks the entry dict directly and defers heap
maintenance to one :meth:`compact` pass when enough anchors moved.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Container, Iterable, Iterator, NamedTuple, Optional

from repro.gossip.events import EventColumns, EventId, EventSummary

__all__ = ["DroppedEvent", "EventBuffer"]


class DroppedEvent(NamedTuple):
    """An event removed from the buffer, with its age at drop time."""

    id: EventId
    age: int
    payload: Any
    reason: str  # "overflow" | "age_out" | "resize"


class _Entry:
    __slots__ = ("id", "anchor", "arrival", "payload")

    def __init__(self, id: EventId, anchor: int, arrival: int, payload: Any) -> None:
        self.id = id
        self.anchor = anchor
        self.arrival = arrival
        self.payload = payload


class EventBuffer:
    """Bounded event store with age-based purging.

    Parameters
    ----------
    capacity:
        Maximum number of events retained (``|events|max`` in the paper).
        May be changed at runtime with :meth:`resize` — the Figure 9
        experiment does exactly that.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self._capacity = int(capacity)
        self._round = 0
        self._entries: dict[EventId, _Entry] = {}
        self._heap: list[tuple[int, int, EventId]] = []
        self._arrivals = itertools.count()
        # snapshot cache: wire columns valid at mutation version _snap_version
        self._version = 0
        self._snap_version = -1
        self._snap_ids: tuple[EventId, ...] = ()
        self._snap_anchors: tuple[int, ...] = ()
        self._snap_payloads: tuple[Any, ...] = ()
        self._snap_id_set: frozenset = frozenset()
        # Entries staged since the cache was built (an O(new) append patch
        # on the next snapshot); None after any non-append mutation —
        # removal or anchor change — meaning a full rebuild is due.
        self._snap_pending: Optional[list[_Entry]] = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def round(self) -> int:
        """Number of times :meth:`advance_round` has been called."""
        return self._round

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, event_id: EventId) -> bool:
        return event_id in self._entries

    def age_of(self, event_id: EventId) -> int:
        """Current age of a stored event (KeyError if absent)."""
        return self._round - self._entries[event_id].anchor

    def payload_of(self, event_id: EventId) -> Any:
        return self._entries[event_id].payload

    def ids(self) -> Iterator[EventId]:
        return iter(self._entries)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def advance_round(self) -> None:
        """Age every stored event by one round. O(1).

        Anchors are round-relative, so this neither moves an anchor nor
        invalidates the snapshot cache — the next round's gossip reuses
        the cached columns with a higher base round.
        """
        self._round += 1

    def add(self, event_id: EventId, age: int = 0, payload: Any = None) -> list[DroppedEvent]:
        """Insert a new event with the given age; evict overflow.

        Returns the events dropped to make room (possibly including the
        event just inserted, if it is itself the oldest). Duplicate ids
        raise ``ValueError`` — callers dedup first (Figure 1 checks
        ``eventIds`` before buffering).
        """
        self.stage(event_id, age, payload)
        return self.evict_overflow()

    def stage(self, event_id: EventId, age: int = 0, payload: Any = None) -> None:
        """Insert a new event *without* evicting overflow.

        Figure 1 folds a whole gossip message into ``events`` first and
        garbage-collects afterwards; Figure 5(b)'s congestion accounting
        runs in between, against the un-trimmed buffer. Receive paths
        therefore ``stage`` every event, run the estimator hook, then
        call :meth:`evict_overflow`.
        """
        if event_id in self._entries:
            raise ValueError(f"event {event_id!r} already buffered")
        if age < 0:
            raise ValueError("age must be >= 0")
        anchor = self._round - age
        entry = _Entry(event_id, anchor, next(self._arrivals), payload)
        self._entries[event_id] = entry
        heapq.heappush(self._heap, (anchor, entry.arrival, event_id))
        self._version += 1
        if self._snap_pending is not None:  # an append: the cache patches
            self._snap_pending.append(entry)

    def evict_overflow(self) -> list[DroppedEvent]:
        """Trim to capacity, oldest first; returns what was dropped."""
        return self._evict_overflow("overflow")

    def sync_age(self, event_id: EventId, age: int) -> bool:
        """Raise the stored age to ``max(current, age)``.

        Returns True if the age changed. Unknown ids are ignored (the
        duplicate may have already been purged locally) and return False.
        Each raise lazily re-pushes a heap entry and strands the old one;
        under heavy duplicate traffic the strands are bounded by an
        automatic :meth:`compact` once the heap outgrows the live set
        (see the module's performance note).
        """
        entry = self._entries.get(event_id)
        if entry is None:
            return False
        anchor = self._round - age
        if anchor < entry.anchor:
            entry.anchor = anchor
            self._version += 1
            self._snap_pending = None
            heap = self._heap
            heapq.heappush(heap, (anchor, entry.arrival, event_id))
            if len(heap) > 64 and len(heap) > 4 * len(self._entries):
                self.compact()
            return True
        return False

    def sync_ages(self, ids: Iterable[EventId], ages: Iterable[int]) -> int:
        """Raise stored ages to ``max(current, age)`` for many events.

        The batched counterpart of calling :meth:`sync_age` per id —
        one direct walk over the entry dict, with heap maintenance
        deferred to a single :meth:`compact` pass when enough anchors
        moved to make per-raise pushes a net loss. Unknown ids are
        ignored. Returns the number of ages actually raised.
        """
        round_ = self._round
        raised: Optional[list[tuple[int, int, EventId]]] = None
        # map() dispatches the dict lookups at C speed; the Python body
        # only runs the compare (and, rarely, the raise).
        for entry, age in zip(map(self._entries.get, ids), ages):
            if entry is None:
                continue
            anchor = round_ - age
            if anchor < entry.anchor:
                entry.anchor = anchor
                if raised is None:
                    raised = [(anchor, entry.arrival, entry.id)]
                else:
                    raised.append((anchor, entry.arrival, entry.id))
        if raised is None:
            return 0
        entries = self._entries
        self._version += 1
        self._snap_pending = None
        heap = self._heap
        if 4 * len(raised) >= len(entries):
            # Rebuilding once beats pushing (and later skipping) this
            # many strands — the heap comes out stale-free as a bonus.
            self.compact()
        else:
            for item in raised:
                heapq.heappush(heap, item)
            if len(heap) > 64 and len(heap) > 4 * len(entries):
                self.compact()
        return len(raised)

    def drop_aged_out(self, max_age: int) -> list[DroppedEvent]:
        """Remove every event with age strictly greater than ``max_age``."""
        cutoff = self._round - max_age  # drop anchors strictly below cutoff
        heap = self._heap
        if not heap or heap[0][0] >= cutoff:
            # The heap minimum bounds every live anchor (stale records
            # only ever carry anchors of entries that were since lowered
            # or removed), so nothing can be old enough to drop.
            return []
        dropped: list[DroppedEvent] = []
        while self._heap:
            anchor, arrival, event_id = self._heap[0]
            entry = self._entries.get(event_id)
            if entry is None or entry.anchor != anchor or entry.arrival != arrival:
                heapq.heappop(self._heap)  # stale
                continue
            if anchor >= cutoff:
                break
            heapq.heappop(self._heap)
            del self._entries[event_id]
            self._version += 1
            self._snap_pending = None
            dropped.append(DroppedEvent(event_id, self._round - anchor, entry.payload, "age_out"))
        return dropped

    def remove(self, event_id: EventId, reason: str = "obsolete") -> Optional[DroppedEvent]:
        """Remove a specific event (semantic purging, [11]-style).

        Returns the removed record, or None if the id is not buffered.
        The stale heap entry is discarded lazily on a later pop.
        """
        entry = self._entries.pop(event_id, None)
        if entry is None:
            return None
        self._version += 1
        self._snap_pending = None
        return DroppedEvent(event_id, self._round - entry.anchor, entry.payload, reason)

    def resize(self, capacity: int) -> list[DroppedEvent]:
        """Change the capacity at runtime; evicts oldest events if shrinking."""
        if capacity < 1:
            raise ValueError("buffer capacity must be >= 1")
        self._capacity = int(capacity)
        return self._evict_overflow("resize")

    def _evict_overflow(self, reason: str) -> list[DroppedEvent]:
        dropped: list[DroppedEvent] = []
        while len(self._entries) > self._capacity:
            event_id, entry = self._pop_oldest()
            dropped.append(
                DroppedEvent(event_id, self._round - entry.anchor, entry.payload, reason)
            )
        return dropped

    def _pop_oldest(self) -> tuple[EventId, _Entry]:
        while True:
            anchor, arrival, event_id = heapq.heappop(self._heap)
            entry = self._entries.get(event_id)
            if entry is None or entry.anchor != anchor or entry.arrival != arrival:
                continue  # stale heap record
            del self._entries[event_id]
            self._version += 1
            self._snap_pending = None
            return event_id, entry

    # ------------------------------------------------------------------
    # read paths used by the protocols
    # ------------------------------------------------------------------
    def snapshot_columns(self, refresh: bool = False) -> EventColumns:
        """Wire columns of all stored events, anchored at the current round.

        The heavy part — the ``(ids, anchors, payloads)`` column tuples —
        is cached under the mutation version counter: unchanged buffer →
        cache hit; only appends since the last build → incremental patch;
        anything else → full rebuild. ``refresh=True`` forces the rebuild
        (benchmark/measurement hook). The returned columns may be shared
        between the ``f`` copies of one round's gossip message; callers
        must not mutate them.
        """
        if refresh or self._snap_version != self._version:
            pending = self._snap_pending
            if refresh or not pending:
                # Full rebuild (first snapshot, or a removal/age raise
                # happened since the last one).
                entries = list(self._entries.values())
                self._snap_ids = tuple([e.id for e in entries])
                self._snap_anchors = tuple([e.anchor for e in entries])
                self._snap_payloads = tuple([e.payload for e in entries])
                self._snap_id_set = frozenset(self._snap_ids)
            else:
                # Append-only delta: the staged entries are exactly the
                # (insertion-ordered) dict's tail — an O(new) patch.
                fresh_ids = tuple([e.id for e in pending])
                self._snap_ids += fresh_ids
                self._snap_anchors += tuple([e.anchor for e in pending])
                self._snap_payloads += tuple([e.payload for e in pending])
                self._snap_id_set = self._snap_id_set.union(fresh_ids)
            self._snap_pending = []
            self._snap_version = self._version
        return EventColumns(
            self._snap_ids,
            self._round,
            self._snap_anchors,
            self._snap_payloads,
            id_set=self._snap_id_set,
        )

    def snapshot(self) -> list[EventSummary]:
        """Row-form summaries of all stored events with their current ages.

        Compatibility view over :meth:`snapshot_columns`; hot paths embed
        the columns directly. The caller must not mutate the result.
        """
        columns = self.snapshot_columns()
        return list(map(EventSummary, columns.ids, columns.ages, columns.payloads))

    def oldest_excluding(
        self, count: int, exclude: Optional[Container[EventId]] = None
    ) -> list[tuple[EventId, int]]:
        """The ``count`` oldest stored events not in ``exclude``.

        Used by the congestion estimator (Figure 5(b)) to find the events
        a hypothetical buffer of size ``minBuff`` would have dropped.
        Returns ``(id, age)`` pairs, oldest first. Does not remove anything.
        """
        if count <= 0:
            return []
        if exclude is None:
            exclude = ()
        candidates = (
            (e.anchor, e.arrival, eid)
            for eid, e in self._entries.items()
            if eid not in exclude
        )
        picked = heapq.nsmallest(count, candidates)
        round_ = self._round
        return [(eid, round_ - anchor) for anchor, _arrival, eid in picked]

    def compact(self) -> None:
        """Rebuild the heap, discarding stale entries (housekeeping)."""
        self._heap = [(e.anchor, e.arrival, eid) for eid, e in self._entries.items()]
        heapq.heapify(self._heap)
