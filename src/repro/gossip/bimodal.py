"""A bimodal-multicast-style gossip substrate (pbcast, Birman et al.).

The paper's §5 argues its adaptation mechanism applies to *any*
gossip-based broadcast, naming Bimodal Multicast [1] first. This module
makes that concrete with a second, structurally different substrate:

* **optimistic phase** — a new broadcast is pushed once to every known
  member (the stand-in for pbcast's unreliable IP multicast);
* **anti-entropy phase** — every round, each node sends a *digest* of
  its buffer (ids + ages, no payloads) to ``f`` random members;
  receivers *request* what they miss and holders *reply* with the
  payloads (pull-based repair, pbcast's gossip phase).

Buffering, ageing, age-out and age-ordered overflow are identical to the
lpbcast substrate (the paper's buffering model is substrate-independent),
so the same congestion signal exists and the same
:class:`~repro.core.machinery.AdaptiveMachinery` drops in unchanged —
see :class:`repro.core.bimodal.AdaptiveBimodalProtocol` for the (tiny)
integration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.gossip.buffer import DroppedEvent, EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.dedup import DedupStore
from repro.gossip.events import EventColumns, EventId, EventSummary
from repro.gossip.lpbcast import ProtocolStats
from repro.gossip.peer_sampling import TargetSampler, UniformSampler
from repro.gossip.protocol import (
    AdaptiveHeader,
    DeliverFn,
    DropFn,
    Emission,
    GossipMessage,
    GossipProtocol,
    NodeId,
)

__all__ = ["BimodalStats", "BimodalProtocol"]


@dataclass(slots=True)
class BimodalStats(ProtocolStats):
    """Baseline counters plus the anti-entropy specifics."""

    digests_sent: int = 0
    requests_sent: int = 0
    events_requested: int = 0
    events_repaired: int = 0


class BimodalProtocol(GossipProtocol):
    """Multicast + digest/pull anti-entropy, sans-IO.

    Constructor signature matches :class:`LpbcastProtocol` so the same
    drivers and factories work.
    """

    may_reply = True  # digests pull requests, requests pull replies

    def __init__(
        self,
        node_id: NodeId,
        config: SystemConfig,
        membership,
        rng,
        deliver_fn: Optional[DeliverFn] = None,
        drop_fn: Optional[DropFn] = None,
        sampler: Optional[TargetSampler] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.membership = membership
        self.rng = rng
        self.buffer = EventBuffer(config.buffer_capacity)
        self.dedup = DedupStore(config.dedup_capacity)
        self._known_ids = self.dedup.backing  # stable dict, bound once
        self._known_keys = self._known_ids.keys()  # live view, set-typed
        self._membership_receive = (
            None if getattr(membership, "gossip_passive", False)
            else membership.on_gossip_receive
        )
        self.stats = BimodalStats()
        self._deliver_fn = deliver_fn
        self._drop_fn = drop_fn
        self._sampler = sampler if sampler is not None else UniformSampler()
        self._next_seq = 0
        self._fresh: list[EventId] = []  # awaiting the optimistic push

    # ------------------------------------------------------------------
    # application side
    # ------------------------------------------------------------------
    def broadcast(self, payload: Any, now: float) -> EventId:
        event_id = EventId(self.node_id, self._next_seq)
        self._next_seq += 1
        self.dedup.add(event_id)
        self.stats.broadcasts += 1
        self._deliver(event_id, payload, now)
        self._note_drops(self.buffer.add(event_id, age=0, payload=payload), now)
        self._fresh.append(event_id)
        return event_id

    def try_broadcast(self, payload: Any, now: float) -> Optional[EventId]:
        return self.broadcast(payload, now)

    def time_until_admission(self, now: float) -> float:
        return 0.0

    @property
    def allowed_rate(self) -> Optional[float]:
        return None

    # ------------------------------------------------------------------
    # rounds: optimistic push + digest gossip
    # ------------------------------------------------------------------
    def on_round(self, now: float) -> list[Emission]:
        self.stats.rounds += 1
        self.buffer.advance_round()
        self._note_drops(self.buffer.drop_aged_out(self.config.max_age), now)
        self._before_emission(now)

        header = self._emission_headers(now)
        membership_header = self.membership.on_gossip_emit(self.rng)
        emissions: list[Emission] = []

        fresh = [eid for eid in self._fresh if eid in self.buffer]
        self._fresh.clear()
        if fresh:
            events = tuple(
                EventSummary(eid, self.buffer.age_of(eid), self.buffer.payload_of(eid))
                for eid in fresh
            )
            push = GossipMessage(
                sender=self.node_id,
                events=events,
                adaptive=header,
                kind="multicast",
            )
            everyone = self.membership.sample_targets(2**31, self.rng)
            emissions.extend(Emission(peer, push) for peer in everyone)

        targets = self._sampler.select(self.membership, self.config.fanout, self.rng)
        if targets:
            # ids + anchors from the cached columnar snapshot, payloads
            # stripped — the digest never re-copies the buffer contents.
            digest = GossipMessage(
                sender=self.node_id,
                events=self.buffer.snapshot_columns().without_payloads(),
                adaptive=header,
                membership=membership_header,
                kind="digest",
            )
            self.stats.digests_sent += len(targets)
            emissions.extend(Emission(t, digest) for t in targets)
        self.stats.messages_sent += len(emissions)
        return emissions

    # ------------------------------------------------------------------
    # receive: fold data, answer digests, serve requests
    # ------------------------------------------------------------------
    def on_receive(self, message: GossipMessage, now: float) -> list[Emission]:
        self.stats.messages_received += 1
        membership_receive = self._membership_receive
        if membership_receive is not None:
            membership_receive(message.membership, message.sender, self.rng)
        if message.adaptive is not None:
            self._on_adaptive_header(message.adaptive, now)

        if message.kind in ("multicast", "reply", "gossip"):
            self._fold_events(message, now)
            return []
        if message.kind == "digest":
            return self._answer_digest(message, now)
        if message.kind == "request":
            return self._serve_request(message)
        raise ValueError(f"unknown message kind {message.kind!r}")

    def _fold_events(self, message: GossipMessage, now: float) -> None:
        buffer = self.buffer
        events = message.events
        if type(events) is EventColumns and self._known_keys >= events.id_set:
            # Steady state: all duplicates — one batched age fold.
            self.stats.duplicates_seen += len(events.ids)
            buffer.sync_ages(events.ids, events.ages)
        else:
            repaired = message.kind == "reply"
            for event_id, age, payload in events:
                if not self.dedup.add(event_id):
                    self.stats.duplicates_seen += 1
                    buffer.sync_age(event_id, age)
                    continue
                if repaired:
                    self.stats.events_repaired += 1
                self._deliver(event_id, payload, now)
                buffer.stage(event_id, age=age, payload=payload)
        self._after_receive(message, now)
        self._note_drops(buffer.evict_overflow(), now)

    def _answer_digest(self, message: GossipMessage, now: float) -> list[Emission]:
        events = message.events
        if type(events) is EventColumns and self._known_keys >= events.id_set:
            # Nothing missing: fold the whole digest's ages in one pass.
            self.buffer.sync_ages(events.ids, events.ages)
            return []
        missing = []
        known = self._known_ids
        sync_age = self.buffer.sync_age
        for event_id, age, _none in events:
            if event_id in known:
                sync_age(event_id, age)
            else:
                missing.append(EventSummary(event_id, 0, None))
        if not missing:
            return []
        self.stats.requests_sent += 1
        self.stats.events_requested += len(missing)
        request = GossipMessage(
            sender=self.node_id, events=tuple(missing), kind="request"
        )
        return [Emission(message.sender, request)]

    def _serve_request(self, message: GossipMessage) -> list[Emission]:
        available = tuple(
            EventSummary(eid, self.buffer.age_of(eid), self.buffer.payload_of(eid))
            for eid, _age, _p in message.events
            if eid in self.buffer
        )
        if not available:
            return []
        reply = GossipMessage(sender=self.node_id, events=available, kind="reply")
        return [Emission(message.sender, reply)]

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        self._note_drops(self.buffer.resize(capacity), now)

    @property
    def buffer_capacity(self) -> int:
        return self.buffer.capacity

    # ------------------------------------------------------------------
    # adaptation hooks (same contract as the lpbcast substrate)
    # ------------------------------------------------------------------
    def _before_emission(self, now: float) -> None:
        pass

    def _emission_headers(self, now: float) -> Optional[AdaptiveHeader]:
        return None

    def _on_adaptive_header(self, header: AdaptiveHeader, now: float) -> None:
        pass

    def _after_receive(self, message: GossipMessage, now: float) -> None:
        pass

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _deliver(self, event_id: EventId, payload: Any, now: float) -> None:
        self.stats.events_delivered += 1
        if self._deliver_fn is not None:
            self._deliver_fn(event_id, payload, now)

    def _note_drops(self, drops: list[DroppedEvent], now: float) -> None:
        for d in drops:
            self.stats.note_drop(d.reason)
            if self._drop_fn is not None:
                self._drop_fn(d.id, d.age, d.reason, now)
