"""Gossip broadcast substrate.

This package implements the baseline *lpbcast*-style gossip broadcast that
the paper builds on (its Figure 1), plus the data structures it needs:

* :mod:`repro.gossip.events` — event identities and wire summaries.
* :mod:`repro.gossip.buffer` — the bounded, age-ordered event buffer.
* :mod:`repro.gossip.dedup` — the bounded duplicate-detection store
  (the paper's ``eventIds``).
* :mod:`repro.gossip.protocol` — wire message types and the sans-IO
  protocol interface shared by all variants.
* :mod:`repro.gossip.peer_sampling` — gossip target selection over full or
  partial membership views.
* :mod:`repro.gossip.lpbcast` — the baseline protocol (paper Figure 1).
* :mod:`repro.gossip.bimodal` — a bimodal-multicast-style variant used to
  demonstrate that the adaptation mechanism is substrate-agnostic (§5).
* :mod:`repro.gossip.recovery` — [10]-style rendezvous-hashed long-term
  bufferers with gap-triggered pull repair (§5's recovery contrast).
* :mod:`repro.gossip.semantics` — [11]-style purging of semantically
  obsolete events (§5's complementary optimisation).
* :mod:`repro.gossip.config` — static protocol parameters.
"""

from repro.gossip.bimodal import BimodalProtocol, BimodalStats
from repro.gossip.recovery import BuffererBimodalProtocol, rendezvous_bufferers
from repro.gossip.semantics import KeyedPayloadPolicy, SemanticLpbcastProtocol
from repro.gossip.buffer import DroppedEvent, EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.dedup import DedupStore
from repro.gossip.events import EventId, EventSummary, make_event_id
from repro.gossip.lpbcast import LpbcastProtocol
from repro.gossip.protocol import (
    AdaptiveHeader,
    Emission,
    GossipMessage,
    GossipProtocol,
    MembershipHeader,
)

__all__ = [
    "EventId",
    "EventSummary",
    "make_event_id",
    "EventBuffer",
    "DroppedEvent",
    "DedupStore",
    "SystemConfig",
    "GossipMessage",
    "AdaptiveHeader",
    "MembershipHeader",
    "Emission",
    "GossipProtocol",
    "LpbcastProtocol",
    "BimodalProtocol",
    "BimodalStats",
    "BuffererBimodalProtocol",
    "rendezvous_bufferers",
    "SemanticLpbcastProtocol",
    "KeyedPayloadPolicy",
]
