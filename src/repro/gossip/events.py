"""Event identities and wire representations.

An *event* is one application broadcast. Its identity is the pair
``(origin, seq)`` — the broadcasting node and that node's local sequence
number — which is unique without coordination.

The *age* of an event (paper §2.1, citing Kouznetsov et al.) is the number
of gossip rounds the event has been carried by buffers: each holder
increments the age of everything it stores once per round, and holders
synchronise ages to the maximum seen when duplicates arrive. Age is a
proxy for how widely the event has been disseminated, which is exactly why
the adaptive mechanism uses the age of *dropped* events as its congestion
signal.

Wire forms
----------
Two interchangeable representations of a message's events exist:

* a plain tuple of :class:`EventSummary` — the row form, used for small
  hand-built event lists (recovery requests, repair replies);
* :class:`EventColumns` — the columnar, anchor-relative form the hot
  paths use. It stores ``(ids, base_round, anchors, payloads)`` and
  computes ``age = base_round - anchor`` on demand, which lets
  :class:`~repro.gossip.buffer.EventBuffer` share one cached column set
  across every message of a round instead of rebuilding a summary list.

The two compare equal when they describe the same events, and
:class:`EventColumns` iterates as :class:`EventSummary` rows, so code
written against the row form keeps working unchanged.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, NamedTuple, Optional

__all__ = ["EventId", "EventSummary", "EventColumns", "make_event_id"]


class EventId(NamedTuple):
    """Globally unique event identity: broadcasting node + local sequence."""

    origin: Any
    seq: int


class EventSummary(NamedTuple):
    """Row wire form of a buffered event, as carried inside gossip messages."""

    id: EventId
    age: int
    payload: Any


class EventColumns:
    """Columnar, anchor-relative form of a message's events.

    ``anchors[i]`` is ``base_round - age_i`` in the *sender's* round
    numbering; receivers recover ages as ``base_round - anchors[i]``
    without caring about the sender's absolute round. The column tuples
    may be shared with the sender's buffer cache and between the ``f``
    copies of one round's gossip — treat them as immutable.

    ``ages`` and ``id_set`` are computed lazily and cached, so the ``f``
    receivers of one shared message pay for them once.
    """

    __slots__ = ("ids", "base_round", "anchors", "payloads", "_ages", "_id_set")

    def __init__(
        self,
        ids: tuple[EventId, ...],
        base_round: int,
        anchors: tuple[int, ...],
        payloads: tuple[Any, ...],
        id_set: Optional[frozenset] = None,
    ) -> None:
        self.ids = ids
        self.base_round = base_round
        self.anchors = anchors
        self.payloads = payloads
        self._ages: Optional[tuple[int, ...]] = None
        # Builders that already hold the ids as a frozenset (the buffer's
        # snapshot cache) pass it in so receivers never rebuild it.
        self._id_set: Optional[frozenset] = id_set

    @classmethod
    def from_summaries(cls, summaries: Iterable[EventSummary]) -> "EventColumns":
        """Build columns (base round 0) from row-form summaries."""
        rows = tuple(summaries)
        if not rows:
            return cls((), 0, (), ())
        ids, ages, payloads = zip(*rows)
        return cls(tuple(ids), 0, tuple(-age for age in ages), tuple(payloads))

    # ------------------------------------------------------------------
    # derived columns (lazy, shared across the f receivers)
    # ------------------------------------------------------------------
    @property
    def ages(self) -> tuple[int, ...]:
        """Per-event ages, ``base_round - anchor``."""
        ages = self._ages
        if ages is None:
            base = self.base_round
            ages = self._ages = tuple(base - anchor for anchor in self.anchors)
        return ages

    @property
    def id_set(self) -> frozenset:
        """The ids as a frozenset (duplicate-split set operations)."""
        ids = self._id_set
        if ids is None:
            ids = self._id_set = frozenset(self.ids)
        return ids

    def without_payloads(self) -> "EventColumns":
        """The same events with payloads stripped (digest messages)."""
        stripped = EventColumns(
            self.ids,
            self.base_round,
            self.anchors,
            (None,) * len(self.ids),
            id_set=self._id_set,
        )
        stripped._ages = self._ages  # same base and anchors
        return stripped

    # ------------------------------------------------------------------
    # row-form compatibility view
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self) -> Iterator[EventSummary]:
        return map(EventSummary, self.ids, self.ages, self.payloads)

    def __getitem__(self, index: int) -> EventSummary:
        return EventSummary(self.ids[index], self.ages[index], self.payloads[index])

    def summaries(self) -> tuple[EventSummary, ...]:
        """The events as a row-form tuple."""
        return tuple(self)

    # Equality is semantic — same ids, ages and payloads — so a columnar
    # message equals its row form regardless of the anchor base, and codec
    # round-trips may re-base without breaking ``decode(encode(m)) == m``.
    def __eq__(self, other: Any):
        if isinstance(other, EventColumns):
            return (
                self.ids == other.ids
                and self.payloads == other.payloads
                and self.ages == other.ages
            )
        if isinstance(other, (tuple, list)):
            if len(other) != len(self.ids):
                return False
            return all(mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return (
            f"EventColumns(n={len(self.ids)}, base_round={self.base_round}, "
            f"ids={self.ids!r})"
        )


def make_event_id(origin: Any, seq: int) -> EventId:
    """Build an :class:`EventId` (kept as a function for codec symmetry)."""
    return EventId(origin, seq)
