"""Event identities and wire representations.

An *event* is one application broadcast. Its identity is the pair
``(origin, seq)`` — the broadcasting node and that node's local sequence
number — which is unique without coordination.

The *age* of an event (paper §2.1, citing Kouznetsov et al.) is the number
of gossip rounds the event has been carried by buffers: each holder
increments the age of everything it stores once per round, and holders
synchronise ages to the maximum seen when duplicates arrive. Age is a
proxy for how widely the event has been disseminated, which is exactly why
the adaptive mechanism uses the age of *dropped* events as its congestion
signal.
"""

from __future__ import annotations

from typing import Any, NamedTuple

__all__ = ["EventId", "EventSummary", "make_event_id"]


class EventId(NamedTuple):
    """Globally unique event identity: broadcasting node + local sequence."""

    origin: Any
    seq: int


class EventSummary(NamedTuple):
    """Wire form of a buffered event, as carried inside gossip messages."""

    id: EventId
    age: int
    payload: Any


def make_event_id(origin: Any, seq: int) -> EventId:
    """Build an :class:`EventId` (kept as a function for codec symmetry)."""
    return EventId(origin, seq)
