"""Hash-designated long-term bufferers (related work [10], contrast for §5).

The paper positions its mechanism *against* recovery-based alternatives:

* Ozkasap et al. [10] give every message a fixed set of **bufferers** —
  members, identified by hashing the message id, that keep it long-term
  so anyone can later recover it directly from them;
* Sun & Sturman [14] log messages at dedicated servers and repair from
  the log, "with the inconvenient of requiring possibly very large
  buffers at logging servers and delivering some messages much later".

This module implements the bufferer scheme so the contrast can be
*measured* (benchmark ``test_ablation_recovery.py``): recovery repairs
omissions after the fact — at the price of extra pinned memory and late
deliveries — while the adaptive mechanism prevents them. Setting
``replicas=1`` with a large ``long_term_capacity`` approximates the
logging-server design of [14].

Bufferers are selected by **rendezvous (highest-random-weight) hashing**
over the current membership: deterministic for every observer sharing
the view, uniformly balanced, and minimally disrupted by churn.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Optional

from repro.gossip.bimodal import BimodalProtocol
from repro.gossip.config import SystemConfig
from repro.gossip.events import EventColumns, EventId, EventSummary
from repro.gossip.peer_sampling import TargetSampler
from repro.gossip.protocol import DeliverFn, DropFn, Emission, GossipMessage, NodeId

__all__ = ["rendezvous_bufferers", "LongTermStore", "BuffererBimodalProtocol"]


def _weight(event_id: EventId, member: NodeId) -> int:
    material = repr((event_id, member)).encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


def rendezvous_bufferers(
    event_id: EventId, members: Iterable[NodeId], replicas: int
) -> list[NodeId]:
    """The ``replicas`` members responsible for buffering ``event_id``.

    Every observer that knows the same membership computes the same set,
    so recoverers know whom to contact without any directory service —
    the property [10] relies on ("bufferers can be easily identified by
    hashing the message identifier").
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    ranked = sorted(members, key=lambda m: _weight(event_id, m), reverse=True)
    return ranked[:replicas]


class LongTermStore:
    """Bounded FIFO store of pinned events (payload + last known age)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = int(capacity)
        self._items: dict[EventId, tuple[int, Any]] = {}
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, event_id: EventId) -> bool:
        return event_id in self._items

    def pin(self, event_id: EventId, age: int, payload: Any) -> None:
        if event_id in self._items:
            old_age, old_payload = self._items[event_id]
            self._items[event_id] = (max(old_age, age), old_payload)
            return
        self._items[event_id] = (age, payload)
        if len(self._items) > self._capacity:
            oldest = next(iter(self._items))
            del self._items[oldest]
            self.evictions += 1

    def get(self, event_id: EventId) -> Optional[tuple[int, Any]]:
        return self._items.get(event_id)


class BuffererBimodalProtocol(BimodalProtocol):
    """Bimodal multicast + [10]-style designated bufferers.

    Differences from the plain substrate:

    * when folding an event in, a node that is one of the event's
      ``replicas`` rendezvous bufferers also *pins* it in a separate
      long-term store, immune to the gossip buffer's ageing/overflow;
    * a node missing events from a digest asks the events' *bufferers*
      (not the digest sender) for retransmission;
    * retransmission requests are served from the gossip buffer or the
      long-term store, whichever still holds the event.

    The gossip-side behaviour (rounds, digests, ages, GC) is untouched,
    so the adaptation mechanism would compose with this variant exactly
    as with the plain one.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: SystemConfig,
        membership,
        rng,
        deliver_fn: Optional[DeliverFn] = None,
        drop_fn: Optional[DropFn] = None,
        sampler: Optional[TargetSampler] = None,
        replicas: int = 3,
        long_term_capacity: int = 2000,
        recovery_grace_rounds: int = 2,
        recovery_attempts: int = 10,
        max_recovery_per_round: int = 64,
    ) -> None:
        super().__init__(node_id, config, membership, rng, deliver_fn, drop_fn, sampler)
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self.long_term = LongTermStore(long_term_capacity)
        self.recoveries_served = 0
        self.recovery_grace_rounds = recovery_grace_rounds
        self.recovery_attempts = recovery_attempts
        self.max_recovery_per_round = max_recovery_per_round
        # Gap detection: event ids are (origin, seq) with seq contiguous
        # per origin, so a hole in the sequence is a detectable loss —
        # the trigger real recovery protocols use ([10]; pbcast's NAKs).
        self._next_seq_of: dict[NodeId, int] = {}
        # missing id -> (rounds waited since grace started, attempts used)
        self._missing: dict[EventId, list[int]] = {}
        self.recovery_requests_sent = 0
        self.recoveries_abandoned = 0

    # ------------------------------------------------------------------
    # pinning
    # ------------------------------------------------------------------
    def _members_for_hashing(self) -> list[NodeId]:
        # Full-membership views expose everyone; partial views expose the
        # local sample — [10] explicitly assumes full membership, which
        # is one of the paper's criticisms of it (§5).
        members = self.membership.sample_targets(2**31, self.rng)
        return [*members, self.node_id]

    def is_bufferer_for(self, event_id: EventId) -> bool:
        return self.node_id in rendezvous_bufferers(
            event_id, self._members_for_hashing(), self.replicas
        )

    def _maybe_pin(self, event_id: EventId, age: int, payload: Any) -> None:
        if self.is_bufferer_for(event_id):
            self.long_term.pin(event_id, age, payload)

    def broadcast(self, payload: Any, now: float) -> EventId:
        event_id = super().broadcast(payload, now)
        self._maybe_pin(event_id, 0, payload)
        return event_id

    def _fold_events(self, message: GossipMessage, now: float) -> None:
        events = message.events
        known = self._known_ids
        if not (type(events) is EventColumns and known.keys() >= events.id_set):
            # Only messages carrying something new can need pinning or
            # move the gap detector; the all-duplicate steady state skips
            # the scan entirely.
            for event_id, age, payload in events:
                if event_id not in known:
                    self._maybe_pin(event_id, age, payload)
                    self._note_sequence(event_id)
        super()._fold_events(message, now)

    # ------------------------------------------------------------------
    # gap detection
    # ------------------------------------------------------------------
    def _note_sequence(self, event_id: EventId) -> None:
        """Record arrival of (origin, seq); holes become recovery targets."""
        origin, seq = event_id
        if not isinstance(seq, int):
            return
        self._missing.pop(event_id, None)
        expected = self._next_seq_of.get(origin, seq)
        for hole in range(expected, seq):
            hole_id = EventId(origin, hole)
            if hole_id not in self.dedup and hole_id not in self._missing:
                self._missing[hole_id] = [0, 0]
        self._next_seq_of[origin] = max(expected, seq + 1)

    def _recovery_emissions(self) -> list[Emission]:
        """Request overdue missing events from their bufferers."""
        if not self._missing:
            return []
        members = self._members_for_hashing()
        by_target: dict[NodeId, list[EventSummary]] = {}
        budget = self.max_recovery_per_round
        for event_id, state in list(self._missing.items()):
            if event_id in self.dedup:
                del self._missing[event_id]
                continue
            state[0] += 1
            if state[0] <= self.recovery_grace_rounds:
                continue  # it may still arrive by normal gossip
            if state[1] >= self.recovery_attempts:
                del self._missing[event_id]
                self.recoveries_abandoned += 1
                continue
            if budget <= 0:
                continue
            budget -= 1
            state[1] += 1
            bufferers = rendezvous_bufferers(event_id, members, self.replicas)
            candidates = [b for b in bufferers if b != self.node_id]
            if not candidates:
                continue
            # rotate through the replicas across attempts
            target = candidates[(state[1] - 1) % len(candidates)]
            by_target.setdefault(target, []).append(EventSummary(event_id, 0, None))
        emissions = []
        for target, summaries in by_target.items():
            self.recovery_requests_sent += 1
            self.stats.events_requested += len(summaries)
            emissions.append(
                Emission(
                    target,
                    GossipMessage(
                        sender=self.node_id, events=tuple(summaries), kind="request"
                    ),
                )
            )
        return emissions

    def on_round(self, now: float) -> list[Emission]:
        emissions = super().on_round(now)
        emissions.extend(self._recovery_emissions())
        return emissions

    # ------------------------------------------------------------------
    # recovery routing
    # ------------------------------------------------------------------
    def _answer_digest(self, message: GossipMessage, now: float) -> list[Emission]:
        """Ask each missing event's bufferers instead of the digest sender."""
        events = message.events
        known = self._known_ids
        if type(events) is EventColumns and known.keys() >= events.id_set:
            self.buffer.sync_ages(events.ids, events.ages)
            return []
        missing: list[EventSummary] = []
        sync_age = self.buffer.sync_age
        for event_id, age, _none in events:
            if event_id in known:
                sync_age(event_id, age)
            else:
                missing.append(EventSummary(event_id, 0, None))
        if not missing:
            return []
        members = self._members_for_hashing()
        by_target: dict[NodeId, list[EventSummary]] = {}
        for summary in missing:
            bufferers = rendezvous_bufferers(summary.id, members, self.replicas)
            target = bufferers[0] if bufferers[0] != self.node_id else bufferers[-1]
            if target == self.node_id:
                continue  # we are the sole bufferer of something we miss
            by_target.setdefault(target, []).append(summary)
        emissions = []
        for target, summaries in by_target.items():
            self.stats.requests_sent += 1
            self.stats.events_requested += len(summaries)
            emissions.append(
                Emission(
                    target,
                    GossipMessage(
                        sender=self.node_id, events=tuple(summaries), kind="request"
                    ),
                )
            )
        return emissions

    def _serve_request(self, message: GossipMessage) -> list[Emission]:
        """Serve from the gossip buffer, falling back to the pinned store."""
        available: list[EventSummary] = []
        for event_id, _age, _p in message.events:
            if event_id in self.buffer:
                available.append(
                    EventSummary(
                        event_id,
                        self.buffer.age_of(event_id),
                        self.buffer.payload_of(event_id),
                    )
                )
                continue
            pinned = self.long_term.get(event_id)
            if pinned is not None:
                age, payload = pinned
                available.append(EventSummary(event_id, age, payload))
                self.recoveries_served += 1
        if not available:
            return []
        return [
            Emission(
                message.sender,
                GossipMessage(
                    sender=self.node_id, events=tuple(available), kind="reply"
                ),
            )
        ]
