"""Baseline gossip broadcast — the paper's Figure 1 (lpbcast-style).

Behaviour, in the paper's own structure:

``every T ms`` (:meth:`LpbcastProtocol.on_round`):
  1. *Update ages* — every buffered event ages by one; events older than
     ``k`` are purged.
  2. *Gossip* — all buffered events are sent to ``f`` random members.

``upon RECEIVE(gossip)`` (:meth:`LpbcastProtocol.on_receive`):
  1. *Update events and ages* — unseen events are buffered and delivered;
     duplicate ages are raised to the maximum seen.
  2. *Garbage collect* — ``eventIds`` is FIFO-bounded; ``events`` drops
     its oldest entries when over capacity.

``upon BROADCAST(event)`` (:meth:`LpbcastProtocol.broadcast`):
  buffer the new event locally with age 0 (admission control — the token
  bucket of Figure 3 — lives in :mod:`repro.core.tokens` and is applied by
  the sender, not by the protocol).

The class exposes protected hooks (``_emission_headers``,
``_on_adaptive_header``, ``_after_receive``) that the adaptive variant
(:class:`repro.core.adaptive.AdaptiveLpbcastProtocol`) overrides; the
baseline keeps them as no-ops so the two variants differ *only* by the
paper's Figure 5 additions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.gossip.buffer import DroppedEvent, EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.dedup import DedupStore
from repro.gossip.events import EventId
from repro.gossip.peer_sampling import TargetSampler, UniformSampler
from repro.gossip.protocol import (
    AdaptiveHeader,
    DeliverFn,
    DropFn,
    Emission,
    GossipMessage,
    GossipProtocol,
    NodeId,
)

__all__ = ["LpbcastProtocol", "ProtocolStats"]


@dataclass
class ProtocolStats:
    """Per-node protocol counters (used by tests and metrics)."""

    rounds: int = 0
    broadcasts: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    events_delivered: int = 0
    duplicates_seen: int = 0
    drops_overflow: int = 0
    drops_age_out: int = 0
    drops_resize: int = 0
    drops_obsolete: int = 0

    def note_drop(self, reason: str) -> None:
        if reason == "overflow":
            self.drops_overflow += 1
        elif reason == "age_out":
            self.drops_age_out += 1
        elif reason == "obsolete":
            self.drops_obsolete += 1
        else:
            self.drops_resize += 1


class LpbcastProtocol(GossipProtocol):
    """The baseline protocol of Figure 1 as a sans-IO state machine.

    Parameters
    ----------
    node_id:
        This node's identity (must be usable as a dict key).
    config:
        Static algorithm parameters (:class:`SystemConfig`).
    membership:
        Any view with ``sample_targets(count, rng)``; full and partial
        views from :mod:`repro.membership` both qualify.
    rng:
        Source of randomness for target selection (a named stream from
        the driver, for reproducibility).
    deliver_fn / drop_fn:
        Optional callbacks for application delivery and buffer drops;
        the metrics collector hooks in here.
    sampler:
        Target-selection strategy; defaults to the paper's uniform pick.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: SystemConfig,
        membership,
        rng,
        deliver_fn: Optional[DeliverFn] = None,
        drop_fn: Optional[DropFn] = None,
        sampler: Optional[TargetSampler] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.membership = membership
        self.rng = rng
        self.buffer = EventBuffer(config.buffer_capacity)
        self.dedup = DedupStore(config.dedup_capacity)
        self.stats = ProtocolStats()
        self._deliver_fn = deliver_fn
        self._drop_fn = drop_fn
        self._sampler = sampler if sampler is not None else UniformSampler()
        self._next_seq = 0

    # ------------------------------------------------------------------
    # application side
    # ------------------------------------------------------------------
    def broadcast(self, payload: Any, now: float) -> EventId:
        """Admit one application event into the local buffer (age 0)."""
        event_id = EventId(self.node_id, self._next_seq)
        self._next_seq += 1
        self.dedup.add(event_id)
        self.stats.broadcasts += 1
        self._deliver(event_id, payload, now)  # the sender is a receiver too
        self._note_drops(self.buffer.add(event_id, age=0, payload=payload), now)
        return event_id

    def try_broadcast(self, payload: Any, now: float) -> Optional[EventId]:
        """Admission-controlled broadcast.

        The baseline has no admission control (its input rate is whatever
        the application offers — the behaviour Figure 7(a) shows), so this
        always succeeds. Rate-limited variants override it.
        """
        return self.broadcast(payload, now)

    def time_until_admission(self, now: float) -> float:
        """Seconds until :meth:`try_broadcast` could succeed (0 here)."""
        return 0.0

    @property
    def allowed_rate(self) -> Optional[float]:
        """Currently allowed sending rate; None means unbounded."""
        return None

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def _round_batch(self, now: float) -> tuple[tuple, Optional[GossipMessage]]:
        """One round's work: returns ``(targets, message)``; message may be None."""
        self.stats.rounds += 1
        self.buffer.advance_round()
        self._note_drops(self.buffer.drop_aged_out(self.config.max_age), now)
        self._before_emission(now)

        targets = self._sampler.select(self.membership, self.config.fanout, self.rng)
        if not targets:
            return (), None
        events = tuple(self.buffer.snapshot())  # shared across the f copies
        membership_header = self.membership.on_gossip_emit(self.rng)
        adaptive_header = self._emission_headers(now)
        message = GossipMessage(
            sender=self.node_id,
            events=events,
            adaptive=adaptive_header,
            membership=membership_header,
        )
        self.stats.messages_sent += len(targets)
        return tuple(targets), message

    def on_round(self, now: float) -> list[Emission]:
        targets, message = self._round_batch(now)
        if message is None:
            return []
        return [Emission(t, message) for t in targets]

    def on_round_batch(self, now: float):
        targets, message = self._round_batch(now)
        if message is None:
            return []
        return [(targets, message)]

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def on_receive(self, message: GossipMessage, now: float) -> list[Emission]:
        stats = self.stats
        stats.messages_received += 1
        self.membership.on_gossip_receive(message.membership, message.sender, self.rng)
        if message.adaptive is not None:
            self._on_adaptive_header(message.adaptive, now)

        # Figure 1 ordering: fold every event in first, garbage collect
        # after. The _after_receive hook runs in between, against the
        # un-trimmed buffer — that is where Figure 5(b) measures what a
        # minBuff-sized buffer would have dropped. In steady state most
        # summaries are duplicates, so the loop binds the per-event
        # callables once and batches the duplicate count.
        buffer = self.buffer
        dedup_add = self.dedup.add
        sync_age = buffer.sync_age
        stage = buffer.stage
        duplicates = 0
        for event_id, age, payload in message.events:
            if dedup_add(event_id):
                self._deliver(event_id, payload, now)
                stage(event_id, age=age, payload=payload)
            else:
                duplicates += 1
                sync_age(event_id, age)
        if duplicates:
            stats.duplicates_seen += duplicates

        self._after_receive(message, now)
        if len(buffer) > buffer.capacity:
            self._note_drops(buffer.evict_overflow(), now)
        return []

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        """Change ``|events|max`` at runtime (Figure 9's resource change)."""
        self._note_drops(self.buffer.resize(capacity), now)

    @property
    def buffer_capacity(self) -> int:
        return self.buffer.capacity

    # ------------------------------------------------------------------
    # hooks for the adaptive variant
    # ------------------------------------------------------------------
    def _emission_headers(self, now: float) -> Optional[AdaptiveHeader]:
        """Adaptation header for outgoing gossip; baseline sends none."""
        return None

    def _on_adaptive_header(self, header: AdaptiveHeader, now: float) -> None:
        """Fold a received adaptation header; baseline ignores it."""

    def _before_emission(self, now: float) -> None:
        """Called each round after ageing, before building the message."""

    def _after_receive(self, message: GossipMessage, now: float) -> None:
        """Called after a message's events have been folded in."""

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _deliver(self, event_id: EventId, payload: Any, now: float) -> None:
        self.stats.events_delivered += 1
        if self._deliver_fn is not None:
            self._deliver_fn(event_id, payload, now)

    def _note_drops(self, drops: list[DroppedEvent], now: float) -> None:
        if not drops:
            return
        for d in drops:
            self.stats.note_drop(d.reason)
            if self._drop_fn is not None:
                self._drop_fn(d.id, d.age, d.reason, now)
