"""Baseline gossip broadcast — the paper's Figure 1 (lpbcast-style).

Behaviour, in the paper's own structure:

``every T ms`` (:meth:`LpbcastProtocol.on_round`):
  1. *Update ages* — every buffered event ages by one; events older than
     ``k`` are purged.
  2. *Gossip* — all buffered events are sent to ``f`` random members.

``upon RECEIVE(gossip)`` (:meth:`LpbcastProtocol.on_receive`):
  1. *Update events and ages* — unseen events are buffered and delivered;
     duplicate ages are raised to the maximum seen.
  2. *Garbage collect* — ``eventIds`` is FIFO-bounded; ``events`` drops
     its oldest entries when over capacity.

The steady-state receive path is batch-oriented: columnar messages are
split into new-vs-duplicate ids with set operations against the dedup
store's backing dict, new ids are bulk-inserted (one capacity trim per
message), and duplicate age-raises fold through one
:meth:`~repro.gossip.buffer.EventBuffer.sync_ages` call. In the regime
the paper's steady state lives in — every summary a duplicate — the
whole message reduces to one subset check and one direct-dict loop.
The seed's per-event loop is kept verbatim as
:meth:`on_receive_reference`; the dispatch-determinism tests assert the
two paths produce byte-identical runs. (The one observable difference
is deliberately pathological: with the batch path, ids are atomic
within a message, so an undersized dedup store can no longer evict an
id mid-message and re-deliver a later duplicate of it from the *same*
message.)

``upon BROADCAST(event)`` (:meth:`LpbcastProtocol.broadcast`):
  buffer the new event locally with age 0 (admission control — the token
  bucket of Figure 3 — lives in :mod:`repro.core.tokens` and is applied by
  the sender, not by the protocol).

The class exposes protected hooks (``_emission_headers``,
``_on_adaptive_header``, ``_after_receive``) that the adaptive variant
(:class:`repro.core.adaptive.AdaptiveLpbcastProtocol`) overrides; the
baseline keeps them as no-ops so the two variants differ *only* by the
paper's Figure 5 additions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.gossip.buffer import DroppedEvent, EventBuffer
from repro.gossip.config import SystemConfig
from repro.gossip.dedup import DedupStore
from repro.gossip.events import EventColumns, EventId
from repro.gossip.peer_sampling import TargetSampler, UniformSampler
from repro.gossip.protocol import (
    AdaptiveHeader,
    DeliverFn,
    DropFn,
    Emission,
    GossipMessage,
    GossipProtocol,
    NodeId,
)

__all__ = ["LpbcastProtocol", "ProtocolStats"]


@dataclass(slots=True)
class ProtocolStats:
    """Per-node protocol counters (used by tests and metrics)."""

    rounds: int = 0
    broadcasts: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    events_delivered: int = 0
    duplicates_seen: int = 0
    drops_overflow: int = 0
    drops_age_out: int = 0
    drops_resize: int = 0
    drops_obsolete: int = 0

    def note_drop(self, reason: str) -> None:
        if reason == "overflow":
            self.drops_overflow += 1
        elif reason == "age_out":
            self.drops_age_out += 1
        elif reason == "obsolete":
            self.drops_obsolete += 1
        else:
            self.drops_resize += 1


class LpbcastProtocol(GossipProtocol):
    """The baseline protocol of Figure 1 as a sans-IO state machine.

    Parameters
    ----------
    node_id:
        This node's identity (must be usable as a dict key).
    config:
        Static algorithm parameters (:class:`SystemConfig`).
    membership:
        Any view with ``sample_targets(count, rng)``; full and partial
        views from :mod:`repro.membership` both qualify.
    rng:
        Source of randomness for target selection (a named stream from
        the driver, for reproducibility).
    deliver_fn / drop_fn:
        Optional callbacks for application delivery and buffer drops;
        the metrics collector hooks in here.
    sampler:
        Target-selection strategy; defaults to the paper's uniform pick.
    """

    def __init__(
        self,
        node_id: NodeId,
        config: SystemConfig,
        membership,
        rng,
        deliver_fn: Optional[DeliverFn] = None,
        drop_fn: Optional[DropFn] = None,
        sampler: Optional[TargetSampler] = None,
    ) -> None:
        self.node_id = node_id
        self.config = config
        self.membership = membership
        self.rng = rng
        self.buffer = EventBuffer(config.buffer_capacity)
        self.dedup = DedupStore(config.dedup_capacity)
        # The dedup backing dict, bound once — the receive path consults
        # it per message and the dict object is stable for the store's
        # lifetime (resize/trim mutate it in place).
        self._known_ids = self.dedup.backing
        self._known_keys = self._known_ids.keys()  # live view, set-typed
        # Per-message hook elision, resolved once: passive membership
        # views (full membership) skip the on_gossip_receive call, and
        # variants that don't override _after_receive skip that call.
        self._membership_receive = (
            None if getattr(membership, "gossip_passive", False)
            else membership.on_gossip_receive
        )
        self._has_after_hook = (
            type(self)._after_receive is not LpbcastProtocol._after_receive
        )
        self._has_before_hook = (
            type(self)._before_emission is not LpbcastProtocol._before_emission
        )
        self._has_header_hook = (
            type(self)._emission_headers is not LpbcastProtocol._emission_headers
        )
        # Subclasses that wrap on_receive (e.g. keyed obsolescence) must
        # see every message: the hoisted batch loop only applies when
        # on_receive is the stock implementation.
        self._receive_overridden = (
            type(self).on_receive is not LpbcastProtocol.on_receive
        )
        self._membership_emit = (
            None if getattr(membership, "gossip_passive", False)
            else membership.on_gossip_emit
        )
        self.stats = ProtocolStats()
        self._deliver_fn = deliver_fn
        self._drop_fn = drop_fn
        self._sampler = sampler if sampler is not None else UniformSampler()
        self._next_seq = 0

    # ------------------------------------------------------------------
    # application side
    # ------------------------------------------------------------------
    def broadcast(self, payload: Any, now: float) -> EventId:
        """Admit one application event into the local buffer (age 0)."""
        event_id = EventId(self.node_id, self._next_seq)
        self._next_seq += 1
        self.dedup.add(event_id)
        self.stats.broadcasts += 1
        self._deliver(event_id, payload, now)  # the sender is a receiver too
        self._note_drops(self.buffer.add(event_id, age=0, payload=payload), now)
        return event_id

    def try_broadcast(self, payload: Any, now: float) -> Optional[EventId]:
        """Admission-controlled broadcast.

        The baseline has no admission control (its input rate is whatever
        the application offers — the behaviour Figure 7(a) shows), so this
        always succeeds. Rate-limited variants override it.
        """
        return self.broadcast(payload, now)

    def time_until_admission(self, now: float) -> float:
        """Seconds until :meth:`try_broadcast` could succeed (0 here)."""
        return 0.0

    @property
    def allowed_rate(self) -> Optional[float]:
        """Currently allowed sending rate; None means unbounded."""
        return None

    # Push-only: on_receive never returns replies, so drivers may skip
    # reply handling entirely (pull variants set this True).
    may_reply = False

    # ------------------------------------------------------------------
    # rounds
    # ------------------------------------------------------------------
    def _round_batch(self, now: float):
        """One round's work: returns ``(targets, message)``; message may be None."""
        stats = self.stats
        stats.rounds += 1
        buffer = self.buffer
        buffer.advance_round()
        dropped = buffer.drop_aged_out(self.config.max_age)
        if dropped:
            self._note_drops(dropped, now)
        if self._has_before_hook:
            self._before_emission(now)

        targets = self._sampler.select(self.membership, self.config.fanout, self.rng)
        if not targets:
            return (), None
        # Columnar snapshot, shared across the f copies — a cache hit
        # whenever no event arrived since the last round (see EventBuffer).
        membership_emit = self._membership_emit
        message = GossipMessage(
            sender=self.node_id,
            events=buffer.snapshot_columns(),
            adaptive=self._emission_headers(now) if self._has_header_hook else None,
            membership=membership_emit(self.rng) if membership_emit is not None else None,
        )
        stats.messages_sent += len(targets)
        return targets, message

    def on_round(self, now: float) -> list[Emission]:
        targets, message = self._round_batch(now)
        if message is None:
            return []
        return [Emission(t, message) for t in targets]

    def on_round_batch(self, now: float):
        targets, message = self._round_batch(now)
        if message is None:
            return []
        return [(targets, message)]

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def on_receive(self, message: GossipMessage, now: float) -> list[Emission]:
        self._receive_many((message,), now)
        return []

    def on_receive_batch(self, messages, now: float) -> list[Emission]:
        """Fold several messages arriving at one instant.

        Message-for-message identical to calling :meth:`on_receive` in
        order. Drivers that coalesce deliveries per instant (the
        simulated network, the threaded runtime's queue drain) land
        here. Subclasses that override :meth:`on_receive` are routed
        through their override, message by message.
        """
        if self._receive_overridden:
            replies: list[Emission] = []
            for message in messages:
                replies.extend(self.on_receive(message, now))
            return replies
        self._receive_many(messages, now)
        return []

    def _receive_many(self, messages, now: float) -> None:
        """The receive loop shared by the single and batched entry points.

        Hoists the per-message binds (stats, dedup keys, buffer) across
        the batch, and must never dispatch back through
        :meth:`on_receive` — subclass wrappers route in from above.

        Figure 1 ordering per message: fold every event in first,
        garbage collect after. The _after_receive hook runs in between,
        against the un-trimmed buffer — that is where Figure 5(b)
        measures what a minBuff-sized buffer would have dropped.
        """
        stats = self.stats
        stats.messages_received += len(messages)
        membership_receive = self._membership_receive
        known_keys = self._known_keys
        buffer = self.buffer
        sync_ages = buffer.sync_ages
        rng = self.rng
        has_after = self._has_after_hook
        for message in messages:
            if membership_receive is not None:
                membership_receive(message.membership, message.sender, rng)
            if message.adaptive is not None:
                self._on_adaptive_header(message.adaptive, now)
            events = message.events
            if type(events) is EventColumns:
                ids = events.ids
                if ids:
                    id_set = events._id_set  # inline the lazy-property slots
                    if id_set is None:
                        id_set = events.id_set
                    if known_keys >= id_set:
                        # Steady state: every summary is a duplicate. No
                        # deliveries, no dedup mutation, nothing staged
                        # (so no overflow possible) — one batched fold.
                        stats.duplicates_seen += len(ids)
                        ages = events._ages
                        if ages is None:
                            ages = events.ages
                        sync_ages(ids, ages)
                        if has_after:
                            self._after_receive(message, now)
                        continue
                    self._fold_columns(events, now)
            elif events:
                self._fold_rows(events, now)
            if has_after:
                self._after_receive(message, now)
            if len(buffer) > buffer.capacity:
                self._note_drops(buffer.evict_overflow(), now)

    def _fold_columns(self, events: EventColumns, now: float) -> None:
        """Fold a columnar message with at least one new event."""
        buffer = self.buffer
        dedup = self.dedup
        known = self._known_ids
        stage = buffer.stage
        duplicate_ids: list = []
        duplicate_ages: list[int] = []
        for event_id, age, payload in zip(events.ids, events.ages, events.payloads):
            if event_id in known:
                duplicate_ids.append(event_id)
                duplicate_ages.append(age)
            else:
                known[event_id] = None
                self._deliver(event_id, payload, now)
                stage(event_id, age=age, payload=payload)
        dedup.trim()
        if duplicate_ids:
            self.stats.duplicates_seen += len(duplicate_ids)
            buffer.sync_ages(duplicate_ids, duplicate_ages)

    def _fold_rows(self, events, now: float) -> None:
        """Fold row-form events (hand-built lists: requests, replies)."""
        buffer = self.buffer
        dedup_add = self.dedup.add
        sync_age = buffer.sync_age
        stage = buffer.stage
        duplicates = 0
        for event_id, age, payload in events:
            if dedup_add(event_id):
                self._deliver(event_id, payload, now)
                stage(event_id, age=age, payload=payload)
            else:
                duplicates += 1
                sync_age(event_id, age)
        if duplicates:
            self.stats.duplicates_seen += duplicates

    def on_receive_reference(self, message: GossipMessage, now: float) -> list[Emission]:
        """The seed's per-event receive loop, kept as the reference path.

        Semantically identical to :meth:`on_receive` (the determinism
        tests bind nodes to this method and assert byte-identical runs);
        only the folding strategy differs.
        """
        stats = self.stats
        stats.messages_received += 1
        self.membership.on_gossip_receive(message.membership, message.sender, self.rng)
        if message.adaptive is not None:
            self._on_adaptive_header(message.adaptive, now)
        self._fold_rows(message.events, now)
        buffer = self.buffer
        self._after_receive(message, now)
        if len(buffer) > buffer.capacity:
            self._note_drops(buffer.evict_overflow(), now)
        return []

    # ------------------------------------------------------------------
    # resources
    # ------------------------------------------------------------------
    def set_buffer_capacity(self, capacity: int, now: float) -> None:
        """Change ``|events|max`` at runtime (Figure 9's resource change)."""
        self._note_drops(self.buffer.resize(capacity), now)

    @property
    def buffer_capacity(self) -> int:
        return self.buffer.capacity

    # ------------------------------------------------------------------
    # hooks for the adaptive variant
    # ------------------------------------------------------------------
    def _emission_headers(self, now: float) -> Optional[AdaptiveHeader]:
        """Adaptation header for outgoing gossip; baseline sends none."""
        return None

    def _on_adaptive_header(self, header: AdaptiveHeader, now: float) -> None:
        """Fold a received adaptation header; baseline ignores it."""

    def _before_emission(self, now: float) -> None:
        """Called each round after ageing, before building the message."""

    def _after_receive(self, message: GossipMessage, now: float) -> None:
        """Called after a message's events have been folded in."""

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _deliver(self, event_id: EventId, payload: Any, now: float) -> None:
        self.stats.events_delivered += 1
        if self._deliver_fn is not None:
            self._deliver_fn(event_id, payload, now)

    def _note_drops(self, drops: list[DroppedEvent], now: float) -> None:
        if not drops:
            return
        for d in drops:
            self.stats.note_drop(d.reason)
            if self._drop_fn is not None:
                self._drop_fn(d.id, d.age, d.reason, now)
