"""Reliability and atomicity analysis of delivery records.

The paper's headline reliability metric is *atomicity*: the fraction of
messages delivered to **more than 95% of the group** (Figures 2, 8(b),
9(b)) — the practical reading of pbcast's bimodal guarantee. Figure 8(a)
additionally reports the *average percentage of receivers* per message.

Both are computed here from the collector's per-message receiver sets,
restricted to an observation window: experiments discard a warm-up prefix
(buffers filling, estimators converging) and a drain suffix (messages
broadcast near the end have not finished propagating).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.metrics.collector import MessageRecord, MetricsCollector

__all__ = ["DeliveryStats", "analyze_delivery", "atomicity_series"]

ATOMICITY_THRESHOLD = 0.95


@dataclass(frozen=True, slots=True)
class DeliveryStats:
    """Reliability summary over a set of messages."""

    messages: int
    group_size: int
    avg_receiver_fraction: float  # Figure 8(a), as a fraction of the group
    atomicity: float  # Figure 8(b): share of messages reaching >95%
    complete_fraction: float  # share reaching 100% (strict atomicity)
    mean_latency: float  # broadcast -> last delivery, mean over messages
    unique_deliveries: int = 0  # total first-time deliveries
    duplicates: int = 0  # total re-deliveries suppressed by dedup

    @property
    def avg_receiver_pct(self) -> float:
        return 100.0 * self.avg_receiver_fraction

    @property
    def atomicity_pct(self) -> float:
        return 100.0 * self.atomicity

    @property
    def redundancy(self) -> float:
        """Duplicate deliveries per unique delivery — the cost gossip
        pays for its reliability (the expectation layer bounds it)."""
        if self.unique_deliveries == 0:
            return math.nan
        return self.duplicates / self.unique_deliveries


def analyze_delivery(
    records: Iterable[MessageRecord],
    group_size: int,
    threshold: float = ATOMICITY_THRESHOLD,
    size_at=None,
) -> DeliveryStats:
    """Summarise reliability over ``records`` for a group of ``group_size``.

    A message's receiver fraction counts the origin (which delivers to
    itself on broadcast) — matching "delivered to X% of participant
    processes" in the paper.

    Under churn the right denominator moves: a message broadcast while a
    quarter of the group is crashed can only ever reach the survivors.
    Pass ``size_at(broadcast_time) -> int`` (e.g.
    :meth:`~repro.workload.cluster.SimCluster.group_size_at`) to judge
    each message against the group it was actually broadcast into;
    ``group_size`` then only reports the nominal size in the summary.
    """
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    n_messages = 0
    frac_sum = 0.0
    atomic = 0
    complete = 0
    latency_sum = 0.0
    latency_count = 0
    unique = 0
    duplicates = 0
    for record in records:
        n_messages += 1
        # receiver_count rather than len(record.receivers): aggregate-mode
        # collectors carry CountingMessageRecord, which has no receiver set
        unique += record.receiver_count
        duplicates += record.duplicate_deliveries
        if size_at is None:
            denom = group_size
            fraction = record.receiver_count / denom
        else:
            denom = max(1, size_at(record.broadcast_time))
            # nodes that crash and later restart may still catch a copy,
            # pushing receivers past the broadcast-time group: that is
            # "everyone alive got it, plus returners" — cap at 100%
            fraction = min(1.0, record.receiver_count / denom)
        frac_sum += fraction
        if fraction > threshold:
            atomic += 1
        if record.receiver_count >= denom:
            complete += 1
        if record.last_delivery is not None:
            latency_sum += record.last_delivery - record.broadcast_time
            latency_count += 1
    if n_messages == 0:
        nan = math.nan
        return DeliveryStats(0, group_size, nan, nan, nan, nan)
    return DeliveryStats(
        messages=n_messages,
        group_size=group_size,
        avg_receiver_fraction=frac_sum / n_messages,
        atomicity=atomic / n_messages,
        complete_fraction=complete / n_messages,
        mean_latency=latency_sum / latency_count if latency_count else math.nan,
        unique_deliveries=unique,
        duplicates=duplicates,
    )


def atomicity_series(
    collector: MetricsCollector,
    group_size: int,
    bucket_width: float,
    since: float,
    until: float,
    threshold: float = ATOMICITY_THRESHOLD,
) -> list[tuple[float, float]]:
    """Atomicity over time (Figure 9(b)).

    Messages are grouped by *broadcast* time bucket; each bucket reports
    the share of its messages that eventually reached more than
    ``threshold`` of the group. Buckets without messages yield NaN.
    """
    if bucket_width <= 0:
        raise ValueError("bucket_width must be > 0")
    buckets: dict[int, list[int]] = {}
    for record in collector.messages.values():
        t = record.broadcast_time
        if not since <= t < until:
            continue
        b = int(t // bucket_width)
        buckets.setdefault(b, []).append(record.receiver_count)
    series: list[tuple[float, float]] = []
    b = int(since // bucket_width)
    while b * bucket_width < until:
        counts = buckets.get(b)
        if counts:
            atomic = sum(1 for c in counts if c / group_size > threshold)
            series.append((b * bucket_width, atomic / len(counts)))
        else:
            series.append((b * bucket_width, math.nan))
        b += 1
    return series
