"""Small numeric helpers used by the analysis code.

Kept dependency-free (the library runs without numpy; the analysis extras
may use it, but nothing here requires it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["mean", "percentile", "stdev", "summarize", "Summary"]


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; NaN for an empty input (explicit, not an error)."""
    total = 0.0
    count = 0
    for v in values:
        total += v
        count += 1
    return total / count if count else math.nan


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; NaN for fewer than one value."""
    if not values:
        return math.nan
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, q in [0, 100]."""
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi or ordered[lo] == ordered[hi]:
        # equal endpoints: return directly — interpolating can underflow
        # for subnormal values (e.g. 0.5 * 5e-324 == 0.0)
        return float(ordered[lo])
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    stdev: float
    min: float
    p50: float
    p95: float
    max: float


def summarize(values: Sequence[float]) -> Summary:
    """Build a :class:`Summary`; empty input yields NaN fields."""
    if not values:
        nan = math.nan
        return Summary(0, nan, nan, nan, nan, nan, nan)
    return Summary(
        count=len(values),
        mean=mean(values),
        stdev=stdev(values),
        min=float(min(values)),
        p50=percentile(values, 50),
        p95=percentile(values, 95),
        max=float(max(values)),
    )
