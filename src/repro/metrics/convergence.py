"""Step-response analysis of adaptation transients.

The paper's Figure 9 narrative makes a *dynamic* claim: after a resource
change, "the adaptive mechanism quickly moves the allowed input to a
value that is close to the target and then smoothly stabilizes until no
instability can be observed around 60s after the configuration change".
This module turns that into measurable quantities:

* :func:`settling_time` — when a series enters (and stays in) a band
  around its final value;
* :func:`step_response` — settle time, overshoot/undershoot and steady
  value after a known change instant.

Used by the Figure 9 experiment and the stability ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.metrics.stats import mean

__all__ = [
    "StepResponse",
    "settling_time",
    "step_response",
    "convergence_rounds",
]


def convergence_rounds(mean_latency: float, gossip_period: float) -> float:
    """Dissemination latency expressed in gossip rounds.

    The round count is the scale-free reading of convergence speed — it
    is what ``ConvergenceWithin`` expectations bound, because it is
    invariant under the horizon scaling smoke runs apply and under the
    threaded driver's shortened gossip period. NaN in, NaN out.
    """
    if gossip_period <= 0:
        raise ValueError("gossip_period must be > 0")
    if math.isnan(mean_latency):
        return math.nan
    return mean_latency / gossip_period


@dataclass(frozen=True, slots=True)
class StepResponse:
    """Transient characterisation of a (time, value) series after a step."""

    change_time: float
    steady_value: float  # mean over the final fraction of the window
    settle_time: Optional[float]  # absolute time entering the band for good
    settle_delay: Optional[float]  # settle_time - change_time
    peak_deviation: float  # max |value - steady| after the change

    @property
    def settled(self) -> bool:
        return self.settle_time is not None


def _clean(series: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    return [(t, v) for t, v in series if not math.isnan(v)]


def settling_time(
    series: Sequence[tuple[float, float]],
    target: float,
    band: float,
    after: float = float("-inf"),
) -> Optional[float]:
    """First time from which the series stays within ``±band`` of ``target``.

    Only samples with ``t >= after`` are considered. Returns None if the
    series never settles (or has no samples in range).
    """
    if band <= 0:
        raise ValueError("band must be > 0")
    samples = [(t, v) for t, v in _clean(series) if t >= after]
    if not samples:
        return None
    settle: Optional[float] = None
    for t, v in samples:
        inside = abs(v - target) <= band
        if inside and settle is None:
            settle = t
        elif not inside:
            settle = None
    return settle


def step_response(
    series: Sequence[tuple[float, float]],
    change_time: float,
    window_end: float,
    band_frac: float = 0.15,
    steady_frac: float = 0.3,
) -> StepResponse:
    """Characterise the transient between ``change_time`` and ``window_end``.

    The steady value is the mean over the last ``steady_frac`` of the
    window; the settle band is ``band_frac`` of that steady value
    (minimum absolute band of 1e-9 to stay well-defined at zero).
    """
    if window_end <= change_time:
        raise ValueError("window_end must be after change_time")
    if not 0 < band_frac < 1 or not 0 < steady_frac <= 1:
        raise ValueError("fractions must lie in (0, 1)")
    window = [
        (t, v) for t, v in _clean(series) if change_time <= t <= window_end
    ]
    if not window:
        raise ValueError("no samples in the analysis window")
    steady_start = window_end - steady_frac * (window_end - change_time)
    steady_samples = [v for t, v in window if t >= steady_start]
    steady = mean(steady_samples if steady_samples else [window[-1][1]])
    band = max(abs(steady) * band_frac, 1e-9)
    settle = settling_time(window, steady, band, after=change_time)
    peak = max(abs(v - steady) for _, v in window)
    return StepResponse(
        change_time=change_time,
        steady_value=steady,
        settle_time=settle,
        settle_delay=None if settle is None else settle - change_time,
        peak_deviation=peak,
    )
