"""Measurement pipeline.

* :mod:`repro.metrics.collector` — the :class:`MetricsCollector` that the
  drivers hook into protocol callbacks (deliveries, drops, admissions).
* :mod:`repro.metrics.rates` — bucketed time series for rates and gauges.
* :mod:`repro.metrics.delivery` — reliability/atomicity analysis of
  per-message delivery records (the paper's Figures 2, 8, 9(b) metrics).
* :mod:`repro.metrics.stats` — small numeric helpers.

The paper's metrics, as implemented here:

* **reliability / atomicity** — fraction of messages delivered to more
  than 95% of group members (Figures 2, 8(b), 9(b));
* **average % of receivers** — mean over messages of the fraction of
  members that delivered it (Figure 8(a));
* **input rate** — broadcasts *admitted* per second (Figure 7(a));
* **output rate** — unique deliveries per member per second, i.e. input
  minus loss (Figure 7(b));
* **average drop age** — mean age of events evicted by buffer overflow
  (Figures 2's narrative, 4, 7(c)).
"""

from repro.metrics.collector import MessageRecord, MetricsCollector
from repro.metrics.convergence import StepResponse, settling_time, step_response
from repro.metrics.delivery import DeliveryStats, analyze_delivery, atomicity_series
from repro.metrics.rates import BucketSeries, GaugeSeries
from repro.metrics.stats import mean, percentile, summarize

__all__ = [
    "MetricsCollector",
    "MessageRecord",
    "DeliveryStats",
    "analyze_delivery",
    "atomicity_series",
    "BucketSeries",
    "GaugeSeries",
    "mean",
    "percentile",
    "summarize",
    "StepResponse",
    "settling_time",
    "step_response",
]
