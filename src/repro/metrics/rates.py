"""Bucketed time series.

Two flavours cover everything the experiments plot over time:

* :class:`BucketSeries` — counts of point events per fixed-width time
  bucket (admitted broadcasts, deliveries, drops); rates are counts
  divided by bucket width.
* :class:`GaugeSeries` — samples of an instantaneous value (allowed rate,
  avgAge, minBuff estimate); per-bucket means reconstruct the trajectory.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

__all__ = ["BucketSeries", "GaugeSeries"]


class BucketSeries:
    """Counts per fixed-width time bucket."""

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be > 0")
        self.bucket_width = float(bucket_width)
        self._counts: dict[int, float] = {}
        self.total = 0.0

    def _bucket(self, time: float) -> int:
        return int(math.floor(time / self.bucket_width))

    def add(self, time: float, weight: float = 1.0) -> None:
        b = self._bucket(time)
        self._counts[b] = self._counts.get(b, 0.0) + weight
        self.total += weight

    def merge(self, other: "BucketSeries") -> None:
        """Fold another series' counts into this one (sharded collection)."""
        if other.bucket_width != self.bucket_width:
            raise ValueError("cannot merge series with different bucket widths")
        counts = self._counts
        for b, c in other._counts.items():
            counts[b] = counts.get(b, 0.0) + c
        self.total += other.total

    def count(self, since: float = float("-inf"), until: float = float("inf")) -> float:
        """Total weight of events with bucket start in [since, until)."""
        return sum(
            c for b, c in self._counts.items() if since <= b * self.bucket_width < until
        )

    def rate(self, since: float, until: float) -> float:
        """Mean events/second over [since, until)."""
        if until <= since:
            raise ValueError("until must be > since")
        return self.count(since, until) / (until - since)

    def series(
        self, since: float = 0.0, until: Optional[float] = None
    ) -> Iterator[tuple[float, float]]:
        """Yield (bucket_start_time, rate) for every bucket in range.

        Buckets with no events are reported as zero so plots show gaps.
        """
        if until is None:
            if not self._counts:
                return
            until = (max(self._counts) + 1) * self.bucket_width
        b = self._bucket(since)
        while b * self.bucket_width < until:
            yield b * self.bucket_width, self._counts.get(b, 0.0) / self.bucket_width
            b += 1


class GaugeSeries:
    """Mean of sampled values per fixed-width time bucket."""

    def __init__(self, bucket_width: float = 1.0) -> None:
        if bucket_width <= 0:
            raise ValueError("bucket_width must be > 0")
        self.bucket_width = float(bucket_width)
        self._sums: dict[int, float] = {}
        self._counts: dict[int, int] = {}

    def sample(self, time: float, value: float) -> None:
        b = int(math.floor(time / self.bucket_width))
        self._sums[b] = self._sums.get(b, 0.0) + value
        self._counts[b] = self._counts.get(b, 0) + 1

    def merge(self, other: "GaugeSeries") -> None:
        """Fold another series' samples into this one (sharded collection)."""
        if other.bucket_width != self.bucket_width:
            raise ValueError("cannot merge series with different bucket widths")
        sums, counts = self._sums, self._counts
        for b, s in other._sums.items():
            sums[b] = sums.get(b, 0.0) + s
        for b, n in other._counts.items():
            counts[b] = counts.get(b, 0) + n

    def mean(self, since: float = float("-inf"), until: float = float("inf")) -> float:
        """Mean of all samples whose bucket start is in [since, until)."""
        total = 0.0
        n = 0
        for b, s in self._sums.items():
            t = b * self.bucket_width
            if since <= t < until:
                total += s
                n += self._counts[b]
        return total / n if n else math.nan

    def series(
        self, since: float = 0.0, until: Optional[float] = None
    ) -> Iterator[tuple[float, float]]:
        """Yield (bucket_start_time, mean_value); empty buckets are NaN."""
        if until is None:
            if not self._sums:
                return
            until = (max(self._sums) + 1) * self.bucket_width
        b = int(math.floor(since / self.bucket_width))
        while b * self.bucket_width < until:
            n = self._counts.get(b, 0)
            value = self._sums[b] / n if n else math.nan
            yield b * self.bucket_width, value
            b += 1
